//! Offline stub of `rand` 0.8, covering the API surface the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer/float
//! ranges, and `Rng::gen::<f64>()`. The generator is SplitMix64 — not the
//! real ChaCha-based `StdRng`, but deterministic per seed, which is all
//! the seeded data/workload generators require.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods, generic over range types via [`SampleRange`].
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample of a [`Standard`]-distributed value (`f64` in
    /// `[0, 1)`, or raw bits for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniformly sampleable element types. As in real rand, `Range<T>` /
/// `RangeInclusive<T>` get single blanket [`SampleRange`] impls bounded on
/// this trait — that blanket shape is what lets inference unify `T` with
/// the range's element type in expressions like `x / rng.gen_range(1..=8)`
/// (an integer-literal var can unify with `u64` but never with `&u64`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range in gen_range");
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range in gen_range");
                let u = f64::from_rng(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seeded RNG (SplitMix64 under this stub).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&y));
            let f = rng.gen_range(-3.0f64..-0.3);
            assert!((-3.0..-0.3).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }
}
