//! Offline stub of `criterion`: a minimal timing harness exposing the
//! macro/API surface the workspace benches use (`criterion_group!` with
//! `name`/`config`/`targets`, `criterion_main!`, `Criterion::default()
//! .sample_size(n)`, `bench_function`, `Bencher::iter`, `black_box`).
//! Each benchmark runs `sample_size` samples of one iteration each and
//! prints median/min/max — no statistics, plots or baselines.

use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration timing handle passed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `f` once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed().as_secs_f64());
    }
}

/// Stub of `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples per benchmark (builder style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark and print a summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mut s = b.samples;
        if s.is_empty() {
            println!("{id}: no samples");
            return self;
        }
        s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = s[s.len() / 2];
        println!(
            "{id}: median {:.6}s  min {:.6}s  max {:.6}s  ({} samples)",
            median,
            s[0],
            s[s.len() - 1],
            s.len()
        );
        self
    }

    /// Criterion's CLI handshake — a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Stub `criterion_group!`: both the struct form (`name/config/targets`)
/// and the plain list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Stub `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut runs = 0usize;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("stub/smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert_eq!(runs, 5);
    }
}
