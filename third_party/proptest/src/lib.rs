//! Offline stub of `proptest`: deterministic strategy sampling, no
//! shrinking. The `proptest!` macro runs each property `cases` times over
//! inputs drawn from a fixed-seed SplitMix64 stream, so failures are
//! reproducible run-to-run (at the cost of proptest's adaptive shrinking
//! and persistence). Covers the API surface the workspace tests use:
//! range strategies, tuples, `collection::vec`, `Just`, `prop_map`,
//! `prop_flat_map`, `prop_assert*`, `prop_assume` and `ProptestConfig`.

/// Strategy combinators and sampling.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of test values. Under the stub a strategy is just a
    /// deterministic sampler.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map sampled values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each sampled value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128) % span;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let u = rng.unit_f64() as $t;
                    lo + u * (hi - lo)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: exact or sampled from a range.
    pub trait SizeRange {
        /// Pick a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange + 'static) -> VecStrategy<S> {
        VecStrategy { element, size: Box::new(size) }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Box<dyn SizeRange>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the `proptest!` expansion.
pub mod test_runner {
    /// Deterministic RNG feeding strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed-seed RNG; `salt` separates properties from each other.
        pub fn deterministic(salt: u64) -> Self {
            TestRng { state: 0x5EED_CAFE_F00D_u64 ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!` — resample, don't fail.
        Reject,
        /// Assertion failure with message.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Runner configuration; only `cases` matters under the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; unused by the stub.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }
}

/// `proptest::prelude::*` — what tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Shorthand module mirroring `proptest::prop`.
pub mod prop {
    pub use crate::collection;
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $salt:expr; ($($arg:ident in $strat:expr),* $(,)?) $body:block) => {{
        let cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut rng = $crate::test_runner::TestRng::deterministic($salt);
        let mut ran: u32 = 0;
        let mut attempts: u32 = 0;
        while ran < cfg.cases {
            attempts += 1;
            assert!(
                attempts <= cfg.cases.saturating_mul(20).max(100),
                "too many prop_assume! rejections"
            );
            $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
            let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                Ok(())
            })();
            match outcome {
                Ok(()) => ran += 1,
                Err($crate::test_runner::TestCaseError::Reject) => continue,
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {msg}")
                }
            }
        }
    }};
}

/// Stub `proptest!` macro: same surface syntax, deterministic execution.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg); 0u64; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()); 0u64; $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:tt; $salt:expr;) => {};
    ($cfg:tt; $salt:expr;
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!($cfg; $salt; ($($args)*) $body);
        }
        $crate::__proptest_fns!{ $cfg; ($salt + 1u64); $($rest)* }
    };
}

/// Stub `prop_assert!`: returns a failure from the case closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Stub `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Stub `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", lhs, rhs),
            ));
        }
    }};
}

/// Stub `prop_assume!`: rejects the case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps_compose(
            n in 2usize..=4,
            xs in crate::collection::vec(0.0f64..1.0, 3),
            y in (0u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert!((2..=4).contains(&n));
            prop_assert_eq!(xs.len(), 3);
            prop_assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(y % 2 == 0 && y < 200);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10) {
            prop_assume!(a >= 5);
            prop_assert!(a >= 5, "assume should have filtered {a}");
        }
    }

    #[test]
    fn flat_map_produces_dependent_values() {
        use crate::strategy::Strategy;
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        let mut rng = crate::test_runner::TestRng::deterministic(9);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
