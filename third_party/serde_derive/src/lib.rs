//! Offline stub of `serde_derive`: emits empty trait impls for the stub
//! marker traits in the sibling `serde` stub. Handles plain (non-generic)
//! structs and enums, which is every serde-derived type in the workspace;
//! `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following the `struct`/`enum`/`union`
/// keyword at the top level of the derive input.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kind = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kind {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kind = true;
            }
        }
    }
    None
}

fn emit(input: TokenStream, render: impl Fn(&str) -> String) -> TokenStream {
    match type_name(&input) {
        Some(name) => render(&name).parse().unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| format!("impl ::serde::Serialize for {name} {{}}"))
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}"))
}
