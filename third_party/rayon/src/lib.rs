//! Offline stub of `rayon`: the parallel-iterator entry points degrade to
//! ordinary sequential `std` iterators, and `scope` maps onto
//! `std::thread::scope` (real OS threads, so concurrency tests still
//! exercise real interleavings).
//!
//! `into_par_iter()`/`par_iter()` return a thin [`ParIter`] wrapper that
//! keeps rayon-specific signatures working (notably the two-argument
//! `reduce(identity, op)`); everything else delegates to
//! `std::iter::Iterator`.

/// Sequential stand-in for a rayon parallel iterator. Implements
/// `Iterator` by delegation, and re-implements the rayon adapters whose
/// signatures differ from std (`reduce`) or that must keep returning a
/// `ParIter` so such a `reduce` stays reachable (`map`, `filter`).
#[derive(Debug, Clone)]
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// rayon's `map`, staying in `ParIter`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// rayon's `filter`, staying in `ParIter`.
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter(self.0.filter(p))
    }

    /// rayon's two-argument `reduce(identity, op)` (std's takes only `op`).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }
}

/// Parallel-iterator traits. Under this stub the wrapped iterators are
/// the sequential `std` ones.
pub mod prelude {
    pub use crate::ParIter;

    /// `into_par_iter()` — sequential under the stub.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Convert into a "parallel" (here: sequential) iterator.
        fn into_par_iter(self) -> ParIter<Self::IntoIter> {
            ParIter(self.into_iter())
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` — sequential under the stub.
    pub trait IntoParallelRefIterator<'a> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Borrowing "parallel" (here: sequential) iteration.
        fn par_iter(&'a self) -> ParIter<Self::Iter>;
    }
    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

/// A scope handle mirroring `rayon::Scope`, backed by `std::thread::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task on a real OS thread inside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            let s = Scope { inner };
            f(&s);
        });
    }
}

/// Run `f` with a scope on which tasks can be spawned; returns once every
/// spawned task has finished (exactly rayon's contract).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// rayon's fire-and-forget `spawn`: run `f` on a background worker. Under
/// the stub each task gets a detached OS thread instead of a pool slot;
/// the contract callers rely on — runs concurrently, completion is
/// observed through the work's own synchronization — is preserved.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name("rayon-stub".into())
        .spawn(f)
        .map(|_| ())
        .unwrap_or(());
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iters_behave_like_std() {
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().copied().sum();
        assert_eq!(sum, 6);
        let r: Vec<usize> = (0..4usize).into_par_iter().collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rayon_style_reduce_and_filter() {
        let m = (0..10u64).into_par_iter().map(|x| x as f64).reduce(|| 0.0, f64::max);
        assert_eq!(m, 9.0);
        let odds: Vec<u64> = (0..10u64).into_par_iter().filter(|x| x % 2 == 1).collect();
        assert_eq!(odds, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn scope_joins_spawned_threads() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 4);
    }
}
