//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! The workspace uses only `Mutex` and `RwLock` with the non-poisoning
//! `lock()`/`read()`/`write()` API. Poisoned std locks are recovered
//! transparently (`PoisonError::into_inner`), matching parking_lot's
//! panic-transparent semantics closely enough for this codebase.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
