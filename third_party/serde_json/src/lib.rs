//! Offline stub of `serde_json`. No workspace code calls it at runtime —
//! persisted formats use the self-contained `rqp_obs::json` codec and the
//! ESS snapshot text codec — but several manifests list it, so this stub
//! keeps dependency resolution working offline. The one entry point is a
//! `to_string` that reports the stub honestly instead of emitting bogus
//! JSON.

use serde::Serialize;

/// Error type mirroring `serde_json::Error` in name only.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Stub `to_string`: always errors, directing callers to the offline
/// codecs (`rqp_obs::json`) the workspace actually uses.
pub fn to_string<T: Serialize + ?Sized>(_value: &T) -> Result<String, Error> {
    Err(Error("serde_json offline stub cannot serialize; use rqp_obs::json".to_owned()))
}

/// Stub `to_string_pretty`: same contract as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}
