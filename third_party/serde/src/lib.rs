//! Offline stub of `serde`: `Serialize`/`Deserialize` are marker traits
//! and the derives (feature `derive`) emit empty impls. The workspace
//! never calls serde serialization at runtime — all persisted formats go
//! through self-contained codecs (`rqp_obs::json`, the ESS snapshot text
//! codec) precisely so the offline stub suffices. See third_party/README.md.

/// Marker stub of `serde::Serialize`. Carries no methods; deriving it is
/// a statement of intent only under the offline stub.
pub trait Serialize {}

/// Marker stub of `serde::Deserialize`. The lifetime parameter mirrors
/// real serde so `Deserialize<'de>` bounds would still parse.
pub trait Deserialize<'de>: Sized {}

/// Marker stub of `serde::de::DeserializeOwned`.
pub mod de {
    /// Owned-deserialization marker.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
