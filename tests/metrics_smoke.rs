//! Chaos counters land in the registry (stub-immune Prometheus render).
#[test]
fn chaos_counters_visible_in_prometheus_render() {
    robust_qp::executor::register_metrics();
    robust_qp::core::register_metrics();
    let w = robust_qp::workloads::Workload::q91(2).unwrap();
    let plan = robust_qp::chaos::FaultPlan::idle();
    let cfg = robust_qp::ess::EssConfig { resolution: 6, ..robust_qp::ess::EssConfig::for_dims(2) };
    let mut rt = w.runtime(cfg).unwrap();
    rt.set_fault_injector(&plan);
    let cells = robust_qp::chaos::probe_cells(&rt);
    let scheds = robust_qp::chaos::standard_schedules(3, 0.5);
    robust_qp::chaos::sweep(&rt, &plan, &cells, &scheds).unwrap();
    let prom = robust_qp::obs::global().render_prometheus();
    assert!(prom.contains("rqp_chaos_faults_injected_total"), "{prom}");
    assert!(prom.contains("rqp_supervisor_retries_total"), "{prom}");
}
