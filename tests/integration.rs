//! Cross-crate integration tests: the full pipeline from catalog building
//! through ESS compilation to robust discovery, exercised over the public
//! facade API.

use robust_qp::core::native::native_mso_worst_estimate;
use robust_qp::prelude::*;
use robust_qp::qplan::pipeline::{epp_spill_order, pipelines, spill_subtree};

fn example_runtime(resolution: usize) -> (Catalog, Query) {
    let catalog = CatalogBuilder::new()
        .relation(
            RelationBuilder::new("part", 2_000_000)
                .indexed_column("p_partkey", 2_000_000, 8)
                .column("p_retailprice", 50_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("lineitem", 60_000_000)
                .indexed_column("l_partkey", 2_000_000, 8)
                .indexed_column("l_orderkey", 15_000_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("orders", 15_000_000)
                .indexed_column("o_orderkey", 15_000_000, 8)
                .build(),
        )
        .build();
    let query = QueryBuilder::new(&catalog, "EQ")
        .table("part")
        .table("lineitem")
        .table("orders")
        .epp_join("part", "p_partkey", "lineitem", "l_partkey")
        .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
        .filter("part", "p_retailprice", 0.05)
        .build()
        .unwrap();
    let _ = resolution;
    (catalog, query)
}

fn compile<'a>(catalog: &'a Catalog, query: &'a Query, resolution: usize) -> RobustRuntime<'a> {
    // the runtime borrows both; callers keep them alive
    RobustRuntime::compile(
        catalog,
        query,
        CostModel::default(),
        EssConfig { resolution, min_sel: 1e-6, ..Default::default() },
    )
    .unwrap()
}

#[test]
fn all_algorithms_complete_with_valid_suboptimality() {
    let (catalog, query) = example_runtime(12);
    let rt = compile(&catalog, &query, 12);
    let algos: Vec<Box<dyn Discovery>> = vec![
        Box::new(PlanBouquet::new()),
        Box::new(PlanBouquet::anorexic(&rt, 0.2).unwrap()),
        Box::new(SpillBound::new()),
        Box::new(SpillBound::with_refined_bounds()),
        Box::new(AlignedBound::new()),
        Box::new(NativeOptimizer),
    ];
    let cells = [
        rt.grid().origin(),
        rt.grid().num_cells() / 3,
        rt.grid().num_cells() / 2,
        rt.grid().terminus(),
    ];
    for algo in &algos {
        for &qa in &cells {
            let t = algo.discover(&rt, qa);
            assert!(
                t.subopt() >= 1.0 - 1e-9,
                "{} at {qa}: subopt {} below 1",
                algo.name(),
                t.subopt()
            );
            assert!(t.steps.last().unwrap().completed, "{} at {qa}", algo.name());
            for s in &t.steps {
                assert!(
                    s.spent <= s.budget * (1.0 + 1e-9),
                    "{} at {qa}: spent exceeds budget",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn guarantees_hold_empirically_for_sb_and_ab() {
    let (catalog, query) = example_runtime(12);
    let rt = compile(&catalog, &query, 12);
    let d = rt.dims();
    // band-discretized guarantee (see DESIGN.md): 2 × (D²+3D)
    let bound = 2.0 * sb_guarantee(d);
    let sb = evaluate(&rt, &SpillBound::new());
    let ab = evaluate(&rt, &AlignedBound::new());
    assert!(sb.mso <= bound, "SB MSOe {} > {bound}", sb.mso);
    assert!(ab.mso <= bound, "AB MSOe {} > {bound}", ab.mso);
    // PlanBouquet's band-discretized behavioural bound: 8(1+λ)ρ_red
    let pb = PlanBouquet::anorexic(&rt, 0.2).unwrap();
    let rho = pb.rho(&rt);
    let pb_ev = evaluate(&rt, &pb);
    assert!(
        pb_ev.mso <= 2.0 * pb_guarantee(rho, 0.2),
        "PB MSOe {} > band-adjusted 8(1+λ)ρ = {}",
        pb_ev.mso,
        2.0 * pb_guarantee(rho, 0.2)
    );
}

#[test]
fn optimizer_plans_decompose_into_pipelines_and_spill_subtrees() {
    let (catalog, query) = example_runtime(8);
    let rt = compile(&catalog, &query, 8);
    let grid = rt.grid();
    for cell in [0, grid.num_cells() / 2, grid.terminus()] {
        let loc = grid.location(cell);
        let planned = rt.optimizer.optimize(&loc);
        // the plan joins all query relations
        let mut rels = planned.plan.base_relations();
        rels.sort();
        let mut expect = query.relations.clone();
        expect.sort();
        assert_eq!(rels, expect);
        // pipelines cover the plan, epps have a total order
        assert!(!pipelines(&planned.plan).is_empty());
        let order = epp_spill_order(&planned.plan, &query);
        assert_eq!(order.len(), query.dims(), "every epp appears in spill order");
        // spill subtrees cost no more than the full plan
        for &e in &order {
            let sub = spill_subtree(&planned.plan, &query, e).unwrap();
            assert!(
                rt.optimizer.cost_of(&sub, &loc) <= planned.cost * (1.0 + 1e-9),
                "subtree more expensive than plan"
            );
        }
    }
}

#[test]
fn native_baseline_is_dominated_by_spillbound_in_the_worst_case() {
    let (catalog, query) = example_runtime(10);
    let rt = compile(&catalog, &query, 10);
    let native_worst = native_mso_worst_estimate(&rt);
    let sb = evaluate(&rt, &SpillBound::new());
    assert!(
        native_worst > sb.mso,
        "native worst-case {} should exceed SB MSOe {}",
        native_worst,
        sb.mso
    );
}

#[test]
fn tpcds_suite_smoke_runs_every_query() {
    let catalog = robust_qp::workloads::tpcds_catalog();
    for &bq in BenchQuery::all() {
        let query = bq.build(&catalog).unwrap();
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 4, ..Default::default() },
        )
        .unwrap();
        let sb = SpillBound::new();
        for qa in [rt.grid().origin(), rt.grid().terminus()] {
            let t = sb.discover(&rt, qa);
            assert!(t.steps.last().unwrap().completed, "{} cell {qa}", bq.name());
            assert!(t.subopt() >= 1.0 - 1e-9);
        }
    }
}

#[test]
fn evaluation_is_deterministic_across_runs() {
    let (catalog, query) = example_runtime(8);
    let rt = compile(&catalog, &query, 8);
    let a = evaluate(&rt, &SpillBound::new());
    let b = evaluate(&rt, &SpillBound::new());
    assert_eq!(a.mso, b.mso);
    assert_eq!(a.subopts, b.subopts);
    let c = evaluate(&rt, &AlignedBound::new());
    let d = evaluate(&rt, &AlignedBound::new());
    assert_eq!(c.subopts, d.subopts);
}

#[test]
fn alignment_statistics_exposed_through_facade() {
    let (catalog, query) = example_runtime(10);
    let rt = compile(&catalog, &query, 10);
    let stats = alignment_stats(&rt);
    assert!(!stats.per_contour_penalty.is_empty());
    assert!(stats.pct_within(f64::INFINITY) == 100.0);
}
