//! Integration tests for the `rqp` command-line binary.

use std::process::Command;

fn rqp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rqp")).args(args).output().expect("binary runs")
}

#[test]
fn list_names_every_workload() {
    let out = rqp(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["3D_Q15", "4D_Q91", "6D_Q18", "JOB_Q1a", "2D_Q91"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn run_prints_a_trace() {
    let out = rqp(&["run", "--query", "2D_Q91", "--resolution", "8", "--algo", "sb"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SB at cell"));
    assert!(text.contains("done"));
}

#[test]
fn run_accepts_explicit_qa() {
    let out =
        rqp(&["run", "--query", "2D_Q91", "--resolution", "8", "--qa", "0.01,0.1", "--algo", "ab"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("AB at cell"));
}

#[test]
fn compile_writes_a_loadable_snapshot() {
    let dir = std::env::temp_dir().join(format!("rqp_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_file = dir.join("snap.json");
    let out = rqp(&[
        "compile",
        "--query",
        "2D_Q91",
        "--resolution",
        "8",
        "--out",
        out_file.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&out_file).unwrap();
    let snap = robust_qp::ess::PospSnapshot::from_json(&json).unwrap();
    let ess = snap.restore().unwrap();
    assert_eq!(ess.grid().num_cells(), 64);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn chaos_sweep_reports_held_invariants() {
    let out = rqp(&[
        "chaos",
        "--query",
        "2D_Q91",
        "--resolution",
        "6",
        "--seed",
        "1",
        "--schedules",
        "1",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all invariants held"), "missing verdict in:\n{text}");
    assert!(text.contains("storm"), "missing storm schedule in:\n{text}");
}

#[test]
fn atlas_requires_two_epps() {
    let out = rqp(&["atlas", "--query", "4D_Q91", "--resolution", "5"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("2-epp"));
}

#[test]
fn unknown_workload_fails_cleanly() {
    let out = rqp(&["run", "--query", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn traced_serve_exports_pass_trace_check() {
    let dir = std::env::temp_dir().join(format!("rqp_cli_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let flame = dir.join("stacks.folded");
    let out = rqp(&[
        "serve",
        "--query",
        "2D_Q91",
        "--sessions",
        "8",
        "--workers",
        "8",
        "--trace-out",
        trace.to_str().unwrap(),
        "--flame-out",
        flame.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("8 session trace(s) captured"), "{text}");

    let check = rqp(&["trace-check", "--file", trace.to_str().unwrap()]);
    assert!(check.status.success(), "{}", String::from_utf8_lossy(&check.stderr));
    let verdict = String::from_utf8_lossy(&check.stdout);
    assert!(verdict.contains("trace check passed"), "{verdict}");

    let folded = std::fs::read_to_string(&flame).unwrap();
    assert!(folded.contains("session;ess_compile"), "compile path missing in:\n{folded}");

    // A non-trace JSON file is refused with a structured failure.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"traceEvents\": []}").unwrap();
    let fail = rqp(&["trace-check", "--file", bogus.to_str().unwrap()]);
    assert!(!fail.status.success());
    assert!(String::from_utf8_lossy(&fail.stderr).contains("trace check failed"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sql_subcommand_parses_and_runs() {
    let dir = std::env::temp_dir().join(format!("rqp_cli_sql_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sql_file = dir.join("q.sql");
    std::fs::write(
        &sql_file,
        "SELECT * FROM store_sales, date_dim \
         WHERE store_sales.ss_sold_date_sk ?= date_dim.d_date_sk \
           AND sel(date_dim.d_year) = 0.005",
    )
    .unwrap();
    let out = rqp(&[
        "sql",
        "--catalog",
        "tpcds",
        "--file",
        sql_file.to_str().unwrap(),
        "--resolution",
        "8",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 epps") || text.contains("1 epp"));
    std::fs::remove_dir_all(&dir).unwrap();
}
