//! Property-based tests over randomly generated catalogs, queries and
//! selectivity locations: the invariants every MSO guarantee rests on.

use proptest::prelude::*;
use robust_qp::prelude::*;

/// A randomly parameterized chain-join workload: `r0 ⋈ r1 ⋈ … ⋈ rk` with
/// every join error-prone and one filter on the first relation.
#[derive(Debug, Clone)]
struct ChainSpec {
    rows: Vec<u64>,
    ndv_frac: Vec<f64>,
    filter_sel: f64,
}

fn chain_spec() -> impl Strategy<Value = ChainSpec> {
    (2usize..=4)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1_000u64..100_000_000, n),
                proptest::collection::vec(0.01f64..1.0, n),
                0.001f64..1.0,
            )
        })
        .prop_map(|(rows, ndv_frac, filter_sel)| ChainSpec { rows, ndv_frac, filter_sel })
}

fn build_workload(spec: &ChainSpec) -> (Catalog, Query) {
    let mut cb = CatalogBuilder::new();
    for (i, (&rows, &f)) in spec.rows.iter().zip(&spec.ndv_frac).enumerate() {
        let ndv = ((rows as f64 * f) as u64).max(2);
        cb = cb.relation(
            RelationBuilder::new(format!("r{i}"), rows)
                .indexed_column("k", ndv, 8)
                .indexed_column("j", ndv, 8)
                .column("v", (rows / 10).max(2), 8)
                .build(),
        );
    }
    let catalog = cb.build();
    let mut qb = QueryBuilder::new(&catalog, "chain");
    for i in 0..spec.rows.len() {
        qb = qb.table(&format!("r{i}"));
    }
    for i in 0..spec.rows.len() - 1 {
        let (l, r) = (format!("r{i}"), format!("r{}", i + 1));
        qb = qb.epp_join(&l, "j", &r, "k");
    }
    let query = qb.filter("r0", "v", spec.filter_sel).build().unwrap();
    (catalog, query)
}

fn sel_in_range() -> impl Strategy<Value = f64> {
    // log-uniform selectivity in [1e-6, 1]
    (0.0f64..1.0).prop_map(|t| 10f64.powf(-6.0 * (1.0 - t)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// PCM (§2.4): any plan's cost is non-decreasing under dominance.
    #[test]
    fn pcm_holds_for_optimizer_plans(
        spec in chain_spec(),
        base in proptest::collection::vec(sel_in_range(), 3),
        bumps in proptest::collection::vec(1.0f64..100.0, 3),
    ) {
        let (catalog, query) = build_workload(&spec);
        let d = query.dims();
        let q1 = SelVector::from_values(&base[..d]);
        let mut hi: Vec<f64> = base[..d].iter().zip(&bumps[..d]).map(|(&b, &m)| (b * m).min(1.0)).collect();
        for v in &mut hi {
            *v = v.max(1e-8);
        }
        let q2 = SelVector::from_values(&hi);
        prop_assume!(q2.dominates(&q1));

        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        // plans optimal at either endpoint must both respect PCM
        for planned in [opt.optimize(&q1), opt.optimize(&q2)] {
            let c1 = opt.cost_of(&planned.plan, &q1);
            let c2 = opt.cost_of(&planned.plan, &q2);
            prop_assert!(c2 >= c1 * (1.0 - 1e-9), "PCM violated: {c1} -> {c2}");
        }
    }

    /// The optimizer is optimal within its own plan space: re-costing the
    /// plan it returns reproduces the reported cost, and no plan optimal
    /// elsewhere beats it at its own location.
    #[test]
    fn posp_cells_are_mutually_consistent(spec in chain_spec()) {
        let (catalog, query) = build_workload(&spec);
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 5, min_sel: 1e-5, ..Default::default() },
        )
        .unwrap();
        let ess = rt.ess().unwrap();
        let grid = ess.grid();
        let step = (grid.num_cells() / 16).max(1);
        for cell in (0..grid.num_cells()).step_by(step) {
            let oracle = ess.posp.cost(cell);
            for (id, _) in ess.posp.registry().iter() {
                let c = ess.posp.cost_of_plan_at(&rt.optimizer, id, cell);
                prop_assert!(
                    c >= oracle * (1.0 - 1e-9),
                    "plan {id} at cell {cell} beats the recorded optimum: {c} < {oracle}"
                );
            }
        }
    }

    /// SpillBound completes everywhere with `1 ≤ SubOpt ≤ 2(D²+3D)` and its
    /// learning never overshoots the truth.
    #[test]
    fn spillbound_invariants(spec in chain_spec()) {
        let (catalog, query) = build_workload(&spec);
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 5, min_sel: 1e-5, ..Default::default() },
        )
        .unwrap();
        let grid = rt.grid();
        let sb = SpillBound::new();
        let bound = 2.0 * sb_guarantee(rt.dims());
        let step = (grid.num_cells() / 12).max(1);
        for qa in (0..grid.num_cells()).step_by(step) {
            let t = sb.discover(&rt, qa);
            prop_assert!(t.steps.last().unwrap().completed);
            prop_assert!(t.subopt() >= 1.0 - 1e-9, "subopt {}", t.subopt());
            prop_assert!(t.subopt() <= bound + 1e-9, "subopt {} > {bound}", t.subopt());
            let qa_loc = grid.location(qa);
            for s in &t.steps {
                if let Some((dim, v, exact)) = s.learned {
                    let truth = qa_loc.get(dim.0).value();
                    if exact {
                        prop_assert!((v - truth).abs() <= 1e-12 * truth);
                    } else {
                        prop_assert!(v <= truth * (1.0 + 1e-9));
                    }
                }
            }
        }
    }

    /// Contour bands partition the grid and band costs grow geometrically.
    #[test]
    fn contours_partition_and_double(spec in chain_spec()) {
        let (catalog, query) = build_workload(&spec);
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 5, min_sel: 1e-5, ..Default::default() },
        )
        .unwrap();
        let ess = rt.ess().unwrap();
        let contours = &ess.contours;
        let total: usize = (0..contours.num_bands()).map(|b| contours.cells(b).len()).sum();
        prop_assert_eq!(total, ess.grid().num_cells());
        for b in 1..contours.num_bands() {
            prop_assert!((contours.cc(b) / contours.cc(b - 1) - 2.0).abs() < 1e-9);
        }
        for b in 0..contours.num_bands() {
            for &cell in contours.cells(b) {
                let c = ess.posp.cost(cell);
                prop_assert!(c >= contours.cc(b) * (1.0 - 1e-12));
                prop_assert!(c < contours.cc(b) * 2.0 * (1.0 + 1e-12));
            }
        }
    }

    /// Anorexic reduction never assigns a plan worse than (1+λ)×optimal.
    #[test]
    fn anorexic_respects_lambda(spec in chain_spec(), lambda in 0.0f64..1.0) {
        let (catalog, query) = build_workload(&spec);
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 5, min_sel: 1e-5, ..Default::default() },
        )
        .unwrap();
        let ess = rt.ess().unwrap();
        let reduced = robust_qp::ess::anorexic_reduce(&ess.posp, &rt.optimizer, lambda);
        prop_assert!(reduced.num_plans <= ess.posp.num_plans());
        let step = (ess.grid().num_cells() / 16).max(1);
        for cell in (0..ess.grid().num_cells()).step_by(step) {
            let c = ess.posp.cost_of_plan_at(&rt.optimizer, reduced.cell_plan[cell], cell);
            prop_assert!(c <= (1.0 + lambda) * ess.posp.cost(cell) * (1.0 + 1e-9));
        }
    }

    /// Dominance on selectivity vectors is a partial order compatible with
    /// the component-wise max.
    #[test]
    fn dominance_lattice_laws(
        a in proptest::collection::vec(sel_in_range(), 3),
        b in proptest::collection::vec(sel_in_range(), 3),
    ) {
        let va = SelVector::from_values(&a);
        let vb = SelVector::from_values(&b);
        let m = va.join_max(&vb);
        prop_assert!(m.dominates(&va) && m.dominates(&vb));
        prop_assert!(va.dominates(&va));
        if va.dominates(&vb) && vb.dominates(&va) {
            prop_assert_eq!(va.clone(), vb.clone());
        }
        // join_max is the least upper bound: any common dominator of a and
        // b dominates their max
        let big = SelVector::from_values(&[1.0, 1.0, 1.0]);
        prop_assert!(big.dominates(&m));
    }
}

mod row_level {
    use super::*;
    use robust_qp::executor::{DataSet, RowExecutor};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Row-level validation: structurally different optimal plans of the
        /// same query compute identical result cardinalities on real tuples.
        #[test]
        fn physical_plans_agree_on_generated_data(
            seed in 0u64..1000,
            sel_a in 0.001f64..0.2,
            sel_b in 0.001f64..0.2,
        ) {
            let w = robust_qp::workloads::synth_workload(
                robust_qp::workloads::SynthConfig::chain(3, seed),
            )
            .unwrap();
            let target = SelVector::from_values(&[sel_a, sel_b]);
            let data = DataSet::generate(&w.catalog, &w.query, &target, 400, seed);
            let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
            let mut counts = Vec::new();
            for loc in [
                SelVector::from_values(&[1e-5, 1e-5]),
                target.clone(),
                SelVector::from_values(&[0.9, 0.9]),
            ] {
                let planned = opt.optimize(&loc);
                let mut exec = RowExecutor::new(&w.catalog, &w.query, &data);
                counts.push(exec.run(&planned.plan).expect("no quota").len());
            }
            prop_assert_eq!(counts[0], counts[1]);
            prop_assert_eq!(counts[1], counts[2]);
        }

        /// Snapshot round-trips preserve the full POSP bit-for-bit.
        #[test]
        fn snapshot_roundtrip_is_lossless(seed in 0u64..200) {
            let w = robust_qp::workloads::synth_workload(
                robust_qp::workloads::SynthConfig::star(3, seed),
            )
            .unwrap();
            let rt = w.runtime(EssConfig { resolution: 6, ..Default::default() }).unwrap();
            let ess = rt.ess().unwrap();
            let snap = robust_qp::ess::PospSnapshot::capture(&ess);
            let restored = robust_qp::ess::PospSnapshot::from_json(&snap.to_json().unwrap())
                .unwrap()
                .restore()
                .unwrap();
            for cell in ess.grid().cells() {
                prop_assert_eq!(restored.posp.cost(cell), ess.posp.cost(cell));
                prop_assert_eq!(restored.posp.plan_id(cell), ess.posp.plan_id(cell));
            }
        }
    }
}
