#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # robust-qp — platform-independent robust query processing
//!
//! A Rust implementation of the **PlanBouquet**, **SpillBound** and
//! **AlignedBound** robust query processing algorithms (Karthik, Haritsa,
//! Kenkre, Pandit, Krishnan — *Platform-Independent Robust Query
//! Processing*, IEEE TKDE 2019; presented as the ICDE 2019 tutorial
//! *Robust Query Processing: Mission Possible*), together with every
//! substrate they need: a statistics catalog, physical plans with a
//! PCM-compliant cost model, a Selinger-style optimizer with selectivity
//! injection, a budgeted/spill execution engine, and the error-prone
//! selectivity space machinery (POSP compilation, iso-cost contours,
//! anorexic reduction).
//!
//! ## Quickstart
//!
//! ```
//! use robust_qp::prelude::*;
//!
//! // a workload: TPC-DS Q15 with three error-prone join predicates
//! let w = Workload::tpcds(BenchQuery::Q15_3D)?;
//! // compile the ESS (coarse grid for the doctest)
//! let rt = w.runtime(EssConfig::coarse(3))?;
//! // run SpillBound for a query instance at the grid terminus
//! let trace = SpillBound::new().discover(&rt, rt.grid().terminus());
//! assert!(trace.subopt() <= 2.0 * sb_guarantee(3));
//! # Ok::<(), RqpError>(())
//! ```
//!
//! The facade re-exports each layer; see the member crates for details:
//! [`catalog`], [`qplan`], [`optimizer`], [`executor`], [`ess`], [`core`],
//! [`workloads`], [`obs`], [`chaos`], [`serve`], [`lint`].

pub use rqp_catalog as catalog;
pub use rqp_chaos as chaos;
pub use rqp_core as core;
pub use rqp_ess as ess;
pub use rqp_executor as executor;
pub use rqp_lint as lint;
pub use rqp_obs as obs;
pub use rqp_optimizer as optimizer;
pub use rqp_qplan as qplan;
pub use rqp_serve as serve;
pub use rqp_workloads as workloads;

/// The commonly-used surface of the library.
pub mod prelude {
    pub use rqp_catalog::{
        Catalog, CatalogBuilder, EppId, Query, QueryBuilder, RelationBuilder, RqpError, RqpResult,
        SelVector, Selectivity,
    };
    pub use rqp_chaos::{FaultConfig, FaultPlan};
    pub use rqp_core::{
        ab_guarantee_range, alignment_stats, evaluate, pb_guarantee, sb_guarantee, AlignedBound,
        Discovery, DiscoveryTrace, NativeOptimizer, PlanBouquet, ReOptimizer, RetryPolicy,
        RobustRuntime, SpillBound,
    };
    pub use rqp_ess::{CompileCache, CompileMode, Ess, EssConfig, Grid, PlanId, Posp};
    pub use rqp_executor::Engine;
    pub use rqp_optimizer::{Optimizer, Planned};
    pub use rqp_qplan::{CostModel, CostParams, PlanNode};
    pub use rqp_serve::{serve_workload, ServeConfig, ServeReport, Server, SessionSpec};
    pub use rqp_workloads::{parse_session_file, BenchQuery, SessionEntry, Workload};
}
