//! `rqp` — command-line front end to the robust query processing library.
//!
//! ```text
//! rqp list
//! rqp compile  --query 4D_Q91 [--resolution N] [--out ess.json]
//! rqp run      --query 4D_Q91 [--algo sb|ab|pb|native|reopt] [--qa s1,s2,..] [--resolution N] [--lazy true]
//! rqp report   --query 3D_Q15 [--resolution N]
//! rqp atlas    --query 2D_Q91 [--resolution N]
//! rqp sql      --catalog tpcds|imdb --file query.sql [--algo sb] [--resolution N]
//! rqp chaos    --query 2D_Q91 [--resolution N] [--seed S] [--schedules K]
//!              [--rate P] [--metrics PATH]
//! rqp serve    --workload FILE | --query 2D_Q91 [--sessions K] [--algo sb]
//!              [--workers N] [--queue M] [--resolution N] [--deadline-ms T]
//!              [--budget-cap X] [--chaos-seed S] [--rate P] [--cache-dir DIR]
//!              [--strict true] [--telemetry-addr HOST:PORT]
//!              [--trace-out FILE] [--flame-out FILE]
//!              [--compile-rate P] [--degrade true] [--lazy true]
//!              [--drill crash-recover|storm]
//!              [--listen HOST:PORT [--shard K/N] [--addr-file FILE]]
//!              [--stable-out FILE]
//! rqp connect  --addr HOST:PORT[,HOST:PORT..] --workload FILE [--resolution N]
//!              [--stable-out FILE] [--shutdown true]
//! rqp trace-check --file trace.json
//! ```

use robust_qp::core::native::native_mso_worst_estimate;
use robust_qp::ess::PospSnapshot;
use robust_qp::prelude::*;
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let flags = parse_flags(&args[1..]);
    match cmd.as_str() {
        "list" => list(),
        "compile" => compile(&flags),
        "run" => run(&flags),
        "report" => report(&flags),
        "atlas" => atlas(&flags),
        "sql" => sql(&flags),
        "chaos" => chaos(&flags),
        "serve" => serve(&flags),
        "connect" => connect(&flags),
        "lint" => lint(&flags),
        "trace-check" => trace_check(&flags),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "rqp — robust query processing\n\
         commands:\n\
         \x20 list                                   list named workloads\n\
         \x20 compile --query NAME [--resolution N] [--out FILE]\n\
         \x20         [--cache-dir DIR] [--mode exact|recost|recost:STRIDE]\n\
         \x20 run     --query NAME [--algo sb|ab|pb|native|reopt] [--qa s1,s2,..]\n\
         \x20         [--lazy true]   compile contour bands only as discovery pulls them\n\
         \x20 report  --query NAME [--resolution N]\n\
         \x20 atlas   --query NAME [--resolution N]   (2-epp queries)\n\
         \x20 sql     --catalog tpcds|imdb --file FILE [--algo sb]\n\
         \x20 chaos   --query NAME [--seed S] [--schedules K] [--rate P] [--metrics FILE]\n\
         \x20 serve   --workload FILE | --query NAME [--sessions K] [--algo sb]\n\
         \x20         [--workers N] [--queue M] [--deadline-ms T] [--budget-cap X]\n\
         \x20         [--chaos-seed S] [--rate P] [--cache-dir DIR] [--strict true]\n\
         \x20         [--telemetry-addr HOST:PORT] [--trace-out FILE] [--flame-out FILE]\n\
         \x20         [--compile-rate P] [--degrade true] [--lazy true]\n\
         \x20         [--drill crash-recover|storm]\n\
         \x20         [--listen HOST:PORT [--shard K/N] [--addr-file FILE]]\n\
         \x20         [--stable-out FILE]\n\
         \x20 connect --addr HOST:PORT[,HOST:PORT...] (in shard order)\n\
         \x20         --workload FILE | --query NAME [--sessions K] [--algo sb]\n\
         \x20         [--resolution N] [--stable-out FILE] [--shutdown true]\n\
         \x20 lint    [--root DIR] [--format text|json] [--deny-warnings true]\n\
         \x20         [--lock-graph DIR [--dot FILE]]\n\
         \x20 trace-check --file FILE                validate a Chrome trace export"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            eprintln!("expected --flag, got {a:?}");
            exit(2);
        };
        let Some(v) = it.next() else {
            eprintln!("flag --{key} needs a value");
            exit(2);
        };
        flags.insert(key.to_string(), v.clone());
    }
    flags
}

fn workload_by_name(name: &str) -> Workload {
    Workload::by_name(name).unwrap_or_else(|e| match e {
        RqpError::Config(msg) => {
            eprintln!("{msg}; try `rqp list`");
            exit(2);
        }
        other => {
            eprintln!("cannot build workload {name:?}: {other}");
            exit(1);
        }
    })
}

fn runtime_or_exit<'a>(w: &'a Workload, cfg: EssConfig) -> RobustRuntime<'a> {
    w.runtime(cfg).unwrap_or_else(|e| {
        eprintln!("ESS compilation failed: {e}");
        exit(1)
    })
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        exit(2);
    })
}

fn parse_or<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags.get(key).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("bad --{key} {v:?}");
            exit(2);
        })
    })
}

fn config_for(flags: &HashMap<String, String>, dims: usize) -> EssConfig {
    let mut cfg = EssConfig::coarse(dims);
    if let Some(r) = flags.get("resolution") {
        cfg.resolution = r.parse().unwrap_or_else(|_| {
            eprintln!("bad --resolution {r:?}");
            exit(2);
        });
    }
    if let Some(mode) = flags.get("mode") {
        cfg.mode = match mode.to_ascii_lowercase().as_str() {
            "exact" => CompileMode::Exact,
            "recost" => CompileMode::default(),
            other => match other.strip_prefix("recost:").and_then(|s| s.parse().ok()) {
                Some(stride) => CompileMode::Recost { seed_stride: stride },
                None => {
                    eprintln!("bad --mode {mode:?} (exact|recost|recost:STRIDE)");
                    exit(2);
                }
            },
        };
    }
    if let Some(dir) = flags.get("cache-dir") {
        if let Err(e) = robust_qp::ess::set_global_cache_dir(dir) {
            eprintln!("cannot enable compile cache: {e}");
            exit(2);
        }
    }
    cfg
}

/// One-line summary of the persistent-cache counters for this process.
fn cache_summary() -> String {
    let g = robust_qp::obs::global();
    format!(
        "compile cache: {} hit(s), {} miss(es), {} store(s)",
        g.counter(robust_qp::obs::names::ESS_CACHE_HITS).get(),
        g.counter(robust_qp::obs::names::ESS_CACHE_MISSES).get(),
        g.counter(robust_qp::obs::names::ESS_CACHE_STORES).get()
    )
}

fn algo_by_name(name: &str) -> Box<dyn Discovery> {
    match name.to_ascii_lowercase().as_str() {
        "sb" => Box::new(SpillBound::with_refined_bounds()),
        "ab" => Box::new(AlignedBound::new()),
        "pb" => Box::new(PlanBouquet::new()),
        "native" => Box::new(NativeOptimizer),
        "reopt" => Box::new(ReOptimizer::default()),
        other => {
            eprintln!("unknown algorithm {other:?} (sb|ab|pb|native|reopt)");
            exit(2);
        }
    }
}

fn list() {
    println!("named workloads:");
    for &bq in BenchQuery::all() {
        println!("  {:<8} TPC-DS, {} error-prone join predicates", bq.name(), bq.dims());
    }
    for d in 2..=6 {
        println!("  {d}D_Q91   TPC-DS Q91 with {d} epps (dimensionality sweep)");
    }
    println!("  JOB_Q1a  Join Order Benchmark Q1a, 3 epps");
}

fn compile(flags: &HashMap<String, String>) {
    let w = workload_by_name(required(flags, "query"));
    let cfg = config_for(flags, w.query.dims());
    let t0 = std::time::Instant::now();
    let rt = runtime_or_exit(&w, cfg);
    let ess = rt.ess().unwrap_or_else(|e| {
        eprintln!("surface materialization failed: {e}");
        exit(1)
    });
    println!(
        "compiled {}: {} cells, {} plans, {} contours in {:.2?}",
        w.query.name,
        ess.grid().num_cells(),
        ess.posp.num_plans(),
        ess.contours.num_bands(),
        t0.elapsed()
    );
    if flags.contains_key("cache-dir") {
        println!("{}", cache_summary());
    }
    if let Some(out) = flags.get("out") {
        let snap = PospSnapshot::capture(&ess);
        let json = snap.to_json().unwrap_or_else(|e| {
            eprintln!("cannot serialize snapshot: {e}");
            exit(1)
        });
        std::fs::write(out, json).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1);
        });
        println!("snapshot written to {out}");
    }
}

fn run(flags: &HashMap<String, String>) {
    let w = workload_by_name(required(flags, "query"));
    let cfg = config_for(flags, w.query.dims());
    let lazy = flags.get("lazy").is_some_and(|v| v == "true" || v == "1");
    let rt = if lazy {
        w.runtime_lazy(cfg).unwrap_or_else(|e| {
            eprintln!("lazy ESS admission failed: {e}");
            exit(1)
        })
    } else {
        runtime_or_exit(&w, cfg)
    };
    let grid = rt.grid();
    let qa = match flags.get("qa") {
        None => grid.num_cells() / 2,
        Some(spec) => {
            let vals: Vec<f64> = spec
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("bad selectivity {s:?} in --qa");
                        exit(2);
                    })
                })
                .collect();
            if vals.len() != grid.dims() {
                eprintln!("--qa needs {} comma-separated selectivities", grid.dims());
                exit(2);
            }
            let coords: Vec<usize> =
                vals.iter().enumerate().map(|(d, &v)| grid.snap_ceil(d, v)).collect();
            grid.index(&coords)
        }
    };
    let algo = algo_by_name(flags.get("algo").map(String::as_str).unwrap_or("sb"));
    let trace = algo.discover(&rt, qa);
    println!("qa = {} (cell {qa})", grid.location(qa));
    println!("{}", trace.render());
    if lazy {
        println!(
            "lazy compile: {} of {} contour bands materialized",
            rt.bands_compiled(),
            rt.num_bands()
        );
    }
}

fn report(flags: &HashMap<String, String>) {
    let w = workload_by_name(required(flags, "query"));
    let d = w.query.dims();
    let cfg = config_for(flags, d);
    let rt = runtime_or_exit(&w, cfg);
    let pb = PlanBouquet::anorexic(&rt, 0.2).unwrap_or_else(|e| {
        eprintln!("anorexic reduction failed: {e}");
        exit(1)
    });
    let rho = pb.rho(&rt);
    println!("{}: D = {d}, ρ_red = {rho}", w.query.name);
    println!(
        "  guarantees: PB {:>7.1}   SB {:>7.1}   AB [{:.0}, {:.0}]",
        pb_guarantee(rho, 0.2),
        sb_guarantee(d),
        ab_guarantee_range(d).0,
        ab_guarantee_range(d).1,
    );
    let pb_ev = evaluate(&rt, &pb);
    let sb_ev = evaluate(&rt, &SpillBound::new());
    let ab_ev = evaluate(&rt, &AlignedBound::new());
    println!(
        "  empirical:  PB MSO {:>5.1} ASO {:>5.2} | SB MSO {:>5.1} ASO {:>5.2} | AB MSO {:>5.1} ASO {:>5.2}",
        pb_ev.mso, pb_ev.aso, sb_ev.mso, sb_ev.aso, ab_ev.mso, ab_ev.aso
    );
    println!("  native worst-case MSO: {:.0}", native_mso_worst_estimate(&rt));
}

fn atlas(flags: &HashMap<String, String>) {
    let w = workload_by_name(required(flags, "query"));
    if w.query.dims() != 2 {
        eprintln!("atlas needs a 2-epp query (try 2D_Q91)");
        exit(2);
    }
    let cfg = config_for(flags, 2);
    let rt = runtime_or_exit(&w, cfg);
    let ess = rt.ess().unwrap_or_else(|e| {
        eprintln!("surface materialization failed: {e}");
        exit(1)
    });
    let grid = ess.grid();
    let res = grid.res(0);
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    println!("plan diagram ({} plans):", ess.posp.num_plans());
    for y in (0..res).rev() {
        let row: String = (0..res)
            .map(|x| {
                let id = ess.posp.plan_id(grid.index(&[x, y])).0 as usize;
                GLYPHS[id % GLYPHS.len()] as char
            })
            .collect();
        println!("  {row}");
    }
    println!("contour bands (digit = band mod 10):");
    for y in (0..res).rev() {
        let row: String = (0..res)
            .map(|x| {
                char::from_digit((ess.contours.band_of(grid.index(&[x, y])) % 10) as u32, 10)
                    .unwrap_or('?')
            })
            .collect();
        println!("  {row}");
    }
}

fn chaos(flags: &HashMap<String, String>) {
    use robust_qp::chaos::{probe_cells, standard_schedules, sweep, ChaosReport, FaultPlan};

    let w = workload_by_name(required(flags, "query"));
    let cfg = config_for(flags, w.query.dims());
    let seed: u64 = parse_or(flags, "seed", 1);
    let schedules_n: u64 = parse_or(flags, "schedules", 4);
    let rate: f64 = parse_or(flags, "rate", 0.35);
    if schedules_n == 0 {
        eprintln!("--schedules must be at least 1 (a zero-run sweep verifies nothing)");
        exit(2);
    }
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("--rate must lie in [0, 1], got {rate}");
        exit(2);
    }

    robust_qp::executor::register_metrics();
    robust_qp::core::register_metrics();

    let plan = FaultPlan::idle();
    let mut rt = runtime_or_exit(&w, cfg);
    rt.set_fault_injector(&plan);
    let cells = probe_cells(&rt);
    println!(
        "chaos sweep on {}: {} schedules x 6 fault classes x 5 algorithms x {} instances \
         (seed {seed}, rate {rate})",
        w.query.name,
        schedules_n,
        cells.len()
    );
    let mut all = ChaosReport::default();
    for k in 0..schedules_n {
        let schedules = standard_schedules(seed.wrapping_add(k), rate);
        match sweep(&rt, &plan, &cells, &schedules) {
            Ok(mut r) => all.runs.append(&mut r.runs),
            Err(e) => {
                eprintln!("chaos invariant violated: {e}");
                exit(1);
            }
        }
    }
    println!("{}", all.render());
    println!(
        "all invariants held (degraded charge factor {:.1}x per logical execution)",
        rt.retry_policy().degraded_factor()
    );
    if let Some(path) = flags.get("metrics") {
        let json = robust_qp::obs::global().to_json_pretty().unwrap_or_else(|e| {
            eprintln!("cannot serialize metrics snapshot: {e}");
            exit(1);
        });
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("metrics: {path}");
    }
}

fn sql(flags: &HashMap<String, String>) {
    let catalog = match required(flags, "catalog") {
        c if c.eq_ignore_ascii_case("tpcds") => robust_qp::workloads::tpcds_catalog(),
        c if c.eq_ignore_ascii_case("imdb") => robust_qp::workloads::imdb_catalog(),
        other => {
            eprintln!("unknown catalog {other:?} (tpcds|imdb)");
            exit(2);
        }
    };
    let file = required(flags, "file");
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1);
    });
    let query = robust_qp::catalog::parse_query(&catalog, "adhoc", &text).unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(1);
    });
    println!("parsed {:?}: {} relations, {} epps", file, query.relations.len(), query.dims());
    let cfg = config_for(flags, query.dims());
    let rt =
        RobustRuntime::compile(&catalog, &query, CostModel::default(), cfg).unwrap_or_else(|e| {
            eprintln!("ESS compilation failed: {e}");
            exit(1)
        });
    let algo = algo_by_name(flags.get("algo").map(String::as_str).unwrap_or("sb"));
    let qa = rt.grid().num_cells() / 2;
    let trace = algo.discover(&rt, qa);
    println!("{}", trace.render());
}

fn serve(flags: &HashMap<String, String>) {
    use robust_qp::serve::{serve_workload, ServeConfig};

    // Scripted resilience drills short-circuit the normal serve path.
    if let Some(which) = flags.get("drill") {
        robust_qp::serve::register_metrics();
        let drill = match which.as_str() {
            "crash-recover" => {
                let dir = flags.get("cache-dir").map_or_else(
                    || std::env::temp_dir().join(format!("rqp-drill-{}", std::process::id())),
                    std::path::PathBuf::from,
                );
                robust_qp::serve::crash_recover_drill(&dir)
            }
            "storm" => robust_qp::serve::storm_drill(
                parse_or(flags, "chaos-seed", 0x00C0_FFEE_u64),
                parse_or(flags, "sessions", 120usize),
            ),
            other => {
                eprintln!("unknown drill {other:?} (crash-recover|storm)");
                exit(2);
            }
        };
        let drill = drill.unwrap_or_else(|e| {
            eprintln!("drill failed to run: {e}");
            exit(1);
        });
        print!("{}", drill.render());
        if !drill.passed() {
            exit(1);
        }
        return;
    }

    // `--listen` servers carry no workload of their own — sessions
    // arrive as wire frames — so resolve entries only for local runs.
    let listen = flags.get("listen");
    let entries = if listen.is_some() { Vec::new() } else { session_entries(flags) };
    let total: usize = entries.iter().map(|e| e.count).sum();

    let rate: f64 = parse_or(flags, "rate", 0.0);
    if !(0.0..=1.0).contains(&rate) {
        eprintln!("--rate must lie in [0, 1], got {rate}");
        exit(2);
    }
    let chaos = flags.get("chaos-seed").map(|s| {
        let seed: u64 = s.parse().unwrap_or_else(|_| {
            eprintln!("bad --chaos-seed {s:?}");
            exit(2);
        });
        if rate > 0.0 {
            robust_qp::chaos::FaultConfig::storm(seed, rate)
        } else {
            robust_qp::chaos::FaultConfig::quiet(seed)
        }
    });

    let config = ServeConfig {
        workers: parse_or(flags, "workers", 4usize),
        queue_cap: parse_or(flags, "queue", 64usize),
        resolution: flags.get("resolution").map(|r| {
            r.parse().unwrap_or_else(|_| {
                eprintln!("bad --resolution {r:?}");
                exit(2);
            })
        }),
        deadline: flags.get("deadline-ms").map(|v| {
            let ms: u64 = v.parse().unwrap_or_else(|_| {
                eprintln!("bad --deadline-ms {v:?}");
                exit(2);
            });
            std::time::Duration::from_millis(ms)
        }),
        budget_cap: flags.get("budget-cap").map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad --budget-cap {v:?}");
                exit(2);
            })
        }),
        chaos,
        compile_chaos: flags.get("compile-rate").map(|p| {
            let rate: f64 = p.parse().unwrap_or_else(|_| {
                eprintln!("bad --compile-rate {p:?}");
                exit(2);
            });
            if !(0.0..=1.0).contains(&rate) {
                eprintln!("--compile-rate must lie in [0, 1], got {rate}");
                exit(2);
            }
            let seed = parse_or(flags, "chaos-seed", 0u64);
            if rate > 0.0 {
                robust_qp::chaos::CompileFaultConfig::storm(seed, rate)
            } else {
                robust_qp::chaos::CompileFaultConfig::quiet(seed)
            }
        }),
        degrade: flags.get("degrade").map(String::as_str) == Some("true"),
        lazy: flags.get("lazy").map(String::as_str) == Some("true"),
        keep_traces: false,
        cache_dir: flags.get("cache-dir").map(std::path::PathBuf::from),
        // Any trace consumer (live endpoint or file export) turns tracing on.
        tracing: flags.contains_key("telemetry-addr")
            || flags.contains_key("trace-out")
            || flags.contains_key("flame-out"),
        telemetry_addr: flags.get("telemetry-addr").cloned(),
        ..ServeConfig::default()
    };

    robust_qp::serve::register_metrics();

    // `--listen` turns this invocation into a long-lived network server.
    if let Some(addr) = listen {
        serve_listen(flags, addr, config);
        return;
    }

    let tracing_on = config.tracing;
    println!(
        "serving {total} session(s) with {} worker(s), queue capacity {}",
        config.workers, config.queue_cap
    );
    let report = serve_workload(config, &entries).unwrap_or_else(|e| {
        eprintln!("serve failed: {e}");
        exit(1);
    });
    print!("{}", report.render());
    write_stable_out(flags, &report);
    if flags.contains_key("cache-dir") {
        println!("{}", cache_summary());
    }

    if let Some(path) = flags.get("trace-out") {
        let traces: Vec<Vec<robust_qp::obs::SpanRecord>> =
            report.results.iter().map(|r| r.spans.clone()).collect();
        let json = robust_qp::obs::chrome_trace_json_multi(&traces).to_json_pretty();
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("trace: {path} (load in Perfetto / chrome://tracing)");
    }
    if let Some(path) = flags.get("flame-out") {
        let all: Vec<robust_qp::obs::SpanRecord> =
            report.results.iter().flat_map(|r| r.spans.iter().cloned()).collect();
        std::fs::write(path, robust_qp::obs::folded_stacks(&all)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("flamegraph stacks: {path}");
    }

    if tracing_on {
        let traced = report.count(|r| !r.spans.is_empty());
        println!("tracing: {traced} session trace(s) captured");
    }

    if flags.get("strict").map(String::as_str) == Some("true") {
        let distinct: std::collections::HashSet<String> =
            entries.iter().map(|e| e.query.to_ascii_lowercase()).collect();
        let mut violations = Vec::new();
        if report.rejected() > 0 {
            violations.push(format!("{} session(s) rejected", report.rejected()));
        }
        let other = report.results.len() as u64 - report.completed() - report.rejected();
        if other > 0 {
            violations.push(format!("{other} session(s) failed"));
        }
        if report.non_finite_subopts() > 0 {
            violations.push(format!("{} non-finite subopt(s)", report.non_finite_subopts()));
        }
        if report.registry.compiles != distinct.len() as u64 {
            violations.push(format!(
                "{} compile(s) for {} distinct fingerprint(s)",
                report.registry.compiles,
                distinct.len()
            ));
        }
        if !violations.is_empty() {
            eprintln!("strict serve failed: {}", violations.join("; "));
            exit(1);
        }
        println!("strict serve passed: every session completed, one compile per fingerprint");
    }
}

/// Resolve the session workload for `serve` / `connect`: either a
/// session file (`--workload`) or an ad-hoc `--query/--algo/--sessions`
/// group.
fn session_entries(flags: &HashMap<String, String>) -> Vec<robust_qp::workloads::SessionEntry> {
    use robust_qp::workloads::{parse_session_file, SessionEntry};
    if let Some(file) = flags.get("workload") {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("cannot read {file}: {e}");
            exit(1);
        });
        parse_session_file(&text).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        })
    } else {
        let query = required(flags, "query").to_string();
        let algo = flags.get("algo").cloned().unwrap_or_else(|| "sb".to_string());
        let count = parse_or(flags, "sessions", 8usize);
        vec![SessionEntry { query, algo, count, qa: None }]
    }
}

/// `--stable-out FILE`: persist the timing-free report rendering, the
/// byte-comparable artifact the remote-parity smoke diffs.
fn write_stable_out(flags: &HashMap<String, String>, report: &robust_qp::serve::ServeReport) {
    if let Some(path) = flags.get("stable-out") {
        std::fs::write(path, report.stable_render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("stable report: {path}");
    }
}

/// `rqp serve --listen ADDR [--shard K/N]`: host one registry shard over
/// TCP until a client sends a shutdown frame, then drain and report.
fn serve_listen(
    flags: &HashMap<String, String>,
    addr: &str,
    config: robust_qp::serve::ServeConfig,
) {
    use robust_qp::serve::TcpServeHost;

    let shard = flags.get("shard").map(|spec| {
        let parts: Vec<&str> = spec.split('/').collect();
        let parsed = match parts.as_slice() {
            [k, n] => k.parse::<usize>().ok().zip(n.parse::<usize>().ok()),
            _ => None,
        };
        parsed.unwrap_or_else(|| {
            eprintln!("bad --shard {spec:?} (use K/N, e.g. 0/2)");
            exit(2);
        })
    });
    let host = TcpServeHost::bind(addr, config, shard).unwrap_or_else(|e| {
        eprintln!("cannot serve on {addr}: {e}");
        exit(1);
    });
    let local = host.local_addr();
    if let Some(path) = flags.get("addr-file") {
        // Write-then-rename so a polling launcher never reads a torn
        // address (the remote smoke waits on this file).
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, local.to_string())
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
    }
    let (k, n) = shard.unwrap_or((0, 1));
    println!("listening on {local} (shard {k}/{n}); send `rqp connect --shutdown true` to stop");
    let report = host.run_until_shutdown().unwrap_or_else(|e| {
        eprintln!("serve --listen failed: {e}");
        exit(1);
    });
    print!("{}", report.render());
}

/// `rqp connect`: drive a remote `rqp serve --listen` deployment as a
/// persistent-session client, routing each session to its owning shard.
fn connect(flags: &HashMap<String, String>) {
    use robust_qp::serve::{run_entries, Frame, FrameObserver, TcpTransport};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let addrs: Vec<String> = required(flags, "addr")
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        eprintln!("--addr needs HOST:PORT[,HOST:PORT...] in shard order");
        exit(2);
    }
    let resolution: Option<usize> = flags.get("resolution").map(|r| {
        r.parse().unwrap_or_else(|_| {
            eprintln!("bad --resolution {r:?}");
            exit(2);
        })
    });
    robust_qp::serve::register_metrics();

    if flags.get("shutdown").map(String::as_str) == Some("true") {
        let mut transport = TcpTransport::connect(&addrs, resolution).unwrap_or_else(|e| {
            eprintln!("connect failed: {e}");
            exit(1);
        });
        transport.send_shutdown().unwrap_or_else(|e| {
            eprintln!("shutdown request failed: {e}");
            exit(1);
        });
        println!("shutdown requested on {} shard(s)", addrs.len());
        return;
    }

    let entries = session_entries(flags);
    let total: usize = entries.iter().map(|e| e.count).sum();
    let progress = Arc::new(AtomicUsize::new(0));
    let observer: FrameObserver = {
        let progress = Arc::clone(&progress);
        Arc::new(move |frame: &Frame| {
            if matches!(frame, Frame::Progress { .. }) {
                progress.fetch_add(1, Ordering::Relaxed);
            }
        })
    };
    println!("dispatching {total} session(s) across {} shard(s)", addrs.len());
    let transport =
        TcpTransport::connect_with(&addrs, resolution, Some(observer)).unwrap_or_else(|e| {
            eprintln!("connect failed: {e}");
            exit(1);
        });
    let report = run_entries(Box::new(transport), &entries).unwrap_or_else(|e| {
        eprintln!("remote serve failed: {e}");
        exit(1);
    });
    print!("{}", report.render());
    println!("progress: {} streamed frame(s)", progress.load(Ordering::Relaxed));
    write_stable_out(flags, &report);
}

/// Validate a Chrome trace-event export produced by `serve --trace-out`:
/// it must reparse through the obs JSON codec, carry a `traceEvents`
/// array, and contain at least one compile span and one single-flight
/// wait span — the causal shape the trace-smoke CI job asserts.
/// `rqp lint`: run the workspace invariant linter (see `crates/lint`), or
/// export a subtree's lock acquisition graph as GraphViz DOT.
fn lint(flags: &HashMap<String, String>) {
    use robust_qp::lint as rl;
    use std::path::Path;

    if let Some(dir) = flags.get("lock-graph") {
        let graph = rl::lock_graph(Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("cannot scan {dir}: {e}");
            exit(2);
        });
        let dot = graph.to_dot();
        match flags.get("dot") {
            Some(file) => {
                std::fs::write(file, &dot).unwrap_or_else(|e| {
                    eprintln!("cannot write {file}: {e}");
                    exit(2);
                });
                eprintln!(
                    "lock graph of {dir} ({} locks, {} edges) -> {file}",
                    graph.nodes().len(),
                    graph.edges.len()
                );
            }
            None => print!("{dot}"),
        }
        let cycles = rl::passes::locks::cycle_violations(&graph);
        if !cycles.is_empty() {
            for (_, f) in &cycles {
                eprintln!("{}", f.message);
            }
            exit(1);
        }
        eprintln!("lock graph is acyclic");
        return;
    }

    let root = flags.get("root").map_or(".", String::as_str);
    let violations = rl::lint_workspace(Path::new(root)).unwrap_or_else(|e| {
        eprintln!("cannot lint {root}: {e}");
        exit(2);
    });
    let deny_warnings = flags.get("deny-warnings").map(String::as_str) == Some("true");
    match flags.get("format").map(String::as_str) {
        Some("json") => print!("{}", rl::render_json(&violations)),
        _ => {
            for v in &violations {
                println!("{v}");
            }
        }
    }
    let denied =
        violations.iter().filter(|v| deny_warnings || v.severity == rl::Severity::Deny).count();
    if denied > 0 {
        eprintln!("{denied} lint violation(s)");
        exit(1);
    }
    eprintln!("lint clean ({} warning(s))", violations.len() - denied);
}

fn trace_check(flags: &HashMap<String, String>) {
    use robust_qp::obs::JsonValue;

    let file = required(flags, "file");
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {file}: {e}");
        exit(1);
    });
    let parsed = robust_qp::obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{file} is not valid trace JSON: {e}");
        exit(1);
    });
    let JsonValue::Object(doc) = &parsed else {
        eprintln!("{file}: top level must be an object");
        exit(1);
    };
    let Some(JsonValue::Array(events)) = doc.get("traceEvents") else {
        eprintln!("{file}: missing traceEvents array");
        exit(1);
    };
    let mut by_cat: HashMap<String, usize> = HashMap::new();
    let mut sessions = std::collections::HashSet::new();
    for ev in events {
        let JsonValue::Object(ev) = ev else {
            eprintln!("{file}: non-object trace event");
            exit(1);
        };
        match (ev.get("cat"), ev.get("ph"), ev.get("tid")) {
            (Some(JsonValue::Str(cat)), Some(JsonValue::Str(_)), Some(tid)) => {
                *by_cat.entry(cat.clone()).or_insert(0) += 1;
                sessions.insert(format!("{tid:?}"));
            }
            _ => {
                eprintln!("{file}: trace event missing cat/ph/tid");
                exit(1);
            }
        }
    }
    let mut cats: Vec<(&String, &usize)> = by_cat.iter().collect();
    cats.sort();
    println!("{file}: {} event(s) across {} session lane(s)", events.len(), sessions.len());
    for (cat, n) in cats {
        println!("  {cat:<14} {n}");
    }
    let compiles = by_cat.get("compile").copied().unwrap_or(0);
    let waits = by_cat.get("wait").copied().unwrap_or(0);
    if compiles == 0 || waits == 0 {
        eprintln!(
            "trace check failed: need at least one compile span and one wait span \
             (got {compiles} compile, {waits} wait)"
        );
        exit(1);
    }
    println!("trace check passed: {compiles} compile span(s), {waits} wait span(s)");
}
