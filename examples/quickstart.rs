//! Quickstart: robust processing of a hand-built query.
//!
//! Builds the paper's introductory example query EQ — "orders for cheap
//! parts" over part ⋈ lineitem ⋈ orders with two error-prone join
//! predicates — compiles its error-prone selectivity space, and processes
//! one query instance with every algorithm, printing the discovery traces
//! and their sub-optimalities.
//!
//! Run with: `cargo run --release --example quickstart`

use robust_qp::prelude::*;

fn main() {
    // 1. a catalog with statistics (a tiny TPC-H-flavoured schema)
    let catalog = CatalogBuilder::new()
        .relation(
            RelationBuilder::new("part", 2_000_000)
                .indexed_column("p_partkey", 2_000_000, 8)
                .column("p_retailprice", 50_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("lineitem", 60_000_000)
                .indexed_column("l_partkey", 2_000_000, 8)
                .indexed_column("l_orderkey", 15_000_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("orders", 15_000_000)
                .indexed_column("o_orderkey", 15_000_000, 8)
                .build(),
        )
        .build();

    // 2. the example query EQ: two error-prone joins + one reliable filter
    let query = QueryBuilder::new(&catalog, "EQ")
        .table("part")
        .table("lineitem")
        .table("orders")
        .epp_join("part", "p_partkey", "lineitem", "l_partkey")
        .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
        .filter("part", "p_retailprice", 0.05)
        .build()
        .expect("EQ builds against the catalog");

    // 3. compile the runtime: optimizer + ESS (POSP + iso-cost contours)
    let rt = RobustRuntime::compile(
        &catalog,
        &query,
        CostModel::default(),
        EssConfig { resolution: 24, min_sel: 1e-6, ..Default::default() },
    )
    .expect("ESS compiles");
    println!(
        "compiled ESS: {} cells, {} POSP plans, {} contours, guarantee D²+3D = {}",
        rt.grid().num_cells(),
        rt.plan_pool().len(),
        rt.num_bands(),
        sb_guarantee(rt.dims()),
    );

    // 4. a query instance whose actual selectivities the engine must
    //    discover: somewhere in the middle of the space
    let grid = rt.grid();
    let qa = grid.index(&[grid.snap_ceil(0, 3e-3), grid.snap_ceil(1, 2e-4)]);
    println!("actual location qa = {} (hidden from the algorithms)\n", grid.location(qa));

    // 5. process it with every algorithm
    let native = NativeOptimizer.discover(&rt, qa);
    println!("Native optimizer: subopt {:.2}\n", native.subopt());

    let pb = PlanBouquet::anorexic(&rt, 0.2).expect("anorexic reduction");
    let t = pb.discover(&rt, qa);
    println!("{}", t.render());

    let sb = SpillBound::with_refined_bounds();
    let t = sb.discover(&rt, qa);
    println!("{}", t.render());

    let ab = AlignedBound::new();
    let t = ab.discover(&rt, qa);
    println!("{}", t.render());

    // 6. the worst case over the whole space (the MSO of Eq. 4)
    let sb_eval = evaluate(&rt, &SpillBound::new());
    println!(
        "SpillBound over the full ESS: MSOe {:.1} (guarantee {}), ASO {:.2}",
        sb_eval.mso,
        sb_guarantee(rt.dims()),
        sb_eval.aso
    );
}
