//! The execution-strategy advisor (§9 future work): given the estimation
//! error you anticipate, should this query run on the native optimizer or
//! on SpillBound?
//!
//! Run with: `cargo run --release --example advisor`

use robust_qp::core::advisor::advise;
use robust_qp::prelude::*;

fn main() {
    let w = Workload::q91(2).expect("workload builds");
    let rt = w.runtime(EssConfig { resolution: 24, ..Default::default() }).expect("ESS compiles");
    println!(
        "query {} — SB structural guarantee D²+3D = {}",
        w.query.name,
        sb_guarantee(rt.dims())
    );
    println!("\n{:>14} {:>14} {:>10}   recommendation", "error factor", "native worst", "SB worst");
    for factor in [1.0, 2.0, 10.0, 100.0, 1e4, 1e6] {
        let advice = advise(&rt, factor);
        println!(
            "{:>14.0} {:>14.1} {:>10.1}   {:?}",
            factor, advice.native_worst, advice.sb_worst, advice.recommendation
        );
    }
    println!(
        "\nThe crossover is where the paper's caveat (§1.4.1) bites: with \
         small anticipated\nerrors the native optimizer is the right tool; \
         with large ones, the robust\nalgorithms' bounded worst case wins."
    );
}
