//! Offline ESS compilation (§7): compile once, snapshot to JSON, reload
//! instantly for canned queries.
//!
//! Run with: `cargo run --release --example offline_snapshot`

use robust_qp::ess::PospSnapshot;
use robust_qp::prelude::*;
use std::time::Instant;

fn main() {
    let w = Workload::q91(2).expect("Q91 builds");

    // the expensive step: optimizer at every grid location
    let t0 = Instant::now();
    let rt = w.runtime(EssConfig { resolution: 32, ..Default::default() }).expect("ESS compiles");
    let compile_time = t0.elapsed();
    let ess = rt.ess().expect("eager surface materializes");

    // snapshot it
    let snap = PospSnapshot::capture(&ess);
    let json = snap.to_json().expect("snapshot serializes");
    let path = std::env::temp_dir().join("rqp_2d_q91.ess.json");
    std::fs::write(&path, &json).expect("snapshot written");
    println!(
        "compiled {} cells / {} plans in {compile_time:.2?}; snapshot {} KiB at {}",
        ess.grid().num_cells(),
        ess.posp.num_plans(),
        json.len() / 1024,
        path.display()
    );

    // the cheap step: restore without touching the optimizer
    let t1 = Instant::now();
    let loaded = std::fs::read_to_string(&path).expect("snapshot read");
    let restored = PospSnapshot::from_json(&loaded)
        .expect("snapshot parses")
        .restore()
        .expect("snapshot restores");
    println!(
        "restored in {:.2?} ({}x faster than compiling)",
        t1.elapsed(),
        (compile_time.as_nanos() / t1.elapsed().as_nanos().max(1)).max(1)
    );

    // the restored ESS is bit-identical where it matters
    assert_eq!(restored.posp.num_plans(), ess.posp.num_plans());
    for cell in ess.grid().cells() {
        assert_eq!(restored.posp.cost(cell), ess.posp.cost(cell));
        assert_eq!(restored.posp.plan_id(cell), ess.posp.plan_id(cell));
    }
    println!("restored ESS verified identical on all {} cells", ess.grid().num_cells());

    let _ = std::fs::remove_file(&path);
}
