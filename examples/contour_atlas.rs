//! Visualize the compiled ESS of a 2-epp query: the plan diagram (which
//! POSP plan is optimal where), the iso-cost contour bands, and per-contour
//! alignment statistics — ASCII renditions of the paper's Figs. 2, 3 and 6.
//!
//! Run with: `cargo run --release --example contour_atlas`

use robust_qp::prelude::*;

fn main() {
    let w = Workload::q91(2).expect("Q91 builds");
    let rt = w.runtime(EssConfig { resolution: 40, ..Default::default() }).expect("ESS compiles");
    let ess = rt.ess().expect("eager surface materializes");
    let grid = ess.grid();
    let posp = &ess.posp;
    let contours = &ess.contours;
    let res = grid.res(0);

    println!(
        "2D_Q91: {} POSP plans over a {res}x{res} log-scale grid, {} contours, \
         Cmin {:.3e}, Cmax {:.3e}",
        posp.num_plans(),
        contours.num_bands(),
        posp.cmin(),
        posp.cmax()
    );

    // plan diagram: one glyph per plan (top row = largest Y selectivity)
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    println!("\n--- plan diagram (glyph = optimal plan id) ---");
    for y in (0..res).rev() {
        let mut row = String::new();
        for x in 0..res {
            let cell = grid.index(&[x, y]);
            let id = posp.plan_id(cell).0 as usize;
            row.push(GLYPHS[id % GLYPHS.len()] as char);
        }
        println!("  {row}");
    }

    // contour bands: band index mod 10
    println!("\n--- iso-cost contour bands (digit = band mod 10) ---");
    for y in (0..res).rev() {
        let mut row = String::new();
        for x in 0..res {
            let cell = grid.index(&[x, y]);
            row.push(char::from_digit((contours.band_of(cell) % 10) as u32, 10).unwrap());
        }
        println!("  {row}");
    }

    // per-contour plan density and alignment penalty (Fig. 6 / Table 2 raw)
    println!("\n--- per-contour density and alignment (Table 2 raw data) ---");
    let stats = alignment_stats(&rt);
    println!("{:>5} {:>12} {:>8} {:>10}", "band", "cost", "density", "penalty");
    let mut k = 0;
    for band in 0..contours.num_bands() {
        if contours.cells(band).is_empty() {
            continue;
        }
        let density = contours.density(posp, band);
        let penalty = stats.per_contour_penalty.get(k).copied().unwrap_or(f64::NAN);
        k += 1;
        println!(
            "{band:>5} {:>12.3e} {density:>8} {:>10.2}{}",
            contours.cc(band),
            penalty,
            if penalty <= 1.0 { "  (aligned)" } else { "" }
        );
    }
    println!(
        "\nnatively aligned: {:.0}%   within 1.5x: {:.0}%   max penalty: {:.2}",
        stats.pct_within(1.0),
        stats.pct_within(1.5),
        stats.max_penalty()
    );
}
