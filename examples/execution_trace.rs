//! Fig. 7 / Table 3 style drill-down: the Manhattan profile of a
//! SpillBound run on TPC-DS Q91, plus the simulated wall-clock comparison
//! against the native optimizer and AlignedBound (§6.3).
//!
//! Run with: `cargo run --release --example execution_trace`

use robust_qp::prelude::*;

fn main() {
    // 2D_Q91: the Fig. 7 setting — catalog_returns⋈date_dim on X,
    // customer⋈customer_address on Y
    let w = Workload::q91(2).expect("workload builds");
    let rt = w.runtime(EssConfig { resolution: 32, ..Default::default() }).expect("ESS compiles");
    let grid = rt.grid();
    let qa = grid.index(&[grid.snap_ceil(0, 0.04), grid.snap_ceil(1, 0.1)]);

    println!("=== Fig. 7: 2D_Q91, qa = {} ===", grid.location(qa));
    let sb = SpillBound::with_refined_bounds();
    let trace = sb.discover(&rt, qa);
    println!("{}", trace.render());

    // Manhattan profile: the running location after each execution
    println!("Manhattan profile (running lower-bound location):");
    let mut qrun = [grid.value(0, 0), grid.value(1, 0)];
    println!("  start  ({:.3e}, {:.3e})", qrun[0], qrun[1]);
    for s in &trace.steps {
        if let Some((dim, v, exact)) = s.learned {
            qrun[dim.0] = v;
            println!(
                "  {}{:<4}  ({:.3e}, {:.3e}){}",
                if exact { "*" } else { " " },
                format!("p{}", s.band),
                qrun[0],
                qrun[1],
                if exact { "  <- exact" } else { "" }
            );
        }
    }

    // §6.3: wall-clock drill-down on 4D_Q91, oracle anchored at 44 s
    println!("\n=== §6.3: wall-clock comparison on 4D_Q91 ===");
    let w4 = Workload::q91(4).expect("workload builds");
    let rt4 = w4.runtime(EssConfig::coarse(4)).expect("ESS compiles");
    let g4 = rt4.grid();
    let coords: Vec<usize> = (0..4).map(|d| g4.res(d) * 3 / 4).collect();
    let qa4 = g4.index(&coords);
    let secs = 44.0 / rt4.oracle_cost(qa4);

    let native = NativeOptimizer.discover(&rt4, qa4);
    let sb4 = SpillBound::with_refined_bounds().discover(&rt4, qa4);
    let ab4 = AlignedBound::new().discover(&rt4, qa4);
    println!("optimal plan : {:7.1} s", 44.0);
    println!("native       : {:7.1} s  (subopt {:.1})", native.total_cost * secs, native.subopt());
    println!(
        "SpillBound   : {:7.1} s  (subopt {:.1}, {} executions)",
        sb4.total_cost * secs,
        sb4.subopt(),
        sb4.num_executions()
    );
    println!(
        "AlignedBound : {:7.1} s  (subopt {:.1}, {} executions)",
        ab4.total_cost * secs,
        ab4.subopt(),
        ab4.num_executions()
    );
}
