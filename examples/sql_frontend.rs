//! Declare a query in the robust-SPJ SQL dialect and process it robustly.
//!
//! The dialect makes the one thing standard SQL cannot express —
//! *which predicates are error-prone* — explicit: `?=` marks an
//! error-prone equi-join, `sel(col) = x` states a reliably-estimated
//! filter, `sel?(col) = x` an error-prone one.
//!
//! Run with: `cargo run --release --example sql_frontend`

use robust_qp::catalog::parse_query;
use robust_qp::prelude::*;

fn main() {
    let catalog = robust_qp::workloads::tpcds_catalog();

    let sql = "
        SELECT * FROM store_sales, customer_demographics, date_dim, item
        WHERE store_sales.ss_cdemo_sk ?= customer_demographics.cd_demo_sk  -- epp
          AND store_sales.ss_sold_date_sk ?= date_dim.d_date_sk            -- epp
          AND store_sales.ss_item_sk ?= item.i_item_sk                     -- epp
          AND sel(customer_demographics.cd_gender) = 0.5
          AND sel(date_dim.d_year) = 0.005
    ";
    let query = parse_query(&catalog, "adhoc_q7ish", sql).expect("dialect parses");
    println!(
        "parsed: {} relations, {} joins, D = {} error-prone predicates",
        query.relations.len(),
        query.joins.len(),
        query.dims()
    );

    let rt = RobustRuntime::compile(
        &catalog,
        &query,
        CostModel::default(),
        EssConfig::coarse(query.dims()),
    )
    .expect("ESS compiles");
    println!(
        "ESS: {} cells, {} plans, {} contours; SB guarantee D²+3D = {}",
        rt.grid().num_cells(),
        rt.plan_pool().len(),
        rt.num_bands(),
        sb_guarantee(query.dims())
    );

    // compare the native optimizer, mid-query reoptimization and SpillBound
    // on a mis-estimated instance
    let grid = rt.grid();
    let coords: Vec<usize> = (0..grid.dims()).map(|d| grid.res(d) * 2 / 3).collect();
    let qa = grid.index(&coords);
    println!("\nactual location qa = {}", grid.location(qa));
    for algo in [
        Box::new(NativeOptimizer) as Box<dyn Discovery>,
        Box::new(robust_qp::core::ReOptimizer::default()),
        Box::new(SpillBound::new()),
        Box::new(AlignedBound::new()),
    ] {
        let t = algo.discover(&rt, qa);
        println!(
            "  {:<8} subopt {:>6.2}  ({} executions)",
            algo.name(),
            t.subopt(),
            t.num_executions()
        );
    }
}
