//! A robustness report over the full benchmark suite: guarantees and
//! empirical MSO/ASO for PlanBouquet, SpillBound and AlignedBound, in one
//! table — the condensed content of the paper's Figs. 8, 10, 11 and 13.
//!
//! Run with: `cargo run --release --example robustness_report`
//! (pass `--fast` to use very coarse grids)

use robust_qp::prelude::*;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    println!(
        "{:<8} {:>2} {:>7} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>7} {:>7} {:>7}",
        "query",
        "D",
        "ρ_red",
        "PB MSOg",
        "SB MSOg",
        "PB MSOe",
        "SB MSOe",
        "AB MSOe",
        "PB ASO",
        "SB ASO",
        "AB ASO"
    );
    for &bq in BenchQuery::all() {
        let w = Workload::tpcds(bq).expect("suite query builds");
        let d = w.query.dims();
        let mut cfg = EssConfig::coarse(d);
        if fast {
            cfg.resolution = (cfg.resolution * 2 / 3).max(4);
        }
        let rt = w.runtime(cfg).expect("ESS compiles");

        let pb = PlanBouquet::anorexic(&rt, 0.2).expect("anorexic reduction");
        let rho = pb.rho(&rt);
        let sb = SpillBound::new();
        let ab = AlignedBound::new();

        let pb_ev = evaluate(&rt, &pb);
        let sb_ev = evaluate(&rt, &sb);
        let ab_ev = evaluate(&rt, &ab);

        println!(
            "{:<8} {:>2} {:>7} {:>8.1} {:>8.1} | {:>8.1} {:>8.1} {:>8.1} | {:>7.2} {:>7.2} {:>7.2}",
            bq.name(),
            d,
            rho,
            pb_guarantee(rho, 0.2),
            sb_guarantee(d),
            pb_ev.mso,
            sb_ev.mso,
            ab_ev.mso,
            pb_ev.aso,
            sb_ev.aso,
            ab_ev.aso,
        );
    }

    // the JOB coda (§6.5)
    let w = Workload::job_q1a().expect("JOB Q1a builds");
    let rt = w.runtime(EssConfig::coarse(3)).expect("ESS compiles");
    let native = robust_qp::core::native::native_mso_worst_estimate(&rt);
    let sb = evaluate(&rt, &SpillBound::new());
    let ab = evaluate(&rt, &AlignedBound::new());
    println!("\nJOB Q1a: native MSO {:.0} -> SB {:.1} -> AB {:.1}", native, sb.mso, ab.mso);
}
