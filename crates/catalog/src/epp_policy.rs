//! Error-prone predicate identification policies (§7).
//!
//! The paper assumes the epps are known a priori and defers identification
//! to deployment: "we could leverage application domain knowledge and query
//! logs to make this selection, or simply be conservative and assign all
//! uncertain combination of predicates to be epps." This module implements
//! those deployment rules for queries whose author did not mark epps
//! explicitly.

use crate::catalog::Catalog;
use crate::query::Query;

/// How to decide which predicates are error-prone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EppPolicy {
    /// Conservative (§7's default): every join predicate is error-prone;
    /// filters keep their recorded estimates. Join selectivities compound
    /// upstream errors and are the classic estimation trouble spot.
    AllJoins,
    /// Everything is error-prone — joins *and* filters. The most cautious
    /// choice, at the price of ESS dimensionality.
    AllPredicates,
    /// Only joins whose System-R estimate falls below the given threshold
    /// are error-prone: tiny estimated selectivities are where relative
    /// estimation error hurts the most (orders of magnitude of headroom
    /// above the estimate).
    SmallJoinEstimates {
        /// Joins with estimated selectivity below this value become epps.
        threshold: f64,
    },
}

/// Re-derive a query's epp set under a policy, returning a copy with the
/// epp list replaced (dimension order follows predicate-id order).
pub fn apply_policy(catalog: &Catalog, query: &Query, policy: EppPolicy) -> Query {
    let mut q = query.clone();
    q.epps = match policy {
        EppPolicy::AllJoins => query.joins.iter().map(|j| j.id).collect(),
        EppPolicy::AllPredicates => {
            let mut epps: Vec<_> = query.joins.iter().map(|j| j.id).collect();
            epps.extend(query.filters.iter().map(|f| f.id));
            epps.sort();
            epps
        }
        EppPolicy::SmallJoinEstimates { threshold } => {
            let est = crate::estimate::Estimator::new(catalog);
            query
                .joins
                .iter()
                .map(|j| j.id)
                .filter(|&id| {
                    // estimate with an empty epp set so everything resolves;
                    // an unresolvable predicate is conservatively kept benign
                    let mut probe = query.clone();
                    probe.epps.clear();
                    est.predicate_selectivity(&probe, id)
                        .map(|s| s.value() < threshold)
                        .unwrap_or(false)
                })
                .collect()
        }
    };
    debug_assert!(q.validate(catalog).is_ok());
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CatalogBuilder, QueryBuilder, RelationBuilder};

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("big", 10_000_000)
                    .indexed_column("k", 10_000_000, 8)
                    .indexed_column("tiny_fk", 10, 8)
                    .column("v", 100, 4)
                    .build(),
            )
            .relation(
                RelationBuilder::new("mid", 1_000_000).indexed_column("k", 10_000_000, 8).build(),
            )
            .relation(RelationBuilder::new("tiny", 10).indexed_column("k", 10, 8).build())
            .build();
        // author marked nothing error-prone
        let query = QueryBuilder::new(&catalog, "unmarked")
            .table("big")
            .table("mid")
            .table("tiny")
            .join("big", "k", "mid", "k")
            .join("big", "tiny_fk", "tiny", "k")
            .filter("big", "v", 0.25)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn all_joins_marks_exactly_the_joins() {
        let (c, q) = fixture();
        let marked = apply_policy(&c, &q, EppPolicy::AllJoins);
        assert_eq!(marked.dims(), 2);
        assert!(marked.joins.iter().all(|j| marked.epp_dim(j.id).is_some()));
        assert!(marked.filters.iter().all(|f| marked.epp_dim(f.id).is_none()));
    }

    #[test]
    fn all_predicates_marks_everything() {
        let (c, q) = fixture();
        let marked = apply_policy(&c, &q, EppPolicy::AllPredicates);
        assert_eq!(marked.dims(), 3);
    }

    #[test]
    fn small_estimate_policy_selects_the_risky_join() {
        let (c, q) = fixture();
        // big⋈mid estimate = 1e-7 (risky); big⋈tiny estimate = 0.1 (benign)
        let marked = apply_policy(&c, &q, EppPolicy::SmallJoinEstimates { threshold: 1e-3 });
        assert_eq!(marked.dims(), 1);
        let epp = marked.epp_pred(crate::query::EppId(0));
        let j = marked.join(epp).unwrap();
        let mid = c.find_relation("mid").unwrap();
        assert!(j.touches(mid), "the high-NDV join should be the epp");
    }

    #[test]
    fn policies_preserve_query_validity() {
        let (c, q) = fixture();
        for policy in [
            EppPolicy::AllJoins,
            EppPolicy::AllPredicates,
            EppPolicy::SmallJoinEstimates { threshold: 0.5 },
        ] {
            let marked = apply_policy(&c, &q, policy);
            assert_eq!(marked.validate(&c), Ok(()));
        }
    }
}
