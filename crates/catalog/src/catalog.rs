//! The catalog: a named collection of relations with statistics.

use crate::stats::{RelId, Relation};
use serde::{Deserialize, Serialize};

/// A database catalog.
///
/// The catalog plays the role of the system tables of a conventional engine:
/// the optimizer and cost model read all statistics from here, and the
/// workload crates populate it with TPC-DS-shaped or IMDB-shaped synthetic
/// statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    relations: Vec<Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation, returning its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists.
    pub fn add_relation(&mut self, rel: Relation) -> RelId {
        assert!(self.find_relation(&rel.name).is_none(), "duplicate relation name {:?}", rel.name);
        let id = RelId(self.relations.len() as u32);
        self.relations.push(rel);
        id
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Look up a relation id by name.
    pub fn find_relation(&self, name: &str) -> Option<RelId> {
        self.relations.iter().position(|r| r.name == name).map(|i| RelId(i as u32))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations.iter().enumerate().map(|(i, r)| (RelId(i as u32), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Column;

    fn rel(name: &str, rows: u64) -> Relation {
        Relation { name: name.into(), rows, columns: vec![Column::new("k", rows, 8)] }
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        let a = c.add_relation(rel("a", 10));
        let b = c.add_relation(rel("b", 20));
        assert_eq!(c.len(), 2);
        assert_eq!(c.find_relation("a"), Some(a));
        assert_eq!(c.find_relation("b"), Some(b));
        assert_eq!(c.find_relation("c"), None);
        assert_eq!(c.relation(b).rows, 20);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate relation name")]
    fn rejects_duplicate_names() {
        let mut c = Catalog::new();
        c.add_relation(rel("a", 10));
        c.add_relation(rel("a", 20));
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let mut c = Catalog::new();
        c.add_relation(rel("a", 1));
        c.add_relation(rel("b", 2));
        let ids: Vec<_> = c.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
