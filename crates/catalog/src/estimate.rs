//! Independence-based selectivity estimation — the *native optimizer's*
//! estimation model.
//!
//! The robust algorithms never estimate epp selectivities; this module exists
//! for the baseline they are compared against (§6.3, §6.5): a traditional
//! optimizer computes the estimated location `qe` with textbook formulas
//! (attribute-value independence, `1/max(ndv)` equi-join selectivity) and
//! executes the plan optimal at `qe` regardless of the actual location `qa`.

use crate::catalog::Catalog;
use crate::error::{RqpError, RqpResult};
use crate::predicate::PredId;
use crate::query::Query;
use crate::selectivity::{SelVector, Selectivity};

/// Generalized harmonic number `H_N(s) = Σ_{i=1..N} i^{-s}` (capped at
/// 100k terms with a tail integral — ample for selectivity work).
pub fn harmonic(n: u64, s: f64) -> f64 {
    let cap = n.min(100_000);
    let head: f64 = (1..=cap).map(|i| (i as f64).powf(-s)).sum();
    if n > cap {
        // ∫_{cap}^{n} x^{-s} dx tail approximation
        let (a, b) = (cap as f64, n as f64);
        let tail = if (s - 1.0).abs() < 1e-9 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s)
        };
        head + tail
    } else {
        head
    }
}

/// The *true* selectivity of an equi-join between two zipf(θ) columns over
/// a shared domain of `n` values: `Σ p_i² = H_n(2θ) / H_n(θ)²`. At θ = 0
/// this is the uniform `1/n` (the System-R estimate); with skew it grows,
/// which is exactly why such joins are error-prone.
pub fn zipf_join_selectivity(n: u64, theta: f64) -> f64 {
    if theta <= 0.0 {
        return 1.0 / n.max(1) as f64;
    }
    harmonic(n, 2.0 * theta) / harmonic(n, theta).powi(2)
}

/// Textbook selectivity estimator over catalog statistics.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    /// Create an estimator over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Estimator { catalog }
    }

    /// Estimate the selectivity of one predicate of the query.
    ///
    /// * Equi-join `l = r`: `1 / max(ndv(l), ndv(r))` (System-R rule).
    /// * Filter: the selectivity recorded on the predicate.
    ///
    /// Errors with [`RqpError::UnknownPredicate`] if `pred` names no
    /// predicate of `query`.
    pub fn predicate_selectivity(&self, query: &Query, pred: PredId) -> RqpResult<Selectivity> {
        if let Some(j) = query.join(pred) {
            let ndv_l = self.catalog.relation(j.left.rel).columns[j.left.col].ndv;
            let ndv_r = self.catalog.relation(j.right.rel).columns[j.right.col].ndv;
            Ok(Selectivity::new(1.0 / ndv_l.max(ndv_r) as f64))
        } else if let Some(f) = query.filter(pred) {
            Ok(Selectivity::new(f.selectivity))
        } else {
            Err(RqpError::UnknownPredicate { pred: pred.to_string(), query: query.name.clone() })
        }
    }

    /// The estimated ESS location `qe` for the query: the estimator's value
    /// for every epp, in ESS dimension order.
    pub fn estimated_location(&self, query: &Query) -> RqpResult<SelVector> {
        Ok(SelVector::new(
            query
                .epps
                .iter()
                .map(|&p| self.predicate_selectivity(query, p))
                .collect::<RqpResult<Vec<_>>>()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColRef, FilterPredicate, JoinPredicate};
    use crate::stats::{Column, Relation};

    #[test]
    fn join_estimate_uses_max_ndv() {
        let mut c = Catalog::new();
        let a = c.add_relation(Relation {
            name: "a".into(),
            rows: 1000,
            columns: vec![Column::new("k", 100, 8)],
        });
        let b = c.add_relation(Relation {
            name: "b".into(),
            rows: 5000,
            columns: vec![Column::new("k", 400, 8)],
        });
        let q = Query {
            name: "t".into(),
            relations: vec![a, b],
            joins: vec![JoinPredicate {
                id: PredId(0),
                left: ColRef::new(a, 0),
                right: ColRef::new(b, 0),
            }],
            filters: vec![],
            epps: vec![PredId(0)],
            group_by: vec![],
        };
        let est = Estimator::new(&c);
        let s = est.predicate_selectivity(&q, PredId(0)).unwrap();
        assert!((s.value() - 1.0 / 400.0).abs() < 1e-12);
        let qe = est.estimated_location(&q).unwrap();
        assert_eq!(qe.dims(), 1);
        assert_eq!(qe.get(0), s);
    }

    #[test]
    fn filter_estimate_reads_stored_selectivity() {
        let mut c = Catalog::new();
        let a = c.add_relation(Relation {
            name: "a".into(),
            rows: 10,
            columns: vec![Column::new("v", 10, 4)],
        });
        let q = Query {
            name: "t".into(),
            relations: vec![a],
            joins: vec![],
            filters: vec![FilterPredicate {
                id: PredId(0),
                col: ColRef::new(a, 0),
                selectivity: 0.25,
            }],
            epps: vec![PredId(0)],
            group_by: vec![],
        };
        let est = Estimator::new(&c);
        assert_eq!(est.predicate_selectivity(&q, PredId(0)).unwrap().value(), 0.25);
    }

    #[test]
    fn zipf_selectivity_reduces_to_uniform_without_skew() {
        for n in [10u64, 1000, 1_000_000] {
            assert!((zipf_join_selectivity(n, 0.0) - 1.0 / n as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn skew_inflates_true_join_selectivity_beyond_the_estimate() {
        // the estimator says 1/N regardless; the truth grows with θ —
        // the quantitative root of the error-prone predicate problem
        let n = 10_000;
        let estimate = 1.0 / n as f64;
        let mut prev = estimate;
        for theta in [0.2, 0.5, 0.8, 1.0, 1.2] {
            let truth = zipf_join_selectivity(n, theta);
            assert!(truth > prev, "selectivity must grow with skew");
            prev = truth;
        }
        // at θ = 1 the error is already orders of magnitude
        assert!(zipf_join_selectivity(n, 1.0) / estimate > 50.0);
    }

    #[test]
    fn harmonic_tail_approximation_is_accurate() {
        // exact vs capped-with-tail for a case crossing the cap
        let exact: f64 = (1..=200_000u64).map(|i| (i as f64).powf(-1.2)).sum();
        let approx = harmonic(200_000, 1.2);
        assert!((exact - approx).abs() / exact < 1e-3);
    }

    #[test]
    fn unknown_predicate_is_an_error() {
        let mut c = Catalog::new();
        let a = c.add_relation(Relation {
            name: "a".into(),
            rows: 10,
            columns: vec![Column::new("v", 10, 4)],
        });
        let q = Query {
            name: "t".into(),
            relations: vec![a],
            joins: vec![],
            filters: vec![],
            epps: vec![],
            group_by: vec![],
        };
        let err = Estimator::new(&c).predicate_selectivity(&q, PredId(9)).unwrap_err();
        assert!(err.to_string().contains("not found"), "{err}");
    }
}
