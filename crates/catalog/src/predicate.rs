//! Filter and join predicates.

use crate::stats::RelId;
use serde::{Deserialize, Serialize};

/// Identifier of a predicate within a [`crate::Query`]. Join predicates and
/// filter predicates share one id space so that epp lists can reference
/// either kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PredId(pub u32);

impl std::fmt::Display for PredId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A reference to a column of a base relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColRef {
    /// Owning relation.
    pub rel: RelId,
    /// Index into the relation's column vector.
    pub col: usize,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(rel: RelId, col: usize) -> Self {
        ColRef { rel, col }
    }
}

/// An equi-join predicate `left.col = right.col`.
///
/// Join predicates are the usual source of epps in the paper's workloads:
/// join selectivities compound the errors of everything beneath them and are
/// the hardest to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Predicate id within the query.
    pub id: PredId,
    /// One side of the equality.
    pub left: ColRef,
    /// The other side.
    pub right: ColRef,
}

impl JoinPredicate {
    /// Whether this predicate connects the two given relations.
    pub fn connects(&self, a: RelId, b: RelId) -> bool {
        (self.left.rel == a && self.right.rel == b) || (self.left.rel == b && self.right.rel == a)
    }

    /// The relation on the other side of `rel`, if `rel` is an endpoint.
    pub fn other_side(&self, rel: RelId) -> Option<RelId> {
        if self.left.rel == rel {
            Some(self.right.rel)
        } else if self.right.rel == rel {
            Some(self.left.rel)
        } else {
            None
        }
    }

    /// Whether `rel` is one of the predicate's endpoints.
    pub fn touches(&self, rel: RelId) -> bool {
        self.left.rel == rel || self.right.rel == rel
    }
}

/// A single-relation filter predicate with a known (reliably estimated)
/// selectivity, e.g. `p_retailprice < 1000`. Filters may also be declared
/// error-prone, in which case their true selectivity is an ESS dimension and
/// the stored value is only the optimizer's estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilterPredicate {
    /// Predicate id within the query.
    pub id: PredId,
    /// The filtered column.
    pub col: ColRef,
    /// Selectivity of the filter (exact for non-epp filters; the a-priori
    /// estimate for epp filters).
    pub selectivity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jp(l: u32, r: u32) -> JoinPredicate {
        JoinPredicate {
            id: PredId(0),
            left: ColRef::new(RelId(l), 0),
            right: ColRef::new(RelId(r), 0),
        }
    }

    #[test]
    fn connects_is_symmetric() {
        let p = jp(1, 2);
        assert!(p.connects(RelId(1), RelId(2)));
        assert!(p.connects(RelId(2), RelId(1)));
        assert!(!p.connects(RelId(1), RelId(3)));
    }

    #[test]
    fn other_side_resolves_endpoints() {
        let p = jp(1, 2);
        assert_eq!(p.other_side(RelId(1)), Some(RelId(2)));
        assert_eq!(p.other_side(RelId(2)), Some(RelId(1)));
        assert_eq!(p.other_side(RelId(9)), None);
    }

    #[test]
    fn touches_checks_both_sides() {
        let p = jp(3, 4);
        assert!(p.touches(RelId(3)));
        assert!(p.touches(RelId(4)));
        assert!(!p.touches(RelId(5)));
    }

    #[test]
    fn pred_id_display() {
        assert_eq!(PredId(2).to_string(), "e2");
    }
}
