#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Catalog, statistics and the logical query model for the robust-qp engine.
//!
//! This crate is the lowest layer of the workspace: it defines relations and
//! their statistics, filter/join predicates, selectivities, and the logical
//! (select-project-join) query representation on which the optimizer, the
//! error-prone selectivity space (ESS) and the robust processing algorithms
//! all operate.
//!
//! The paper's setting is a conventional relational engine where a query has
//! a set of *error-prone predicates* (epps) whose selectivities cannot be
//! estimated reliably. Each epp becomes one dimension of the ESS; everything
//! else in the catalog is assumed to be known exactly.

pub mod builder;
pub mod catalog;
pub mod epp_policy;
pub mod error;
pub mod estimate;
pub mod predicate;
pub mod query;
pub mod selectivity;
pub mod sql;
pub mod stats;

pub use builder::{CatalogBuilder, QueryBuilder, RelationBuilder};
pub use catalog::Catalog;
pub use epp_policy::{apply_policy, EppPolicy};
pub use error::{RqpError, RqpResult};
pub use estimate::Estimator;
pub use predicate::{ColRef, FilterPredicate, JoinPredicate, PredId};
pub use query::{EppId, Query, MAX_RELATIONS};
pub use selectivity::{SelVector, Selectivity};
pub use sql::{parse_query, ParseError};
pub use stats::{Column, RelId, Relation};
