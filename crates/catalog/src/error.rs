//! The shared error type for the robust-qp workspace.
//!
//! Library crates must not panic mid-query (rqp-lint rule `panic-free`):
//! every fallible operation surfaces an [`RqpError`] instead. The type lives
//! here, at the bottom of the crate graph, so every layer — optimizer, ESS
//! compilation, execution, discovery — can share it; the root `robust_qp`
//! crate re-exports it as `robust_qp::error::RqpError`.

use std::fmt;

/// Convenience alias used across the workspace.
pub type RqpResult<T> = Result<T, RqpError>;

/// Unified error for catalog, planning, compilation and execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RqpError {
    /// A query referenced a relation name not present in the catalog.
    UnknownRelation {
        /// The offending relation name.
        rel: String,
        /// The query being built.
        query: String,
    },
    /// A query referenced a column not present on its relation.
    UnknownColumn {
        /// The relation holding (or not holding) the column.
        rel: String,
        /// The offending column name.
        col: String,
        /// The query being built.
        query: String,
    },
    /// A predicate id names no predicate of the query.
    UnknownPredicate {
        /// Display form of the predicate id.
        pred: String,
        /// The query name.
        query: String,
    },
    /// The same relation was added to a query twice.
    DuplicateRelation {
        /// The relation name.
        rel: String,
        /// The query being built.
        query: String,
    },
    /// A query failed structural validation (disconnected join graph,
    /// duplicate predicate ids, out-of-range selectivities, …).
    InvalidQuery(String),
    /// A tuning parameter is outside its legal range (contour ratio ≤ 1,
    /// zero recosting stride, unusable cache directory, …).
    Config(String),
    /// A selectivity vector's dimensionality does not match the query's
    /// epp count.
    DimensionMismatch {
        /// Dimensions required by the context (query epp count).
        expected: usize,
        /// Dimensions actually supplied.
        got: usize,
    },
    /// An ESS grid request exceeds the representable cell count.
    GridTooLarge {
        /// Cells per dimension at the point of overflow.
        resolution: usize,
        /// Number of dimensions requested.
        dims: usize,
    },
    /// The optimizer could not produce a plan (e.g. a disconnected join
    /// graph that slipped past validation).
    PlanNotFound(String),
    /// A plan does not evaluate the requested error-prone predicate.
    EppNotInPlan {
        /// ESS dimension of the missing epp.
        epp: usize,
    },
    /// A POSP snapshot failed to serialize, parse or restore.
    Snapshot(String),
    /// A serving layer refused new work: its admission queue is full.
    /// Callers should back off and retry rather than block.
    Overloaded {
        /// Sessions already waiting when admission was refused.
        queue_depth: usize,
        /// The configured queue capacity.
        cap: usize,
    },
    /// Row-level execution failed (missing table, schema mismatch, …).
    Execution(String),
    /// A wall-clock deadline expired before the operation could finish.
    /// Carries the phase that was cut short (admission queue, registry
    /// wait, discovery, …) so operators can tell *where* time went.
    DeadlineExpired {
        /// The phase in progress when the deadline lapsed.
        phase: String,
    },
    /// A per-fingerprint circuit breaker is open: the last compile(s) for
    /// this surface failed and the backoff window has not elapsed, so the
    /// request is refused instantly instead of burning another compile.
    BreakerOpen {
        /// Milliseconds until the breaker admits a half-open re-probe.
        retry_in_ms: u64,
        /// Display form of the failure that opened the breaker.
        cause: String,
    },
    /// An internal invariant was violated; carries a diagnostic message.
    /// Debug builds additionally `debug_assert!` at the raise site.
    Internal(String),
}

impl fmt::Display for RqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RqpError::UnknownRelation { rel, query } => {
                write!(f, "unknown relation {rel:?} in query {query}")
            }
            RqpError::UnknownColumn { rel, col, query } => {
                write!(f, "unknown column {rel}.{col} in query {query}")
            }
            RqpError::UnknownPredicate { pred, query } => {
                write!(f, "predicate {pred} not found in query {query}")
            }
            RqpError::DuplicateRelation { rel, query } => {
                write!(f, "relation {rel} added twice to query {query}")
            }
            RqpError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            RqpError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RqpError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            RqpError::GridTooLarge { resolution, dims } => {
                write!(f, "ESS grid too large: resolution {resolution} over {dims} dimensions")
            }
            RqpError::PlanNotFound(msg) => write!(f, "no plan found: {msg}"),
            RqpError::EppNotInPlan { epp } => {
                write!(f, "plan does not evaluate epp dim{epp}")
            }
            RqpError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            RqpError::Overloaded { queue_depth, cap } => {
                write!(f, "overloaded: admission queue holds {queue_depth} of {cap} sessions")
            }
            RqpError::Execution(msg) => write!(f, "execution error: {msg}"),
            RqpError::DeadlineExpired { phase } => {
                write!(f, "deadline expired during {phase}")
            }
            RqpError::BreakerOpen { retry_in_ms, cause } => {
                write!(f, "circuit breaker open (re-probe in {retry_in_ms}ms): {cause}")
            }
            RqpError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for RqpError {}

impl From<RqpError> for String {
    fn from(e: RqpError) -> String {
        e.to_string()
    }
}

/// Raise an [`RqpError::Internal`]: asserts in debug builds (so tests catch
/// the broken invariant at its source) and returns the error in release
/// builds (so production degrades into an `Err` instead of a panic).
#[macro_export]
macro_rules! internal_error {
    ($($arg:tt)*) => {{
        debug_assert!(false, $($arg)*);
        $crate::RqpError::Internal(format!($($arg)*))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_and_informative() {
        let cases: Vec<(RqpError, &str)> = vec![
            (
                RqpError::UnknownRelation { rel: "part".into(), query: "EQ".into() },
                "unknown relation \"part\" in query EQ",
            ),
            (
                RqpError::UnknownColumn {
                    rel: "part".into(),
                    col: "p_x".into(),
                    query: "EQ".into(),
                },
                "unknown column part.p_x in query EQ",
            ),
            (RqpError::InvalidQuery("join graph is disconnected".into()), "disconnected"),
            (RqpError::Config("contour ratio must exceed 1".into()), "invalid configuration"),
            (RqpError::DimensionMismatch { expected: 2, got: 3 }, "expected 2, got 3"),
            (RqpError::EppNotInPlan { epp: 1 }, "dim1"),
            (
                RqpError::Overloaded { queue_depth: 8, cap: 8 },
                "overloaded: admission queue holds 8 of 8 sessions",
            ),
            (
                RqpError::DeadlineExpired { phase: "registry wait".into() },
                "deadline expired during registry wait",
            ),
            (
                RqpError::BreakerOpen { retry_in_ms: 250, cause: "compile panicked".into() },
                "circuit breaker open (re-probe in 250ms)",
            ),
            (RqpError::Internal("contour out of order".into()), "invariant"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle:?}");
        }
    }

    #[test]
    fn converts_into_string_for_legacy_interfaces() {
        let s: String = RqpError::PlanNotFound("q".into()).into();
        assert!(s.contains("no plan"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(RqpError::Snapshot("bad".into()));
        assert!(e.to_string().contains("snapshot"));
    }
}
