//! Relation and column statistics.
//!
//! Statistics are what a production catalog would maintain: row counts, page
//! counts, per-column distinct-value counts (NDV) and widths, and index
//! availability. The cost model in `rqp-qplan` consumes exactly these.

use serde::{Deserialize, Serialize};

/// Identifier of a relation within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u32);

impl RelId {
    /// The relation's index into the catalog's relation vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within its relation.
    pub name: String,
    /// Number of distinct values. Used for independence-based join
    /// selectivity estimation (the native optimizer baseline) and for
    /// aggregate cardinalities.
    pub ndv: u64,
    /// Average stored width in bytes.
    pub width: u32,
    /// Whether a B-tree index exists on this column (enables index scans
    /// and index nested-loop joins).
    pub indexed: bool,
    /// Zipf skew of the value distribution (0 = uniform). Skew is what
    /// breaks the System-R `1/max(ndv)` join estimate — the true join
    /// selectivity of two zipf(θ) columns exceeds it by the factor
    /// `N·H_N(2θ)/H_N(θ)²` — and is therefore the canonical reason a
    /// predicate becomes error-prone.
    #[serde(default)]
    pub skew: f64,
}

impl Column {
    /// A convenience constructor for an unindexed column.
    pub fn new(name: impl Into<String>, ndv: u64, width: u32) -> Self {
        Column { name: name.into(), ndv: ndv.max(1), width, indexed: false, skew: 0.0 }
    }

    /// A convenience constructor for an indexed column.
    pub fn indexed(name: impl Into<String>, ndv: u64, width: u32) -> Self {
        Column { name: name.into(), ndv: ndv.max(1), width, indexed: true, skew: 0.0 }
    }

    /// Give the column a zipf-skewed value distribution.
    pub fn with_skew(mut self, skew: f64) -> Self {
        assert!(skew >= 0.0, "skew must be non-negative");
        self.skew = skew;
        self
    }
}

/// A base relation with its statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    /// Relation name, unique within the catalog.
    pub name: String,
    /// Cardinality (number of tuples).
    pub rows: u64,
    /// Columns, in schema order.
    pub columns: Vec<Column>,
}

/// Number of bytes per disk page assumed by the page-count derivation.
pub const PAGE_SIZE: u64 = 8192;

impl Relation {
    /// Total tuple width in bytes (sum of column widths plus a fixed
    /// per-tuple header, mirroring how row stores account tuple overhead).
    pub fn tuple_width(&self) -> u64 {
        let payload: u64 = self.columns.iter().map(|c| c.width as u64).sum();
        payload + 24
    }

    /// Number of disk pages occupied by the relation.
    pub fn pages(&self) -> u64 {
        let per_page = (PAGE_SIZE / self.tuple_width()).max(1);
        self.rows.div_ceil(per_page).max(1)
    }

    /// Look up a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_id_display_and_index() {
        let id = RelId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "R7");
    }

    #[test]
    fn column_ndv_floored_at_one() {
        let c = Column::new("x", 0, 4);
        assert_eq!(c.ndv, 1);
    }

    #[test]
    fn pages_scale_with_rows() {
        let small =
            Relation { name: "s".into(), rows: 1_000, columns: vec![Column::new("a", 10, 8)] };
        let big = Relation { rows: 1_000_000, ..small.clone() };
        assert!(big.pages() > small.pages());
        assert!(small.pages() >= 1);
    }

    #[test]
    fn pages_never_zero() {
        let empty = Relation { name: "e".into(), rows: 0, columns: vec![Column::new("a", 1, 4)] };
        assert_eq!(empty.pages(), 1);
    }

    #[test]
    fn tuple_width_includes_header() {
        let r = Relation {
            name: "r".into(),
            rows: 1,
            columns: vec![Column::new("a", 1, 4), Column::new("b", 1, 8)],
        };
        assert_eq!(r.tuple_width(), 4 + 8 + 24);
    }

    #[test]
    fn column_index_lookup() {
        let r = Relation {
            name: "r".into(),
            rows: 1,
            columns: vec![Column::new("a", 1, 4), Column::indexed("b", 1, 8)],
        };
        assert_eq!(r.column_index("b"), Some(1));
        assert_eq!(r.column_index("zz"), None);
        assert!(r.columns[1].indexed);
    }
}
