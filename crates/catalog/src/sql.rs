//! A minimal SQL-flavoured front end for declaring SPJ queries.
//!
//! Robust query processing needs one piece of information standard SQL
//! cannot carry: *which predicates are error-prone*. This module parses a
//! small, explicit dialect that makes both the reliable selectivities and
//! the epp markers first-class:
//!
//! ```text
//! SELECT * FROM part, lineitem, orders
//! WHERE part.p_partkey ?= lineitem.l_partkey     -- error-prone join
//!   AND orders.o_orderkey ?= lineitem.l_orderkey -- error-prone join
//!   AND sel(part.p_retailprice) = 0.05           -- reliable filter
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT '*' FROM table (',' table)* WHERE cond (AND cond)*
//!            [GROUP BY col (',' col)*]
//! cond    := col '=' col            -- reliable equi-join
//!          | col '?=' col           -- error-prone equi-join (ESS dimension)
//!          | 'sel'  '(' col ')' '=' number   -- reliable filter
//!          | 'sel?' '(' col ')' '=' number   -- error-prone filter
//! col     := ident '.' ident
//! ```
//!
//! Error-prone predicates become ESS dimensions in the order they appear.

use crate::builder::QueryBuilder;
use crate::catalog::Catalog;
use crate::query::Query;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Star,
    Comma,
    Dot,
    Eq,
    EppEq,
    LParen,
    RParen,
}

fn lex(input: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' if input.contains("--") => {
                // line comment: skip to end of line
                chars.next();
                if chars.peek() == Some(&'-') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    return Err(ParseError("stray '-'".into()));
                }
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '.' => {
                chars.next();
                out.push(Tok::Dot);
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '?' => {
                chars.next();
                match chars.next() {
                    Some('=') => out.push(Tok::EppEq),
                    _ => return Err(ParseError("expected '=' after '?'".into())),
                }
            }
            '0'..='9' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit()
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c == '-'
                        || c == '+'
                    {
                        // only allow '-'/'+' right after an exponent marker
                        if (c == '-' || c == '+')
                            && !matches!(s.chars().last(), Some('e') | Some('E'))
                        {
                            break;
                        }
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = s.parse().map_err(|_| ParseError(format!("bad number {s:?}")))?;
                out.push(Tok::Number(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else if c == '?' {
                        // allow the `sel?` keyword
                        s.push(c);
                        chars.next();
                        break;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => return Err(ParseError(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    catalog: &'a Catalog,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_tok(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError(format!("expected {what}, got {got:?}")))
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            got => Err(ParseError(format!("expected keyword {kw}, got {got:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            got => Err(ParseError(format!("expected identifier, got {got:?}"))),
        }
    }

    fn column(&mut self) -> Result<(String, String), ParseError> {
        let rel = self.ident()?;
        self.expect_tok(&Tok::Dot, "'.'")?;
        let col = self.ident()?;
        Ok((rel, col))
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next()? {
            Tok::Number(v) => Ok(v),
            got => Err(ParseError(format!("expected number, got {got:?}"))),
        }
    }

    fn query(&mut self, name: &str) -> Result<Query, ParseError> {
        self.keyword("select")?;
        self.expect_tok(&Tok::Star, "'*'")?;
        self.keyword("from")?;
        let mut builder = QueryBuilder::new(self.catalog, name);
        loop {
            let table = self.ident()?;
            if self.catalog.find_relation(&table).is_none() {
                return Err(ParseError(format!("unknown relation {table:?}")));
            }
            builder = builder.table(&table);
            if self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.keyword("where")?;
        loop {
            builder = self.condition(builder)?;
            match self.peek() {
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("and") => {
                    self.pos += 1;
                }
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("group") => {
                    self.pos += 1;
                    self.keyword("by")?;
                    loop {
                        let (rel, col) = self.column()?;
                        builder = builder.group_by(&rel, &col);
                        if self.peek() == Some(&Tok::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    break;
                }
                None => break,
                Some(got) => {
                    return Err(ParseError(format!("expected AND, GROUP BY or end, got {got:?}")))
                }
            }
        }
        builder.build().map_err(|e| ParseError(e.to_string()))
    }

    fn condition(&mut self, builder: QueryBuilder<'a>) -> Result<QueryBuilder<'a>, ParseError> {
        // filter forms start with the `sel` / `sel?` keyword
        if let Some(Tok::Ident(kw)) = self.peek() {
            let kw = kw.clone();
            if kw.eq_ignore_ascii_case("sel") || kw.eq_ignore_ascii_case("sel?") {
                self.pos += 1;
                self.expect_tok(&Tok::LParen, "'('")?;
                let (rel, col) = self.column()?;
                self.expect_tok(&Tok::RParen, "')'")?;
                self.expect_tok(&Tok::Eq, "'='")?;
                let s = self.number()?;
                if !(0.0..=1.0).contains(&s) {
                    return Err(ParseError(format!("selectivity {s} out of [0,1]")));
                }
                return Ok(if kw.eq_ignore_ascii_case("sel") {
                    builder.filter(&rel, &col, s)
                } else {
                    builder.epp_filter(&rel, &col, s)
                });
            }
        }
        // join forms: col (=|?=) col
        let (lr, lc) = self.column()?;
        let epp = match self.next()? {
            Tok::Eq => false,
            Tok::EppEq => true,
            got => return Err(ParseError(format!("expected '=' or '?=', got {got:?}"))),
        };
        let (rr, rc) = self.column()?;
        Ok(if epp {
            builder.epp_join(&lr, &lc, &rr, &rc)
        } else {
            builder.join(&lr, &lc, &rr, &rc)
        })
    }
}

/// Parse a query in the robust-SPJ dialect against a catalog.
pub fn parse_query(catalog: &Catalog, name: &str, sql: &str) -> Result<Query, ParseError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0, catalog };
    let q = p.query(name)?;
    if p.pos != p.toks.len() {
        return Err(ParseError("trailing tokens after query".into()));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CatalogBuilder, RelationBuilder};

    fn cat() -> Catalog {
        CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 1000)
                    .indexed_column("p_partkey", 1000, 8)
                    .column("p_retailprice", 100, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 5000)
                    .indexed_column("l_partkey", 1000, 8)
                    .indexed_column("l_orderkey", 2000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 2000).indexed_column("o_orderkey", 2000, 8).build(),
            )
            .build()
    }

    #[test]
    fn parses_the_example_query() {
        let c = cat();
        let q = parse_query(
            &c,
            "EQ",
            "SELECT * FROM part, lineitem, orders \
             WHERE part.p_partkey ?= lineitem.l_partkey \
               AND orders.o_orderkey ?= lineitem.l_orderkey \
               AND sel(part.p_retailprice) = 0.05",
        )
        .unwrap();
        assert_eq!(q.dims(), 2);
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.filters.len(), 1);
        assert!((q.filters[0].selectivity - 0.05).abs() < 1e-12);
    }

    #[test]
    fn reliable_joins_are_not_dimensions() {
        let c = cat();
        let q = parse_query(
            &c,
            "t",
            "select * from part, lineitem \
             where part.p_partkey = lineitem.l_partkey \
               and sel?(part.p_retailprice) = 0.1",
        )
        .unwrap();
        assert_eq!(q.dims(), 1, "only the epp filter is a dimension");
        assert!(q.filter(q.epp_pred(crate::query::EppId(0))).is_some());
    }

    #[test]
    fn comments_and_case_are_tolerated() {
        let c = cat();
        let q = parse_query(
            &c,
            "t",
            "SELECT * FROM part, lineitem -- the relations\n\
             WHERE part.p_partkey ?= lineitem.l_partkey -- epp\n",
        )
        .unwrap();
        assert_eq!(q.dims(), 1);
    }

    #[test]
    fn scientific_notation_selectivities() {
        let c = cat();
        let q = parse_query(
            &c,
            "t",
            "select * from part, lineitem \
             where part.p_partkey ?= lineitem.l_partkey \
             and sel(part.p_retailprice) = 5e-2",
        )
        .unwrap();
        assert!((q.filters[0].selectivity - 0.05).abs() < 1e-12);
    }

    #[test]
    fn error_messages_are_specific() {
        let c = cat();
        let err = |sql: &str| parse_query(&c, "t", sql).unwrap_err().0;
        assert!(err("SELECT * FROM nowhere WHERE a.b = c.d").contains("unknown relation"));
        assert!(err("SELECT * FROM part").contains("unexpected end of input"));
        assert!(err("SELECT * FROM part ORDER").contains("expected keyword where"));
        assert!(err("SELECT * FROM part, lineitem WHERE sel(part.p_retailprice) = 7")
            .contains("out of [0,1]"));
        assert!(err("SELECT * FROM part WHERE part.p_partkey ? part.p_partkey")
            .contains("expected '='"));
    }

    #[test]
    fn validation_failures_surface_as_parse_errors() {
        // disconnected join graph is caught by Query::validate via build()
        let c = cat();
        let err =
            parse_query(&c, "t", "select * from part, orders where sel(part.p_retailprice) = 0.5")
                .unwrap_err();
        assert!(err.0.contains("disconnected"), "{err}");
    }

    #[test]
    fn group_by_clause_is_parsed() {
        let c = cat();
        let q = parse_query(
            &c,
            "t",
            "select * from part, lineitem \
             where part.p_partkey ?= lineitem.l_partkey \
             group by part.p_retailprice, lineitem.l_orderkey",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.dims(), 1);
    }

    #[test]
    fn trailing_tokens_rejected() {
        let c = cat();
        let e = parse_query(
            &c,
            "t",
            "select * from part, lineitem where part.p_partkey ?= lineitem.l_partkey ) )",
        );
        assert!(e.is_err());
    }
}
