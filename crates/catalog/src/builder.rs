//! Fluent builders for catalogs and queries.
//!
//! The workload crate builds fairly large schemas; these builders keep that
//! code declarative and catch wiring errors (bad column names, dangling
//! relations) at construction time rather than deep inside the optimizer.

use crate::catalog::Catalog;
use crate::error::RqpError;
use crate::predicate::{ColRef, FilterPredicate, JoinPredicate, PredId};
use crate::query::Query;
use crate::stats::{Column, RelId, Relation};

/// Builder for a single relation.
#[derive(Debug)]
pub struct RelationBuilder {
    name: String,
    rows: u64,
    columns: Vec<Column>,
}

impl RelationBuilder {
    /// Start a relation with the given name and cardinality.
    pub fn new(name: impl Into<String>, rows: u64) -> Self {
        RelationBuilder { name: name.into(), rows, columns: Vec::new() }
    }

    /// Add an unindexed column.
    pub fn column(mut self, name: &str, ndv: u64, width: u32) -> Self {
        self.columns.push(Column::new(name, ndv, width));
        self
    }

    /// Add an indexed column.
    pub fn indexed_column(mut self, name: &str, ndv: u64, width: u32) -> Self {
        self.columns.push(Column::indexed(name, ndv, width));
        self
    }

    /// Add an indexed column with a zipf-skewed value distribution.
    pub fn skewed_column(mut self, name: &str, ndv: u64, width: u32, skew: f64) -> Self {
        self.columns.push(Column::indexed(name, ndv, width).with_skew(skew));
        self
    }

    /// Finish the relation.
    pub fn build(self) -> Relation {
        assert!(!self.columns.is_empty(), "relation {} has no columns", self.name);
        Relation { name: self.name, rows: self.rows, columns: self.columns }
    }
}

/// Builder for a catalog.
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    catalog: Catalog,
}

impl CatalogBuilder {
    /// Start an empty catalog.
    pub fn new() -> Self {
        CatalogBuilder::default()
    }

    /// Add a finished relation.
    pub fn relation(mut self, rel: Relation) -> Self {
        self.catalog.add_relation(rel);
        self
    }

    /// Finish the catalog.
    pub fn build(self) -> Catalog {
        self.catalog
    }
}

/// Builder for a query against an existing catalog. Relations and columns
/// are referenced by name; the builder resolves them and assigns predicate
/// ids in declaration order.
///
/// Resolution errors (unknown relation or column, duplicate table) do not
/// abort the fluent chain; the first one is remembered and surfaced by
/// [`QueryBuilder::build`], so call sites stay declarative while remaining
/// panic-free.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    name: String,
    relations: Vec<RelId>,
    joins: Vec<JoinPredicate>,
    filters: Vec<FilterPredicate>,
    epps: Vec<PredId>,
    group_by: Vec<ColRef>,
    next_id: u32,
    deferred: Option<RqpError>,
}

impl<'a> QueryBuilder<'a> {
    /// Start a query with the given name.
    pub fn new(catalog: &'a Catalog, name: impl Into<String>) -> Self {
        QueryBuilder {
            catalog,
            name: name.into(),
            relations: Vec::new(),
            joins: Vec::new(),
            filters: Vec::new(),
            epps: Vec::new(),
            group_by: Vec::new(),
            next_id: 0,
            deferred: None,
        }
    }

    fn defer(&mut self, e: RqpError) {
        if self.deferred.is_none() {
            self.deferred = Some(e);
        }
    }

    fn resolve(&mut self, rel: &str, col: &str) -> Option<ColRef> {
        let Some(rid) = self.catalog.find_relation(rel) else {
            self.defer(RqpError::UnknownRelation { rel: rel.into(), query: self.name.clone() });
            return None;
        };
        let Some(cid) = self.catalog.relation(rid).column_index(col) else {
            self.defer(RqpError::UnknownColumn {
                rel: rel.into(),
                col: col.into(),
                query: self.name.clone(),
            });
            return None;
        };
        Some(ColRef::new(rid, cid))
    }

    /// Add a relation to the FROM list.
    pub fn table(mut self, rel: &str) -> Self {
        match self.catalog.find_relation(rel) {
            Some(rid) if self.relations.contains(&rid) => {
                self.defer(RqpError::DuplicateRelation {
                    rel: rel.into(),
                    query: self.name.clone(),
                });
            }
            Some(rid) => self.relations.push(rid),
            None => {
                self.defer(RqpError::UnknownRelation { rel: rel.into(), query: self.name.clone() });
            }
        }
        self
    }

    fn alloc_id(&mut self) -> PredId {
        let id = PredId(self.next_id);
        self.next_id += 1;
        id
    }

    fn push_join(&mut self, l_rel: &str, l_col: &str, r_rel: &str, r_col: &str, epp: bool) {
        let id = self.alloc_id();
        let (Some(left), Some(right)) = (self.resolve(l_rel, l_col), self.resolve(r_rel, r_col))
        else {
            return;
        };
        self.joins.push(JoinPredicate { id, left, right });
        if epp {
            self.epps.push(id);
        }
    }

    /// Add an equi-join predicate with a reliably-known selectivity.
    pub fn join(mut self, l_rel: &str, l_col: &str, r_rel: &str, r_col: &str) -> Self {
        self.push_join(l_rel, l_col, r_rel, r_col, false);
        self
    }

    /// Add an *error-prone* equi-join predicate: it becomes the next ESS
    /// dimension.
    pub fn epp_join(mut self, l_rel: &str, l_col: &str, r_rel: &str, r_col: &str) -> Self {
        self.push_join(l_rel, l_col, r_rel, r_col, true);
        self
    }

    fn push_filter(&mut self, rel: &str, col: &str, selectivity: f64, epp: bool) {
        let id = self.alloc_id();
        let Some(colref) = self.resolve(rel, col) else {
            return;
        };
        self.filters.push(FilterPredicate { id, col: colref, selectivity });
        if epp {
            self.epps.push(id);
        }
    }

    /// Add a filter predicate with a known selectivity.
    pub fn filter(mut self, rel: &str, col: &str, selectivity: f64) -> Self {
        self.push_filter(rel, col, selectivity, false);
        self
    }

    /// Add an *error-prone* filter predicate (its stored selectivity is only
    /// the optimizer's estimate; its true value is an ESS dimension).
    pub fn epp_filter(mut self, rel: &str, col: &str, est_selectivity: f64) -> Self {
        self.push_filter(rel, col, est_selectivity, true);
        self
    }

    /// Aggregate the result by a column (the aggregate sits above the SPJ
    /// core and does not affect selectivity discovery).
    pub fn group_by(mut self, rel: &str, col: &str) -> Self {
        if let Some(colref) = self.resolve(rel, col) {
            self.group_by.push(colref);
        }
        self
    }

    /// Finish and validate the query.
    ///
    /// Returns the first deferred resolution error, if any, or a validation
    /// failure from [`Query::validate`].
    pub fn build(self) -> Result<Query, RqpError> {
        if let Some(e) = self.deferred {
            return Err(e);
        }
        let q = Query {
            name: self.name,
            relations: self.relations,
            joins: self.joins,
            filters: self.filters,
            epps: self.epps,
            group_by: self.group_by,
        };
        q.validate(self.catalog)?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 20_000_000)
                    .indexed_column("p_partkey", 20_000_000, 8)
                    .column("p_retailprice", 100_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 600_000_000)
                    .indexed_column("l_partkey", 20_000_000, 8)
                    .indexed_column("l_orderkey", 150_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 150_000_000)
                    .indexed_column("o_orderkey", 150_000_000, 8)
                    .build(),
            )
            .build()
    }

    #[test]
    fn builds_the_example_query_eq() {
        // The introduction's example query EQ: part ⋈ lineitem ⋈ orders with
        // the two joins error-prone and a reliable filter on retailprice.
        let c = catalog();
        let q = QueryBuilder::new(&c, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_retailprice", 0.05)
            .build()
            .unwrap();
        assert_eq!(q.dims(), 2);
        assert_eq!(q.relations.len(), 3);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.filters.len(), 1);
        assert!(q.join_graph_connected());
    }

    #[test]
    fn bad_column_is_an_error() {
        let c = catalog();
        let err = QueryBuilder::new(&c, "bad")
            .table("part")
            .table("lineitem")
            .epp_join("part", "no_such", "lineitem", "l_partkey")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
    }

    #[test]
    fn duplicate_table_is_an_error() {
        let c = catalog();
        let err = QueryBuilder::new(&c, "bad").table("part").table("part").build().unwrap_err();
        assert!(err.to_string().contains("added twice"), "{err}");
    }

    #[test]
    fn disconnected_build_is_an_error() {
        let c = catalog();
        let err = QueryBuilder::new(&c, "bad")
            .table("part")
            .table("orders")
            .filter("part", "p_retailprice", 0.5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("disconnected"), "{err}");
    }

    #[test]
    fn first_error_wins_across_the_chain() {
        // Both the bad relation and the (consequent) dangling join are wrong;
        // the first problem reported must be the unknown relation.
        let c = catalog();
        let err = QueryBuilder::new(&c, "bad")
            .table("no_such_table")
            .table("part")
            .join("part", "p_partkey", "no_such_table", "x")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            RqpError::UnknownRelation { rel: "no_such_table".into(), query: "bad".into() }
        );
    }

    #[test]
    fn over_wide_query_is_rejected_at_build_time() {
        // 21 chained relations: the DP optimizer must never see this query,
        // so the builder surfaces the width error before any planning.
        let mut cb = CatalogBuilder::new();
        for i in 0..=crate::query::MAX_RELATIONS {
            cb = cb
                .relation(RelationBuilder::new(format!("w{i}"), 1000).column("k", 100, 8).build());
        }
        let c = cb.build();
        let mut qb = QueryBuilder::new(&c, "wide");
        for i in 0..=crate::query::MAX_RELATIONS {
            qb = qb.table(&format!("w{i}"));
        }
        for i in 1..=crate::query::MAX_RELATIONS {
            qb = qb.join(&format!("w{}", i - 1), "k", &format!("w{i}"), "k");
        }
        let err = qb.build().unwrap_err();
        assert!(err.to_string().contains("maximum supported"), "{err}");
    }

    #[test]
    fn epp_filter_becomes_dimension() {
        let c = catalog();
        let q = QueryBuilder::new(&c, "f")
            .table("part")
            .table("lineitem")
            .join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_filter("part", "p_retailprice", 0.1)
            .build()
            .unwrap();
        assert_eq!(q.dims(), 1);
        assert!(q.filter(q.epp_pred(crate::query::EppId(0))).is_some());
    }
}
