//! Selectivity values and vectors over the error-prone predicates.

use serde::{Deserialize, Serialize};

/// A predicate selectivity in `(0, 1]`.
///
/// Selectivities of zero are excluded: the ESS of the paper spans the full
/// `[0,1]^D` hypercube, but its discretized grid starts at a small positive
/// minimum (an empty join output makes every plan equally and trivially
/// cheap, so the origin of the practical search space is a small ε).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Selectivity(f64);

impl Selectivity {
    /// Smallest representable selectivity; also the default grid origin.
    pub const MIN: Selectivity = Selectivity(1e-8);
    /// Largest selectivity (the ESS *terminus* coordinate).
    pub const MAX: Selectivity = Selectivity(1.0);

    /// Create a selectivity, clamping into `[MIN, 1]`.
    ///
    /// # Panics
    /// Panics if `v` is not finite.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite(), "selectivity must be finite, got {v}");
        Selectivity(v.clamp(Self::MIN.0, 1.0))
    }

    /// The raw fraction.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl From<f64> for Selectivity {
    fn from(v: f64) -> Self {
        Selectivity::new(v)
    }
}

impl std::fmt::Display for Selectivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e}", self.0)
    }
}

/// An assignment of selectivities to the epps of a query: a location in the
/// (continuous) ESS. Dimension `j` holds the selectivity of epp `j` in the
/// query's epp ordering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelVector(Vec<Selectivity>);

impl SelVector {
    /// Build from raw fractions.
    pub fn from_values(values: &[f64]) -> Self {
        SelVector(values.iter().copied().map(Selectivity::new).collect())
    }

    /// Build from selectivities.
    pub fn new(values: Vec<Selectivity>) -> Self {
        SelVector(values)
    }

    /// Dimensionality `D`.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Selectivity along dimension `j`.
    pub fn get(&self, j: usize) -> Selectivity {
        self.0[j]
    }

    /// Replace the selectivity along dimension `j`.
    pub fn set(&mut self, j: usize, s: Selectivity) {
        self.0[j] = s;
    }

    /// Iterate over the coordinates.
    pub fn iter(&self) -> impl Iterator<Item = Selectivity> + '_ {
        self.0.iter().copied()
    }

    /// `self ⪰ other`: every coordinate of `self` is ≥ the corresponding
    /// coordinate of `other` (the *dominance* relation of §2.1).
    pub fn dominates(&self, other: &SelVector) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.0.iter().zip(&other.0).all(|(a, b)| a.value() >= b.value())
    }

    /// `self ≻ other`: dominance with at least one strictly larger coordinate.
    pub fn strictly_dominates(&self, other: &SelVector) -> bool {
        self.dominates(other) && self.0.iter().zip(&other.0).any(|(a, b)| a.value() > b.value())
    }

    /// The component-wise maximum of two locations.
    pub fn join_max(&self, other: &SelVector) -> SelVector {
        debug_assert_eq!(self.dims(), other.dims());
        SelVector(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| if a.value() >= b.value() { *a } else { *b })
                .collect(),
        )
    }
}

impl std::ops::Index<usize> for SelVector {
    type Output = Selectivity;
    fn index(&self, j: usize) -> &Selectivity {
        &self.0[j]
    }
}

impl std::fmt::Display for SelVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_into_range() {
        assert_eq!(Selectivity::new(2.0).value(), 1.0);
        assert!(Selectivity::new(0.0).value() > 0.0);
        assert_eq!(Selectivity::new(0.5).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Selectivity::new(f64::NAN);
    }

    #[test]
    fn dominance_is_reflexive_and_partial() {
        let a = SelVector::from_values(&[0.1, 0.5]);
        let b = SelVector::from_values(&[0.2, 0.4]);
        let c = SelVector::from_values(&[0.2, 0.6]);
        assert!(a.dominates(&a));
        assert!(!a.strictly_dominates(&a));
        assert!(!a.dominates(&b) && !b.dominates(&a), "a and b are incomparable");
        assert!(c.strictly_dominates(&a));
        assert!(c.dominates(&b));
    }

    #[test]
    fn join_max_upper_bounds_both() {
        let a = SelVector::from_values(&[0.1, 0.5]);
        let b = SelVector::from_values(&[0.2, 0.4]);
        let m = a.join_max(&b);
        assert!(m.dominates(&a));
        assert!(m.dominates(&b));
        assert_eq!(m.get(0).value(), 0.2);
        assert_eq!(m.get(1).value(), 0.5);
    }

    #[test]
    fn display_is_compact() {
        let a = SelVector::from_values(&[0.1]);
        assert_eq!(a.to_string(), "(1.000e-1)");
    }
}
