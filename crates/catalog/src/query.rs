//! The logical (select-project-join) query model.

use crate::catalog::Catalog;
use crate::error::RqpError;
use crate::predicate::{FilterPredicate, JoinPredicate, PredId};
use crate::stats::RelId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Index of an error-prone predicate in the query's epp ordering; equals the
/// ESS dimension assigned to that predicate (§2.1: the selectivity of epp
/// `e_j` is mapped to the `j`-th dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EppId(pub usize);

impl std::fmt::Display for EppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dim{}", self.0)
    }
}

/// Maximum number of relations a query may join.
///
/// The DP optimizer addresses relation subsets with `u32` bitmasks and
/// materializes a table of `2^n` entries; past 20 relations that table
/// alone is gigabytes (and a 32-relation query would ask for a 4-billion
/// entry allocation). Queries wider than this are rejected with a
/// structured error at build/validation time, long before the optimizer
/// could attempt the allocation.
pub const MAX_RELATIONS: usize = 20;

/// A select-project-join query with a designated set of error-prone
/// predicates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// Human-readable name, e.g. `"4D_Q91"`.
    pub name: String,
    /// The joined relations.
    pub relations: Vec<RelId>,
    /// Equi-join predicates over `relations` (the join graph edges).
    pub joins: Vec<JoinPredicate>,
    /// Filter predicates with reliably-known selectivities.
    pub filters: Vec<FilterPredicate>,
    /// Predicate ids (into `joins` / `filters`) marked error-prone, in ESS
    /// dimension order.
    pub epps: Vec<PredId>,
    /// Optional grouping columns: the query aggregates its join result by
    /// these columns (TPC-DS queries are aggregates over SPJ cores; the
    /// aggregate sits above every error-prone predicate and does not
    /// affect discovery).
    pub group_by: Vec<crate::predicate::ColRef>,
}

impl Query {
    /// Number of ESS dimensions, `D`.
    pub fn dims(&self) -> usize {
        self.epps.len()
    }

    /// The ESS dimension of a predicate, if it is an epp.
    pub fn epp_dim(&self, pred: PredId) -> Option<EppId> {
        self.epps.iter().position(|&p| p == pred).map(EppId)
    }

    /// The predicate id occupying ESS dimension `dim`.
    pub fn epp_pred(&self, dim: EppId) -> PredId {
        self.epps[dim.0]
    }

    /// The join predicate with the given id, if it is a join.
    pub fn join(&self, pred: PredId) -> Option<&JoinPredicate> {
        self.joins.iter().find(|j| j.id == pred)
    }

    /// The filter predicate with the given id, if it is a filter.
    pub fn filter(&self, pred: PredId) -> Option<&FilterPredicate> {
        self.filters.iter().find(|f| f.id == pred)
    }

    /// All filters on the given relation.
    pub fn filters_on(&self, rel: RelId) -> impl Iterator<Item = &FilterPredicate> {
        self.filters.iter().filter(move |f| f.col.rel == rel)
    }

    /// All join predicates connecting a relation in `left` with one in
    /// `right` (both sides disjoint subsets of the query's relations).
    pub fn joins_between<'a>(
        &'a self,
        left: &'a HashSet<RelId>,
        right: &'a HashSet<RelId>,
    ) -> impl Iterator<Item = &'a JoinPredicate> {
        self.joins.iter().filter(move |j| {
            (left.contains(&j.left.rel) && right.contains(&j.right.rel))
                || (left.contains(&j.right.rel) && right.contains(&j.left.rel))
        })
    }

    /// Whether the join graph restricted to the query's relations is
    /// connected (no cross products required).
    pub fn join_graph_connected(&self) -> bool {
        if self.relations.is_empty() {
            return true;
        }
        let mut seen: HashSet<RelId> = HashSet::new();
        let mut stack = vec![self.relations[0]];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            for j in &self.joins {
                if let Some(o) = j.other_side(r) {
                    if !seen.contains(&o) {
                        stack.push(o);
                    }
                }
            }
        }
        self.relations.iter().all(|r| seen.contains(r))
    }

    /// Validate internal consistency against a catalog.
    ///
    /// Checks: the relation list is non-empty and no wider than
    /// [`MAX_RELATIONS`]; relations exist and are distinct; predicate ids
    /// are unique; predicates reference query relations and valid columns;
    /// every epp id names an existing predicate; the join graph is
    /// connected.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), RqpError> {
        let invalid = |msg: String| Err(RqpError::InvalidQuery(msg));
        if self.relations.is_empty() {
            return invalid(format!("query {}: no relations", self.name));
        }
        if self.relations.len() > MAX_RELATIONS {
            return invalid(format!(
                "query {}: joins {} relations, maximum supported is {MAX_RELATIONS}",
                self.name,
                self.relations.len()
            ));
        }
        let rel_set: HashSet<RelId> = self.relations.iter().copied().collect();
        if rel_set.len() != self.relations.len() {
            return invalid(format!("query {}: duplicate relations", self.name));
        }
        for &r in &self.relations {
            if r.index() >= catalog.len() {
                return invalid(format!("query {}: relation {r} not in catalog", self.name));
            }
        }
        let mut ids = HashSet::new();
        for j in &self.joins {
            if !ids.insert(j.id) {
                return invalid(format!("query {}: duplicate predicate id {}", self.name, j.id));
            }
            for cr in [j.left, j.right] {
                if !rel_set.contains(&cr.rel) {
                    return invalid(format!(
                        "query {}: join {} references non-query relation {}",
                        self.name, j.id, cr.rel
                    ));
                }
                if cr.col >= catalog.relation(cr.rel).columns.len() {
                    return invalid(format!(
                        "query {}: join {} references invalid column {} of {}",
                        self.name, j.id, cr.col, cr.rel
                    ));
                }
            }
        }
        for f in &self.filters {
            if !ids.insert(f.id) {
                return invalid(format!("query {}: duplicate predicate id {}", self.name, f.id));
            }
            if !rel_set.contains(&f.col.rel) {
                return invalid(format!(
                    "query {}: filter {} references non-query relation {}",
                    self.name, f.id, f.col.rel
                ));
            }
            if !(0.0..=1.0).contains(&f.selectivity) {
                return invalid(format!(
                    "query {}: filter {} selectivity {} out of range",
                    self.name, f.id, f.selectivity
                ));
            }
        }
        let mut epp_seen = HashSet::new();
        for &e in &self.epps {
            if !ids.contains(&e) {
                return invalid(format!("query {}: epp {} names no predicate", self.name, e));
            }
            if !epp_seen.insert(e) {
                return invalid(format!("query {}: duplicate epp {}", self.name, e));
            }
        }
        for g in &self.group_by {
            if !rel_set.contains(&g.rel) {
                return invalid(format!(
                    "query {}: group-by references non-query relation {}",
                    self.name, g.rel
                ));
            }
            if g.col >= catalog.relation(g.rel).columns.len() {
                return invalid(format!(
                    "query {}: group-by references invalid column {} of {}",
                    self.name, g.col, g.rel
                ));
            }
        }
        if !self.join_graph_connected() {
            return invalid(format!("query {}: join graph is disconnected", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ColRef;
    use crate::stats::{Column, Relation};

    fn setup() -> (Catalog, Query) {
        let mut c = Catalog::new();
        let a = c.add_relation(Relation {
            name: "a".into(),
            rows: 100,
            columns: vec![Column::new("k", 100, 8)],
        });
        let b = c.add_relation(Relation {
            name: "b".into(),
            rows: 200,
            columns: vec![Column::new("k", 200, 8), Column::new("v", 10, 4)],
        });
        let q = Query {
            name: "t".into(),
            relations: vec![a, b],
            joins: vec![JoinPredicate {
                id: PredId(0),
                left: ColRef::new(a, 0),
                right: ColRef::new(b, 0),
            }],
            filters: vec![FilterPredicate {
                id: PredId(1),
                col: ColRef::new(b, 1),
                selectivity: 0.1,
            }],
            epps: vec![PredId(0)],
            group_by: vec![],
        };
        (c, q)
    }

    #[test]
    fn valid_query_passes() {
        let (c, q) = setup();
        assert_eq!(q.validate(&c), Ok(()));
        assert_eq!(q.dims(), 1);
        assert_eq!(q.epp_dim(PredId(0)), Some(EppId(0)));
        assert_eq!(q.epp_dim(PredId(1)), None);
        assert_eq!(q.epp_pred(EppId(0)), PredId(0));
    }

    #[test]
    fn filters_on_selects_by_relation() {
        let (_, q) = setup();
        let b = q.relations[1];
        assert_eq!(q.filters_on(b).count(), 1);
        assert_eq!(q.filters_on(q.relations[0]).count(), 0);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let (mut c, mut q) = setup();
        let lone = c.add_relation(Relation {
            name: "lone".into(),
            rows: 5,
            columns: vec![Column::new("k", 5, 8)],
        });
        q.relations.push(lone);
        assert!(q.validate(&c).unwrap_err().to_string().contains("disconnected"));
    }

    #[test]
    fn duplicate_pred_id_rejected() {
        let (c, mut q) = setup();
        q.filters[0].id = PredId(0);
        assert!(q.validate(&c).unwrap_err().to_string().contains("duplicate predicate id"));
    }

    #[test]
    fn unknown_epp_rejected() {
        let (c, mut q) = setup();
        q.epps.push(PredId(42));
        assert!(q.validate(&c).unwrap_err().to_string().contains("names no predicate"));
    }

    #[test]
    fn bad_filter_selectivity_rejected() {
        let (c, mut q) = setup();
        q.filters[0].selectivity = 1.5;
        assert!(q.validate(&c).unwrap_err().to_string().contains("out of range"));
    }

    /// A connected chain query of `n` relations (r0 ⋈ r1 ⋈ … ⋈ r{n-1}).
    fn chain_query(n: usize) -> (Catalog, Query) {
        let mut c = Catalog::new();
        let rels: Vec<RelId> = (0..n)
            .map(|i| {
                c.add_relation(Relation {
                    name: format!("r{i}"),
                    rows: 100,
                    columns: vec![Column::new("k", 100, 8)],
                })
            })
            .collect();
        let joins: Vec<JoinPredicate> = (1..n)
            .map(|i| JoinPredicate {
                id: PredId(i as u32 - 1),
                left: ColRef::new(rels[i - 1], 0),
                right: ColRef::new(rels[i], 0),
            })
            .collect();
        let q = Query {
            name: format!("chain{n}"),
            relations: rels,
            joins,
            filters: vec![],
            epps: vec![PredId(0)],
            group_by: vec![],
        };
        (c, q)
    }

    #[test]
    fn relation_count_boundary_is_enforced() {
        // MAX_RELATIONS is accepted; one more is a structured error, not a
        // multi-gigabyte DP-table allocation attempt downstream.
        let (c, q) = chain_query(MAX_RELATIONS);
        assert_eq!(q.validate(&c), Ok(()));
        let (c, q) = chain_query(MAX_RELATIONS + 1);
        let err = q.validate(&c).unwrap_err();
        assert!(err.to_string().contains("maximum supported is 20"), "{err}");
    }

    #[test]
    fn empty_relation_list_rejected() {
        let (c, mut q) = chain_query(2);
        q.relations.clear();
        q.joins.clear();
        q.epps.clear();
        assert!(q.validate(&c).unwrap_err().to_string().contains("no relations"));
    }

    #[test]
    fn joins_between_finds_cross_edges() {
        let (_, q) = setup();
        let l: HashSet<_> = [q.relations[0]].into_iter().collect();
        let r: HashSet<_> = [q.relations[1]].into_iter().collect();
        assert_eq!(q.joins_between(&l, &r).count(), 1);
        assert_eq!(q.joins_between(&l, &l).count(), 0);
    }
}
