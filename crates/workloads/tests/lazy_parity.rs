//! Discovery-level lazy/eager parity: every algorithm must produce a
//! bitwise-identical execution outcome whether its runtime is backed by an
//! eagerly compiled surface or a lazy anytime one.
//!
//! This is stricter than the surface-level equality tests in
//! `rqp-ess/tests/lazy_compile.rs`: plan *ids* are surface-relative (an
//! eager surface numbers plans in cell-index order, a lazy one in
//! flood-discovery order), so any id-order iteration or cross-surface id
//! reuse inside an algorithm shows up here as a cost or trace divergence.
//!
//! Each algorithm instance is deliberately **reused** across the eager and
//! lazy runtimes: the per-algorithm memo caches (SpillBound / AlignedBound
//! contour choices, PlanBouquet band plans) key on the runtime's surface
//! token, and reuse is exactly what regresses if that key is ever dropped
//! — a decision holding eager plan ids replayed against the smaller lazy
//! registry panics or silently executes the wrong plan.

use rqp_core::{AlignedBound, Discovery, NativeOptimizer, PlanBouquet, ReOptimizer, SpillBound};
use rqp_ess::EssConfig;
use rqp_workloads::Workload;

#[test]
fn every_algorithm_discovers_identically_on_lazy_and_eager_surfaces() {
    for (name, w, cfg) in [
        ("2D_Q91", Workload::q91(2).unwrap(), EssConfig::coarse(2)),
        ("3D_Q91", Workload::q91(3).unwrap(), EssConfig::coarse(3)),
        ("JOB_Q1a", Workload::job_q1a().unwrap(), EssConfig::coarse(3)),
    ] {
        let eager = w.runtime(cfg).unwrap();
        let cells = eager.grid().num_cells();
        for qa in [0, cells / 3, cells / 2, cells - 1] {
            for algo in [
                Box::new(NativeOptimizer) as Box<dyn Discovery>,
                Box::new(ReOptimizer::default()),
                Box::new(PlanBouquet::new()),
                Box::new(SpillBound::new()),
                Box::new(AlignedBound::new()),
            ] {
                let lazy = w.runtime_lazy(cfg).unwrap();
                let te = algo.discover(&eager, qa);
                let tl = algo.discover(&lazy, qa);
                assert_eq!(
                    te.total_cost.to_bits(),
                    tl.total_cost.to_bits(),
                    "{name} {} qa {qa}: eager cost {} vs lazy {} ({} vs {} executions)",
                    algo.name(),
                    te.total_cost,
                    tl.total_cost,
                    te.num_executions(),
                    tl.num_executions(),
                );
                assert_eq!(
                    te.num_executions(),
                    tl.num_executions(),
                    "{name} {} qa {qa}: execution counts must match",
                    algo.name(),
                );
                // Anytime invariant: a walk that terminates at the origin
                // must leave the upper bands uncompiled.
                if qa == 0 && lazy.num_bands() > 2 {
                    assert!(
                        lazy.bands_compiled() < lazy.num_bands(),
                        "{name} {}: origin discovery compiled all {} bands",
                        algo.name(),
                        lazy.num_bands(),
                    );
                }
            }
        }
    }
}
