//! Seeded random workload generation.
//!
//! The paper's suite fixes eleven TPC-DS instances; this module generates
//! *families* of random SPJ(-aggregate) workloads — chain, star and branch
//! join geometries over log-uniform table cardinalities — so the test suite
//! and benches can check that the MSO machinery holds beyond the curated
//! queries (every generated workload is deterministic in its seed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder, RqpResult};

use crate::Workload;

/// Join-graph geometry of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `r0 — r1 — r2 — …` (each relation joins the next).
    Chain,
    /// All relations join the first (a fact table with dimensions).
    Star,
    /// A random connected tree (each relation joins a random predecessor).
    Branch,
}

/// Parameters of a generated workload.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of relations (≥ 2).
    pub relations: usize,
    /// Number of error-prone joins (≤ relations - 1).
    pub epps: usize,
    /// Join-graph geometry.
    pub shape: Shape,
    /// Whether the query aggregates its result.
    pub grouped: bool,
    /// RNG seed (same seed ⇒ same workload).
    pub seed: u64,
}

impl SynthConfig {
    /// A chain query with every join error-prone.
    pub fn chain(relations: usize, seed: u64) -> Self {
        SynthConfig {
            relations,
            epps: relations.saturating_sub(1),
            shape: Shape::Chain,
            grouped: false,
            seed,
        }
    }

    /// A star query with every join error-prone.
    pub fn star(relations: usize, seed: u64) -> Self {
        SynthConfig {
            relations,
            epps: relations.saturating_sub(1),
            shape: Shape::Star,
            grouped: false,
            seed,
        }
    }
}

/// Generate a deterministic random workload.
///
/// # Errors
/// Propagates builder errors (impossible for the generated schema).
///
/// # Panics
/// Panics if `relations < 2` or `epps > relations - 1`.
pub fn synth_workload(cfg: SynthConfig) -> RqpResult<Workload> {
    assert!(cfg.relations >= 2, "need at least two relations");
    assert!(cfg.epps < cfg.relations, "at most one epp per join edge");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // log-uniform cardinalities: r0 is the fact table
    let mut rows: Vec<u64> = (0..cfg.relations)
        .map(|i| {
            let (lo, hi) = if i == 0 { (16.0, 19.0) } else { (7.0, 16.0) };
            (2f64).powf(rng.gen_range(lo..hi)) as u64
        })
        .collect();
    rows[0] = rows[0].max(rows.iter().copied().max().unwrap_or(2));

    let mut cb = CatalogBuilder::new();
    for (i, &r) in rows.iter().enumerate() {
        let key_ndv = (r / rng.gen_range(1..=8)).max(2);
        cb = cb.relation(
            RelationBuilder::new(format!("t{i}"), r)
                .indexed_column("pk", r.max(2), 8)
                .indexed_column("fk", key_ndv, 8)
                .column("attr", rng.gen_range(4..5000), 8)
                .build(),
        );
    }
    let catalog = cb.build();

    // tree edges: child i joins parent p(i)
    let parent = |i: usize, rng: &mut StdRng| -> usize {
        match cfg.shape {
            Shape::Chain => i - 1,
            Shape::Star => 0,
            Shape::Branch => rng.gen_range(0..i),
        }
    };

    let mut qb = QueryBuilder::new(&catalog, format!("synth_{}", cfg.seed));
    for i in 0..cfg.relations {
        qb = qb.table(&format!("t{i}"));
    }
    for i in 1..cfg.relations {
        let p = parent(i, &mut rng);
        let (pt, ct) = (format!("t{p}"), format!("t{i}"));
        // join the child's pk to a parent fk column (dimension lookups)
        if i <= cfg.epps {
            qb = qb.epp_join(&pt, "fk", &ct, "pk");
        } else {
            qb = qb.join(&pt, "fk", &ct, "pk");
        }
    }
    // a couple of random reliable filters
    let filters = rng.gen_range(1..=2.min(cfg.relations));
    for k in 0..filters {
        let i = (k * 7 + 1) % cfg.relations;
        let sel = 10f64.powf(rng.gen_range(-3.0..-0.3));
        qb = qb.filter(&format!("t{i}"), "attr", sel);
    }
    if cfg.grouped {
        qb = qb.group_by("t0", "attr");
    }
    let query = qb.build()?;
    Ok(Workload { catalog, query })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_core::{evaluate, sb_guarantee, SpillBound};
    use rqp_ess::EssConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = synth_workload(SynthConfig::chain(4, 9)).unwrap();
        let b = synth_workload(SynthConfig::chain(4, 9)).unwrap();
        assert_eq!(a.query.joins.len(), b.query.joins.len());
        assert_eq!(
            a.catalog.relation(a.query.relations[0]).rows,
            b.catalog.relation(b.query.relations[0]).rows
        );
        let c = synth_workload(SynthConfig::chain(4, 10)).unwrap();
        assert_ne!(
            a.catalog.relation(a.query.relations[1]).rows,
            c.catalog.relation(c.query.relations[1]).rows,
            "different seeds should differ (w.h.p.)"
        );
    }

    #[test]
    fn all_shapes_validate() {
        for shape in [Shape::Chain, Shape::Star, Shape::Branch] {
            for seed in 0..4 {
                let w = synth_workload(SynthConfig {
                    relations: 5,
                    epps: 3,
                    shape,
                    grouped: seed % 2 == 0,
                    seed,
                })
                .unwrap();
                assert_eq!(w.query.validate(&w.catalog), Ok(()), "{shape:?} seed {seed}");
                assert_eq!(w.query.dims(), 3);
            }
        }
    }

    #[test]
    fn spillbound_bound_holds_on_random_workloads() {
        // the guarantee is structural: it must hold on arbitrary schemas,
        // not just the curated suite
        for seed in 0..6 {
            let shape = [Shape::Chain, Shape::Star, Shape::Branch][seed % 3];
            let w = synth_workload(SynthConfig {
                relations: 4,
                epps: 2,
                shape,
                grouped: seed % 2 == 1,
                seed: seed as u64,
            })
            .unwrap();
            let rt = w.runtime(EssConfig { resolution: 8, ..Default::default() }).unwrap();
            let ev = evaluate(&rt, &SpillBound::new());
            let bound = 2.0 * sb_guarantee(2);
            assert!(
                ev.mso <= bound + 1e-9,
                "seed {seed} {shape:?}: MSOe {} exceeds {bound}",
                ev.mso
            );
        }
    }
}
