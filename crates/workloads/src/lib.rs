#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Benchmark workloads: TPC-DS-shaped and IMDB-shaped catalogs and the
//! paper's query suite.
//!
//! ```
//! use rqp_workloads::{BenchQuery, Workload};
//! use rqp_ess::EssConfig;
//!
//! let w = Workload::tpcds(BenchQuery::Q15_3D).unwrap();
//! let rt = w.runtime(EssConfig::coarse(w.query.dims())).unwrap();
//! assert_eq!(rt.dims(), 3);
//! ```

pub mod extended;
pub mod job;
pub mod session;
pub mod suite;
pub mod synth;
pub mod tpcds;

pub use extended::extended_suite;
pub use job::{imdb_catalog, job_q1a};
pub use session::{parse_session_file, SessionEntry};
pub use suite::{q91, BenchQuery};
pub use synth::{synth_workload, Shape, SynthConfig};
pub use tpcds::tpcds_catalog;

use rqp_catalog::{Catalog, Query, RqpError, RqpResult};
use rqp_core::RobustRuntime;
use rqp_ess::EssConfig;
use rqp_qplan::CostModel;

/// A self-contained workload: an owned catalog plus one query against it.
pub struct Workload {
    /// The catalog.
    pub catalog: Catalog,
    /// The query.
    pub query: Query,
}

impl Workload {
    /// A TPC-DS benchmark query.
    ///
    /// # Errors
    /// Propagates builder errors (impossible for the curated suite).
    pub fn tpcds(bq: BenchQuery) -> RqpResult<Workload> {
        let catalog = tpcds_catalog();
        let query = bq.build(&catalog)?;
        Ok(Workload { catalog, query })
    }

    /// TPC-DS Q91 at a chosen epp dimensionality (2..=6).
    ///
    /// # Errors
    /// Propagates builder errors (impossible for in-range `dims`).
    pub fn q91(dims: usize) -> RqpResult<Workload> {
        let catalog = tpcds_catalog();
        let query = q91(&catalog, dims)?;
        Ok(Workload { catalog, query })
    }

    /// JOB Q1a on the IMDB-shaped catalog.
    ///
    /// # Errors
    /// Propagates builder errors (impossible for the stock catalog).
    pub fn job_q1a() -> RqpResult<Workload> {
        let catalog = imdb_catalog();
        let query = job_q1a(&catalog)?;
        Ok(Workload { catalog, query })
    }

    /// Look a workload up by its CLI name: `JOB_Q1a`, the `{2..6}D_Q91`
    /// dimensionality sweep, or any [`BenchQuery`] name (all matched
    /// case-insensitively).
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] with an "unknown workload" message for
    /// unrecognized names.
    pub fn by_name(name: &str) -> RqpResult<Workload> {
        if name.eq_ignore_ascii_case("JOB_Q1a") {
            return Workload::job_q1a();
        }
        if let Some(d) = name.strip_suffix("D_Q91").and_then(|p| p.parse::<usize>().ok()) {
            if (2..=6).contains(&d) {
                return Workload::q91(d);
            }
        }
        for &bq in BenchQuery::all() {
            if bq.name().eq_ignore_ascii_case(name) {
                return Workload::tpcds(bq);
            }
        }
        Err(RqpError::Config(format!("unknown workload {name:?}")))
    }

    /// Compile a robust runtime for this workload with the default cost
    /// model.
    ///
    /// # Errors
    /// Propagates [`RobustRuntime::compile`] errors.
    pub fn runtime(&self, config: EssConfig) -> RqpResult<RobustRuntime<'_>> {
        RobustRuntime::compile(&self.catalog, &self.query, CostModel::default(), config)
    }

    /// Like [`Workload::runtime`], but against a lazy anytime surface:
    /// only the ladder anchors are costed up front and contour bands
    /// materialize as discovery pulls them.
    ///
    /// # Errors
    /// Propagates [`RobustRuntime::compile_lazy`] errors.
    pub fn runtime_lazy(&self, config: EssConfig) -> RqpResult<RobustRuntime<'_>> {
        RobustRuntime::compile_lazy(&self.catalog, &self.query, CostModel::default(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_core::{evaluate, Discovery, PlanBouquet, SpillBound};

    #[test]
    fn q15_end_to_end_spillbound_within_guarantee() {
        let w = Workload::tpcds(BenchQuery::Q15_3D).unwrap();
        let rt = w.runtime(EssConfig::coarse(3)).unwrap();
        let sb = SpillBound::new();
        let ev = evaluate(&rt, &sb);
        let bound = 2.0 * rqp_core::sb_guarantee(3);
        assert!(ev.mso <= bound, "MSOe {} exceeds band-adjusted bound {bound}", ev.mso);
        assert!(ev.aso >= 1.0);
        assert!(rt.ess().unwrap().posp.num_plans() >= 3, "expected plan diversity");
    }

    #[test]
    fn job_q1a_runtime_compiles_with_plan_diversity() {
        let w = Workload::job_q1a().unwrap();
        let rt = w.runtime(EssConfig::coarse(3)).unwrap();
        assert!(rt.ess().unwrap().posp.num_plans() >= 2);
        let t = SpillBound::new().discover(&rt, rt.grid().terminus());
        assert!(t.steps.last().unwrap().completed);
    }

    #[test]
    fn plan_bouquet_runs_on_a_star_query() {
        let w = Workload::tpcds(BenchQuery::Q7_4D).unwrap();
        let rt = w.runtime(EssConfig { resolution: 5, ..Default::default() }).unwrap();
        let pb = PlanBouquet::new();
        let t = pb.discover(&rt, rt.grid().num_cells() / 2);
        assert!(t.subopt() >= 1.0 - 1e-9);
    }
}
