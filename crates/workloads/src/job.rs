//! An IMDB-shaped catalog and the Join Order Benchmark's Q1a (§6.5).
//!
//! JOB was designed to break cardinality estimators; the paper evaluates
//! its algorithms on JOB after disabling the optimizer's implicit cyclic
//! join predicates (which would violate the selectivity-independence
//! assumption). The skeleton below is the acyclic Q1a join graph:
//! `company_type ⋈ movie_companies ⋈ title ⋈ movie_info_idx ⋈ info_type`.

use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder, RqpResult};

/// Build the IMDB-shaped catalog (cardinalities of the 2013 IMDB snapshot
/// JOB ships with).
pub fn imdb_catalog() -> Catalog {
    CatalogBuilder::new()
        .relation(
            RelationBuilder::new("company_type", 4)
                .indexed_column("ct_id", 4, 8)
                .column("ct_kind", 4, 16)
                .build(),
        )
        .relation(
            RelationBuilder::new("movie_companies", 2_609_129)
                .indexed_column("mc_movie_id", 2_331_601, 8)
                .indexed_column("mc_company_type_id", 2, 8)
                .indexed_column("mc_company_id", 234_997, 8)
                .column("mc_note", 100_000, 32)
                .build(),
        )
        .relation(
            RelationBuilder::new("title", 2_528_312)
                .indexed_column("t_id", 2_528_312, 8)
                .column("t_production_year", 150, 4)
                .column("t_kind_id", 7, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("movie_info_idx", 1_380_035)
                .indexed_column("mi_idx_movie_id", 459_925, 8)
                .indexed_column("mi_idx_info_type_id", 5, 8)
                .column("mi_idx_info", 100_000, 16)
                .build(),
        )
        .relation(
            RelationBuilder::new("info_type", 113)
                .indexed_column("it_id", 113, 8)
                .column("it_info", 113, 16)
                .build(),
        )
        .build()
}

/// JOB Q1a with three error-prone join predicates.
///
/// # Errors
/// Propagates builder errors (impossible against [`imdb_catalog`]).
pub fn job_q1a(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "JOB_Q1a")
        .table("company_type")
        .table("movie_companies")
        .table("title")
        .table("movie_info_idx")
        .table("info_type")
        .epp_join("movie_companies", "mc_movie_id", "title", "t_id")
        .epp_join("movie_info_idx", "mi_idx_movie_id", "title", "t_id")
        .epp_join("movie_info_idx", "mi_idx_info_type_id", "info_type", "it_id")
        .join("movie_companies", "mc_company_type_id", "company_type", "ct_id")
        .filter("company_type", "ct_kind", 0.25)
        .filter("info_type", "it_info", 0.0088)
        .filter("movie_companies", "mc_note", 0.03)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1a_validates_with_three_epps() {
        let c = imdb_catalog();
        let q = job_q1a(&c).unwrap();
        assert_eq!(q.validate(&c), Ok(()));
        assert_eq!(q.dims(), 3);
        assert_eq!(q.relations.len(), 5);
        assert_eq!(q.joins.len(), 4);
    }

    #[test]
    fn catalog_mirrors_imdb_scale() {
        let c = imdb_catalog();
        let t = c.relation(c.find_relation("title").unwrap());
        let ct = c.relation(c.find_relation("company_type").unwrap());
        assert!(t.rows > 2_000_000);
        assert_eq!(ct.rows, 4);
    }
}
