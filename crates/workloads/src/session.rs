//! Session workload files for the serving layer.
//!
//! A session file describes a stream of concurrent discovery sessions, one
//! group per line:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! 2D_Q91  sb  x8       # eight SpillBound sessions over 2D_Q91
//! 3D_Q15  ab           # one AlignedBound session
//! JOB_Q1a pb  x4
//! 2D_Q91  sb  qa=17 x2 # pin the actual-location cell
//! ```
//!
//! Each line is `QUERY ALGO [qa=CELL] [xCOUNT]`. The query token is any
//! name [`crate::Workload::by_name`] accepts; the algorithm token is
//! passed through verbatim (the serving layer resolves it, so the parser
//! does not depend on the algorithm set). `qa=CELL` pins the sessions'
//! actual-selectivity grid cell (default: the grid midpoint; the serving
//! layer refuses out-of-range cells with a structured error). `xCOUNT`
//! repeats the session; it defaults to 1 and must be at least 1.

use rqp_catalog::{RqpError, RqpResult};

/// One line of a session file: `count` sessions of `algo` over `query`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// Workload name (resolved later via [`crate::Workload::by_name`]).
    pub query: String,
    /// Discovery algorithm token (e.g. `sb`, `ab`, `pb`), not validated
    /// here.
    pub algo: String,
    /// How many identical sessions this line expands to.
    pub count: usize,
    /// Actual-location grid cell for these sessions (`None` = midpoint).
    /// Range is validated by the serving layer against the compiled
    /// surface, not here.
    pub qa: Option<usize>,
}

/// Parse a session file.
///
/// # Errors
/// Returns [`RqpError::Config`] (with the 1-based line number) on a
/// malformed line, a zero repeat count, or an empty file.
pub fn parse_session_file(text: &str) -> RqpResult<Vec<SessionEntry>> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut toks = line.split_whitespace();
        let (Some(query), Some(algo)) = (toks.next(), toks.next()) else {
            return Err(RqpError::Config(format!(
                "session file line {lineno}: expected `QUERY ALGO [qa=CELL] [xCOUNT]`, got {line:?}"
            )));
        };
        let mut count = 1usize;
        let mut qa = None;
        let mut seen_count = false;
        for tok in toks {
            if let Some(cell) = tok.strip_prefix("qa=") {
                if qa.is_some() {
                    return Err(RqpError::Config(format!(
                        "session file line {lineno}: duplicate qa= token"
                    )));
                }
                qa = Some(cell.parse::<usize>().map_err(|_| {
                    RqpError::Config(format!(
                        "session file line {lineno}: bad actual-location cell {tok:?} (use qa=17)"
                    ))
                })?);
            } else if let Some(n) = tok.strip_prefix('x') {
                if seen_count {
                    return Err(RqpError::Config(format!(
                        "session file line {lineno}: unexpected trailing token {tok:?}"
                    )));
                }
                count = n.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    RqpError::Config(format!(
                        "session file line {lineno}: bad repeat count {tok:?} (use x1, x8, …)"
                    ))
                })?;
                seen_count = true;
            } else {
                return Err(RqpError::Config(format!(
                    "session file line {lineno}: unexpected trailing token {tok:?}"
                )));
            }
        }
        entries.push(SessionEntry { query: query.to_string(), algo: algo.to_string(), count, qa });
    }
    if entries.is_empty() {
        return Err(RqpError::Config("session file defines no sessions".to_string()));
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, algo: &str, count: usize, qa: Option<usize>) -> SessionEntry {
        SessionEntry { query: query.into(), algo: algo.into(), count, qa }
    }

    #[test]
    fn parses_groups_comments_and_counts() {
        let text = "# header\n\n2D_Q91 sb x8   # eight\n3D_Q15 ab\nJOB_Q1a pb x4\n";
        let entries = parse_session_file(text).unwrap();
        assert_eq!(
            entries,
            vec![
                entry("2D_Q91", "sb", 8, None),
                entry("3D_Q15", "ab", 1, None),
                entry("JOB_Q1a", "pb", 4, None),
            ]
        );
        assert_eq!(entries.iter().map(|e| e.count).sum::<usize>(), 13);
    }

    #[test]
    fn parses_pinned_actual_locations() {
        let entries = parse_session_file("2D_Q91 sb qa=17 x2\n2D_Q91 ab x3 qa=0\n").unwrap();
        assert_eq!(
            entries,
            vec![entry("2D_Q91", "sb", 2, Some(17)), entry("2D_Q91", "ab", 3, Some(0))]
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = parse_session_file("2D_Q91\n").unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        let err = parse_session_file("2D_Q91 sb x0\n").unwrap_err().to_string();
        assert!(err.contains("bad repeat count"), "{err}");
        let err = parse_session_file("2D_Q91 sb 8\n").unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
        let err = parse_session_file("a b x2 extra\n").unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
        let err = parse_session_file("# only comments\n").unwrap_err().to_string();
        assert!(err.contains("no sessions"), "{err}");
        let err = parse_session_file("2D_Q91 sb qa=zero\n").unwrap_err().to_string();
        assert!(err.contains("actual-location"), "{err}");
        let err = parse_session_file("2D_Q91 sb qa=1 qa=2\n").unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
    }
}
