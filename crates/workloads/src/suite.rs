//! The benchmark query suite: SPJ skeletons of the paper's TPC-DS query
//! instances with their error-prone join predicates.
//!
//! The paper evaluates representative SPJ (select-project-join) queries
//! from TPC-DS with 4–10 relations and 2–6 error-prone join predicates,
//! named `xD_Qz` (x = epp count, z = TPC-DS query number). The skeletons
//! below reproduce each query's join graph geometry (chain / star /
//! branch) and its epp dimensionality; filter predicates carry
//! representative reliably-estimated selectivities. One simplification:
//! tables that TPC-DS joins under several aliases (e.g. three `date_dim`
//! roles in Q29) appear once, keeping the join graph acyclic — exactly the
//! regime the paper's selectivity-independence assumption targets.

use rqp_catalog::{Catalog, Query, QueryBuilder, RqpResult};

/// The paper's benchmark query instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum BenchQuery {
    /// TPC-DS Q15 with 3 epps.
    Q15_3D,
    /// TPC-DS Q96 with 3 epps.
    Q96_3D,
    /// TPC-DS Q7 with 4 epps.
    Q7_4D,
    /// TPC-DS Q26 with 4 epps.
    Q26_4D,
    /// TPC-DS Q27 with 4 epps.
    Q27_4D,
    /// TPC-DS Q91 with 4 epps.
    Q91_4D,
    /// TPC-DS Q19 with 5 epps.
    Q19_5D,
    /// TPC-DS Q29 with 5 epps.
    Q29_5D,
    /// TPC-DS Q84 with 5 epps.
    Q84_5D,
    /// TPC-DS Q18 with 6 epps.
    Q18_6D,
    /// TPC-DS Q91 with 6 epps.
    Q91_6D,
}

impl BenchQuery {
    /// Every instance, in the order the paper's figures list them.
    pub fn all() -> &'static [BenchQuery] {
        use BenchQuery::*;
        &[Q15_3D, Q96_3D, Q7_4D, Q26_4D, Q27_4D, Q91_4D, Q19_5D, Q29_5D, Q84_5D, Q18_6D, Q91_6D]
    }

    /// The `xD_Qz` display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchQuery::Q15_3D => "3D_Q15",
            BenchQuery::Q96_3D => "3D_Q96",
            BenchQuery::Q7_4D => "4D_Q7",
            BenchQuery::Q26_4D => "4D_Q26",
            BenchQuery::Q27_4D => "4D_Q27",
            BenchQuery::Q91_4D => "4D_Q91",
            BenchQuery::Q19_5D => "5D_Q19",
            BenchQuery::Q29_5D => "5D_Q29",
            BenchQuery::Q84_5D => "5D_Q84",
            BenchQuery::Q18_6D => "6D_Q18",
            BenchQuery::Q91_6D => "6D_Q91",
        }
    }

    /// Number of error-prone predicates.
    pub fn dims(&self) -> usize {
        match self {
            BenchQuery::Q15_3D | BenchQuery::Q96_3D => 3,
            BenchQuery::Q7_4D | BenchQuery::Q26_4D | BenchQuery::Q27_4D | BenchQuery::Q91_4D => 4,
            BenchQuery::Q19_5D | BenchQuery::Q29_5D | BenchQuery::Q84_5D => 5,
            BenchQuery::Q18_6D | BenchQuery::Q91_6D => 6,
        }
    }

    /// Build the query against the TPC-DS catalog.
    ///
    /// # Errors
    /// Propagates builder/validation errors (impossible for the curated
    /// suite against the stock TPC-DS catalog).
    pub fn build(&self, catalog: &Catalog) -> RqpResult<Query> {
        match self {
            BenchQuery::Q15_3D => q15(catalog),
            BenchQuery::Q96_3D => q96(catalog),
            BenchQuery::Q7_4D => q7(catalog),
            BenchQuery::Q26_4D => q26(catalog),
            BenchQuery::Q27_4D => q27(catalog),
            BenchQuery::Q91_4D => q91(catalog, 4),
            BenchQuery::Q19_5D => q19(catalog),
            BenchQuery::Q29_5D => q29(catalog),
            BenchQuery::Q84_5D => q84(catalog),
            BenchQuery::Q18_6D => q18(catalog),
            BenchQuery::Q91_6D => q91(catalog, 6),
        }
    }
}

fn q15(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "3D_Q15")
        .table("catalog_sales")
        .table("customer")
        .table("customer_address")
        .table("date_dim")
        .epp_join("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk")
        .epp_join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
        .epp_join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk")
        .filter("customer_address", "ca_state", 0.1)
        .filter("date_dim", "d_qoy", 0.25)
        .build()
}

fn q96(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "3D_Q96")
        .table("store_sales")
        .table("household_demographics")
        .table("time_dim")
        .table("store")
        .epp_join("store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk")
        .epp_join("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .filter("time_dim", "t_hour", 0.042)
        .filter("household_demographics", "hd_dep_count", 0.1)
        .build()
}

fn q7(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "4D_Q7")
        .table("store_sales")
        .table("customer_demographics")
        .table("date_dim")
        .table("item")
        .table("promotion")
        .epp_join("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .epp_join("store_sales", "ss_promo_sk", "promotion", "p_promo_sk")
        .filter("customer_demographics", "cd_gender", 0.5)
        .filter("customer_demographics", "cd_marital_status", 0.2)
        .filter("date_dim", "d_year", 0.005)
        .filter("promotion", "p_channel_email", 0.5)
        .build()
}

fn q26(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "4D_Q26")
        .table("catalog_sales")
        .table("customer_demographics")
        .table("date_dim")
        .table("item")
        .table("promotion")
        .epp_join("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .epp_join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("catalog_sales", "cs_item_sk", "item", "i_item_sk")
        .epp_join("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk")
        .filter("customer_demographics", "cd_gender", 0.5)
        .filter("customer_demographics", "cd_education_status", 0.14)
        .filter("date_dim", "d_year", 0.005)
        .build()
}

fn q27(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "4D_Q27")
        .table("store_sales")
        .table("customer_demographics")
        .table("date_dim")
        .table("store")
        .table("item")
        .epp_join("store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .filter("customer_demographics", "cd_gender", 0.5)
        .filter("date_dim", "d_year", 0.005)
        .filter("store", "s_state", 0.1)
        .build()
}

/// TPC-DS Q91 with `dims ∈ 2..=6` of its six join predicates error-prone
/// (the Fig. 9 dimensionality sweep; the 2-epp variant matches Fig. 7's
/// `Catalog⋈Date-Dim` / `Customer⋈Customer-Address` pair).
pub fn q91(c: &Catalog, dims: usize) -> RqpResult<Query> {
    assert!((2..=6).contains(&dims), "Q91 supports 2..=6 epps");
    let name: &str = match dims {
        2 => "2D_Q91",
        3 => "3D_Q91",
        4 => "4D_Q91",
        5 => "5D_Q91",
        _ => "6D_Q91",
    };
    let mut b = QueryBuilder::new(c, name)
        .table("call_center")
        .table("catalog_returns")
        .table("date_dim")
        .table("customer")
        .table("customer_demographics")
        .table("household_demographics")
        .table("customer_address");
    // epp order: the first `dims` of these six joins are error-prone
    let joins: [(&str, &str, &str, &str); 6] = [
        ("catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk"),
        ("customer", "c_current_addr_sk", "customer_address", "ca_address_sk"),
        ("catalog_returns", "cr_returning_customer_sk", "customer", "c_customer_sk"),
        ("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"),
        ("catalog_returns", "cr_call_center_sk", "call_center", "cc_call_center_sk"),
    ];
    for (i, (lr, lc, rr, rc)) in joins.iter().enumerate() {
        b = if i < dims { b.epp_join(lr, lc, rr, rc) } else { b.join(lr, lc, rr, rc) };
    }
    b.filter("customer_demographics", "cd_marital_status", 0.2)
        .filter("household_demographics", "hd_buy_potential", 0.17)
        .filter("date_dim", "d_moy", 0.083)
        .filter("customer_address", "ca_gmt_offset", 0.042)
        .build()
}

fn q19(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "5D_Q19")
        .table("store_sales")
        .table("date_dim")
        .table("item")
        .table("customer")
        .table("customer_address")
        .table("store")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .epp_join("store_sales", "ss_customer_sk", "customer", "c_customer_sk")
        .epp_join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .filter("item", "i_manufact_id", 0.001)
        .filter("date_dim", "d_moy", 0.083)
        .filter("date_dim", "d_year", 0.005)
        .build()
}

fn q29(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "5D_Q29")
        .table("store_sales")
        .table("store_returns")
        .table("catalog_sales")
        .table("date_dim")
        .table("item")
        .table("store")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .epp_join("store_returns", "sr_item_sk", "item", "i_item_sk")
        .epp_join("catalog_sales", "cs_item_sk", "item", "i_item_sk")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .filter("store_sales", "ss_quantity", 0.1)
        .filter("date_dim", "d_moy", 0.083)
        .build()
}

fn q84(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "5D_Q84")
        .table("customer")
        .table("customer_address")
        .table("customer_demographics")
        .table("household_demographics")
        .table("income_band")
        .table("store_returns")
        .epp_join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
        .epp_join("customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .epp_join("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk")
        .epp_join("household_demographics", "hd_income_band_sk", "income_band", "ib_income_band_sk")
        .epp_join("store_returns", "sr_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .filter("customer_address", "ca_city", 0.001)
        .filter("income_band", "ib_lower_bound", 0.05)
        .build()
}

fn q18(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "6D_Q18")
        .table("catalog_sales")
        .table("customer_demographics")
        .table("customer")
        .table("customer_address")
        .table("date_dim")
        .table("item")
        .table("household_demographics")
        .epp_join("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk")
        .epp_join("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk")
        .epp_join("customer", "c_current_addr_sk", "customer_address", "ca_address_sk")
        .epp_join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("catalog_sales", "cs_item_sk", "item", "i_item_sk")
        .epp_join("customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk")
        .filter("customer_demographics", "cd_gender", 0.5)
        .filter("customer_demographics", "cd_education_status", 0.14)
        .filter("date_dim", "d_year", 0.005)
        .filter("customer_address", "ca_state", 0.1)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::tpcds_catalog;

    #[test]
    fn every_bench_query_validates_with_declared_dims() {
        let c = tpcds_catalog();
        for &bq in BenchQuery::all() {
            let q = bq.build(&c).unwrap();
            assert_eq!(q.validate(&c), Ok(()), "{}", bq.name());
            assert_eq!(q.dims(), bq.dims(), "{}", bq.name());
            assert_eq!(q.name, bq.name());
            assert!(q.join_graph_connected(), "{}", bq.name());
        }
    }

    #[test]
    fn q91_dimensionality_sweep() {
        let c = tpcds_catalog();
        for d in 2..=6 {
            let q = q91(&c, d).unwrap();
            assert_eq!(q.dims(), d);
            assert_eq!(q.relations.len(), 7);
            assert_eq!(q.joins.len(), 6);
            assert_eq!(q.validate(&c), Ok(()));
        }
    }

    #[test]
    #[should_panic(expected = "supports 2..=6")]
    fn q91_rejects_out_of_range_dims() {
        let c = tpcds_catalog();
        let _ = q91(&c, 7);
    }

    #[test]
    fn join_graph_geometries_vary() {
        let c = tpcds_catalog();
        // Q7 is a pure star on store_sales; Q15 is a chain
        let q7 = BenchQuery::Q7_4D.build(&c).unwrap();
        let ss = c.find_relation("store_sales").unwrap();
        assert!(q7.joins.iter().all(|j| j.touches(ss)), "Q7 must be a star on store_sales");
        let q15 = BenchQuery::Q15_3D.build(&c).unwrap();
        let cs = c.find_relation("catalog_sales").unwrap();
        assert!(!q15.joins.iter().all(|j| j.touches(cs)), "Q15 is not a star");
    }

    #[test]
    fn relation_counts_span_four_to_seven() {
        let c = tpcds_catalog();
        let mut min = usize::MAX;
        let mut max = 0;
        for &bq in BenchQuery::all() {
            let q = bq.build(&c).unwrap();
            min = min.min(q.relations.len());
            max = max.max(q.relations.len());
        }
        assert!(min >= 4);
        assert!(max >= 7);
    }
}
