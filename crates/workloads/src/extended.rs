//! A secondary TPC-DS-shaped suite: grouped (aggregate) queries and
//! cross-channel shapes beyond the paper's eleven figure queries.
//!
//! The paper's evaluation uses SPJ cores; real TPC-DS queries aggregate
//! their join results. These skeletons exercise the aggregate-root plan
//! path (hash vs sorted aggregation above the SPJ core) and multi-fact
//! "channel" join shapes end to end, and back the schema-independence
//! checks of the test suite.

use rqp_catalog::{Catalog, Query, QueryBuilder, RqpResult};

/// The extended suite, in display order.
///
/// # Errors
/// Propagates builder errors (impossible against the stock catalog).
pub fn extended_suite(catalog: &Catalog) -> RqpResult<Vec<Query>> {
    Ok(vec![q3(catalog)?, q12(catalog)?, q43(catalog)?, q33(catalog)?, q65(catalog)?])
}

/// Q3-shaped: store sales by year for one manufacturer.
pub fn q3(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "X_Q3")
        .table("store_sales")
        .table("date_dim")
        .table("item")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .filter("item", "i_manufact_id", 0.001)
        .filter("date_dim", "d_moy", 0.083)
        .group_by("date_dim", "d_year")
        .build()
}

/// Q12-shaped: web sales by category over a date window.
pub fn q12(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "X_Q12")
        .table("web_sales")
        .table("item")
        .table("date_dim")
        .epp_join("web_sales", "ws_item_sk", "item", "i_item_sk")
        .epp_join("web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk")
        .filter("item", "i_category", 0.3)
        .filter("date_dim", "d_year", 0.005)
        .group_by("item", "i_category")
        .build()
}

/// Q43-shaped: store sales by store state.
pub fn q43(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "X_Q43")
        .table("store_sales")
        .table("date_dim")
        .table("store")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .filter("date_dim", "d_year", 0.005)
        .group_by("store", "s_state")
        .build()
}

/// Q33-shaped: a cross-channel star on `item` — store, catalog and web
/// sales joined through the shared dimension.
pub fn q33(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "X_Q33")
        .table("store_sales")
        .table("catalog_sales")
        .table("web_sales")
        .table("item")
        .table("date_dim")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .epp_join("catalog_sales", "cs_item_sk", "item", "i_item_sk")
        .epp_join("web_sales", "ws_item_sk", "item", "i_item_sk")
        .epp_join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk")
        .filter("item", "i_category", 0.1)
        .group_by("item", "i_manufact_id")
        .build()
}

/// Q65-shaped: store sales against item and store with a tight price band.
pub fn q65(c: &Catalog) -> RqpResult<Query> {
    QueryBuilder::new(c, "X_Q65")
        .table("store_sales")
        .table("item")
        .table("store")
        .epp_join("store_sales", "ss_item_sk", "item", "i_item_sk")
        .epp_join("store_sales", "ss_store_sk", "store", "s_store_sk")
        .filter("item", "i_current_price", 0.02)
        .group_by("store", "s_store_sk")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::tpcds_catalog;
    use rqp_core::{evaluate, sb_guarantee, Discovery, SpillBound};
    use rqp_ess::EssConfig;
    use rqp_optimizer::Optimizer;
    use rqp_qplan::{CostModel, PlanNode};

    #[test]
    fn extended_suite_validates_and_aggregates() {
        let c = tpcds_catalog();
        let suite = extended_suite(&c).unwrap();
        assert_eq!(suite.len(), 5);
        for q in &suite {
            assert_eq!(q.validate(&c), Ok(()), "{}", q.name);
            assert!(!q.group_by.is_empty(), "{} must aggregate", q.name);
            assert!(q.dims() >= 2);
        }
    }

    #[test]
    fn grouped_plans_carry_aggregate_roots() {
        let c = tpcds_catalog();
        for q in extended_suite(&c).unwrap() {
            let opt = Optimizer::new(&c, &q, CostModel::default());
            let loc = rqp_catalog::SelVector::from_values(&vec![1e-4; q.dims()]);
            let planned = opt.optimize(&loc);
            assert!(
                matches!(
                    planned.plan,
                    PlanNode::HashAggregate { .. } | PlanNode::SortAggregate { .. }
                ),
                "{}: root is {}",
                q.name,
                planned.plan.op_name()
            );
        }
    }

    #[test]
    fn sb_bound_holds_across_the_extended_suite() {
        let c = tpcds_catalog();
        for q in extended_suite(&c).unwrap() {
            let d = q.dims();
            let rt = rqp_core::RobustRuntime::compile(
                &c,
                &q,
                CostModel::default(),
                EssConfig { resolution: if d <= 2 { 10 } else { 6 }, ..Default::default() },
            )
            .unwrap();
            let ev = evaluate(&rt, &SpillBound::new());
            let bound = 2.0 * sb_guarantee(d);
            assert!(ev.mso <= bound + 1e-9, "{}: MSOe {} exceeds {bound}", q.name, ev.mso);
        }
    }

    #[test]
    fn cross_channel_star_discovers_each_channel_join() {
        let c = tpcds_catalog();
        let q = q33(&c).unwrap();
        let rt = rqp_core::RobustRuntime::compile(
            &c,
            &q,
            CostModel::default(),
            EssConfig { resolution: 5, ..Default::default() },
        )
        .unwrap();
        let sb = SpillBound::new();
        let t = sb.discover(&rt, rt.grid().terminus());
        assert!(t.steps.last().unwrap().completed);
        // at the terminus every channel join must be learnt or endgamed
        assert!(t.subopt() >= 1.0 - 1e-9);
    }
}
