//! A TPC-DS-shaped synthetic catalog at scale factor 100 (the paper's
//! "base size of 100 GB").
//!
//! MSO experiments depend only on the cost surface over the ESS, which the
//! cost model derives from catalog statistics — not from actual tuples — so
//! the catalog records the benchmark's official cardinalities at SF=100
//! together with representative NDVs, widths and key indexes.

use rqp_catalog::{Catalog, CatalogBuilder, RelationBuilder};

/// Build the TPC-DS-shaped catalog (SF = 100).
pub fn tpcds_catalog() -> Catalog {
    CatalogBuilder::new()
        .relation(
            RelationBuilder::new("store_sales", 288_000_000)
                .indexed_column("ss_sold_date_sk", 73_049, 8)
                .indexed_column("ss_sold_time_sk", 86_400, 8)
                .indexed_column("ss_item_sk", 204_000, 8)
                .indexed_column("ss_customer_sk", 2_000_000, 8)
                .indexed_column("ss_cdemo_sk", 1_920_800, 8)
                .indexed_column("ss_hdemo_sk", 7_200, 8)
                .indexed_column("ss_store_sk", 402, 8)
                .indexed_column("ss_promo_sk", 1_000, 8)
                .column("ss_quantity", 100, 4)
                .column("ss_sales_price", 20_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("store_returns", 28_800_000)
                .indexed_column("sr_returned_date_sk", 73_049, 8)
                .indexed_column("sr_item_sk", 204_000, 8)
                .indexed_column("sr_customer_sk", 2_000_000, 8)
                .indexed_column("sr_cdemo_sk", 1_920_800, 8)
                .indexed_column("sr_hdemo_sk", 7_200, 8)
                .indexed_column("sr_store_sk", 402, 8)
                .indexed_column("sr_ticket_number", 24_000_000, 8)
                .column("sr_return_amt", 100_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("catalog_sales", 144_000_000)
                .indexed_column("cs_sold_date_sk", 73_049, 8)
                .indexed_column("cs_item_sk", 204_000, 8)
                .indexed_column("cs_bill_customer_sk", 2_000_000, 8)
                .indexed_column("cs_bill_cdemo_sk", 1_920_800, 8)
                .indexed_column("cs_bill_hdemo_sk", 7_200, 8)
                .indexed_column("cs_promo_sk", 1_000, 8)
                .indexed_column("cs_call_center_sk", 30, 8)
                .column("cs_quantity", 100, 4)
                .column("cs_wholesale_cost", 10_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("catalog_returns", 14_400_000)
                .indexed_column("cr_returned_date_sk", 73_049, 8)
                .indexed_column("cr_item_sk", 204_000, 8)
                .indexed_column("cr_returning_customer_sk", 2_000_000, 8)
                .indexed_column("cr_call_center_sk", 30, 8)
                .column("cr_return_amount", 100_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("web_sales", 72_000_000)
                .indexed_column("ws_sold_date_sk", 73_049, 8)
                .indexed_column("ws_item_sk", 204_000, 8)
                .indexed_column("ws_bill_customer_sk", 2_000_000, 8)
                .column("ws_net_profit", 100_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("date_dim", 73_049)
                .indexed_column("d_date_sk", 73_049, 8)
                .column("d_year", 200, 4)
                .column("d_moy", 12, 4)
                .column("d_qoy", 4, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("time_dim", 86_400)
                .indexed_column("t_time_sk", 86_400, 8)
                .column("t_hour", 24, 4)
                .column("t_minute", 60, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("item", 204_000)
                .indexed_column("i_item_sk", 204_000, 8)
                .column("i_category", 10, 16)
                .column("i_manufact_id", 1_000, 4)
                .column("i_current_price", 10_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("customer", 2_000_000)
                .indexed_column("c_customer_sk", 2_000_000, 8)
                .indexed_column("c_current_addr_sk", 1_000_000, 8)
                .indexed_column("c_current_cdemo_sk", 1_920_800, 8)
                .indexed_column("c_current_hdemo_sk", 7_200, 8)
                .column("c_birth_year", 100, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("customer_address", 1_000_000)
                .indexed_column("ca_address_sk", 1_000_000, 8)
                .column("ca_state", 51, 4)
                .column("ca_gmt_offset", 24, 4)
                .column("ca_city", 20_000, 16)
                .build(),
        )
        .relation(
            RelationBuilder::new("customer_demographics", 1_920_800)
                .indexed_column("cd_demo_sk", 1_920_800, 8)
                .column("cd_gender", 2, 2)
                .column("cd_marital_status", 5, 2)
                .column("cd_education_status", 7, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("household_demographics", 7_200)
                .indexed_column("hd_demo_sk", 7_200, 8)
                .indexed_column("hd_income_band_sk", 20, 8)
                .column("hd_dep_count", 10, 4)
                .column("hd_buy_potential", 6, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("income_band", 20)
                .indexed_column("ib_income_band_sk", 20, 8)
                .column("ib_lower_bound", 20, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("store", 402)
                .indexed_column("s_store_sk", 402, 8)
                .column("s_state", 30, 4)
                .column("s_number_employees", 300, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("call_center", 30)
                .indexed_column("cc_call_center_sk", 30, 8)
                .column("cc_employees", 30, 4)
                .build(),
        )
        .relation(
            RelationBuilder::new("promotion", 1_000)
                .indexed_column("p_promo_sk", 1_000, 8)
                .column("p_channel_email", 2, 2)
                .build(),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_sixteen_tables() {
        let c = tpcds_catalog();
        assert_eq!(c.len(), 16);
        for name in [
            "store_sales",
            "store_returns",
            "catalog_sales",
            "catalog_returns",
            "web_sales",
            "date_dim",
            "time_dim",
            "item",
            "customer",
            "customer_address",
            "customer_demographics",
            "household_demographics",
            "income_band",
            "store",
            "call_center",
            "promotion",
        ] {
            assert!(c.find_relation(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn fact_tables_dwarf_dimensions() {
        let c = tpcds_catalog();
        let ss = c.relation(c.find_relation("store_sales").unwrap());
        let dd = c.relation(c.find_relation("date_dim").unwrap());
        assert!(ss.rows > 1000 * dd.rows);
        assert!(ss.pages() > dd.pages());
    }

    #[test]
    fn key_columns_are_indexed() {
        let c = tpcds_catalog();
        let cust = c.relation(c.find_relation("customer").unwrap());
        let idx = cust.column_index("c_customer_sk").unwrap();
        assert!(cust.columns[idx].indexed);
    }
}
