//! Token tree and item index: brace/paren/bracket nesting, item
//! boundaries (`fn` / `impl` / `mod` / `trait`), and per-function token
//! lists with scope depth.
//!
//! This is the structural layer between the lexer and the rule passes:
//! passes never re-scan text, they walk [`FileIndex::code`] (every
//! non-test token in the file) or [`Function::body`] (one function's
//! tokens with brace depth), so `#[cfg(test)]` exemption is *item*-scoped
//! — a test module in the middle of a file no longer exempts the real
//! code after it, which was the line-lexical v1 linter's worst blind spot.

use crate::lexer::{Tok, TokKind};

/// One node of the token tree.
#[derive(Debug)]
pub enum Tree {
    /// A leaf token.
    Tok(Tok),
    /// A delimited group (`{…}`, `(…)`, `[…]`).
    Group(Group),
}

/// A delimited token group.
#[derive(Debug)]
pub struct Group {
    /// Opening delimiter: `'{'`, `'('`, `'['` (or `'\0'` for the root).
    pub delim: char,
    /// Line of the opening delimiter.
    pub open_line: usize,
    /// Children in source order.
    pub items: Vec<Tree>,
}

/// Parse a flat token stream into a nesting tree rooted at a synthetic
/// delimiter-less group. Unbalanced input closes groups at end of file
/// rather than failing: the linter must degrade on code mid-edit.
pub fn parse(toks: Vec<Tok>) -> Group {
    let mut stack = vec![Group { delim: '\0', open_line: 0, items: Vec::new() }];
    for t in toks {
        match t.text.as_str() {
            "{" | "(" | "[" if t.kind == TokKind::Punct => {
                let delim = t.text.as_bytes()[0] as char;
                stack.push(Group { delim, open_line: t.line, items: Vec::new() });
            }
            "}" | ")" | "]" if t.kind == TokKind::Punct => {
                let want = match t.text.as_str() {
                    "}" => '{',
                    ")" => '(',
                    _ => '[',
                };
                if stack.len() > 1 && stack[stack.len() - 1].delim == want {
                    let done = match stack.pop() {
                        Some(g) => g,
                        None => continue,
                    };
                    if let Some(top) = stack.last_mut() {
                        top.items.push(Tree::Group(done));
                    }
                }
                // mismatched closer: drop it and keep going
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.items.push(Tree::Tok(t));
                }
            }
        }
    }
    // unbalanced opens: fold everything back into the root
    while stack.len() > 1 {
        let done = match stack.pop() {
            Some(g) => g,
            None => break,
        };
        if let Some(top) = stack.last_mut() {
            top.items.push(Tree::Group(done));
        }
    }
    stack.pop().unwrap_or(Group { delim: '\0', open_line: 0, items: Vec::new() })
}

/// One token of a flattened group, with its brace-nesting depth.
///
/// Delimiters are emitted as `Punct` tokens; an open brace carries the
/// depth *outside* it, tokens inside carry depth+1, and the matching
/// close brace carries the open's depth again — so "release everything
/// deeper than d" on a close brace is a single comparison.
#[derive(Debug, Clone)]
pub struct FlatTok {
    /// The token class.
    pub kind: TokKind,
    /// The token text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Brace-nesting depth (parens/brackets do not change it).
    pub depth: u32,
}

impl FlatTok {
    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is the exact identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

fn flatten_into(g: &Group, depth: u32, out: &mut Vec<FlatTok>) {
    for item in &g.items {
        match item {
            Tree::Tok(t) => {
                out.push(FlatTok { kind: t.kind, text: t.text.clone(), line: t.line, depth })
            }
            Tree::Group(sub) => {
                let (open, close) = match sub.delim {
                    '{' => ("{", "}"),
                    '(' => ("(", ")"),
                    _ => ("[", "]"),
                };
                let inner = if sub.delim == '{' { depth + 1 } else { depth };
                out.push(FlatTok {
                    kind: TokKind::Punct,
                    text: open.to_string(),
                    line: sub.open_line,
                    depth,
                });
                flatten_into(sub, inner, out);
                let end_line = out.last().map_or(sub.open_line, |t| t.line);
                out.push(FlatTok {
                    kind: TokKind::Punct,
                    text: close.to_string(),
                    line: end_line,
                    depth,
                });
            }
        }
    }
}

/// One function item found in a file.
#[derive(Debug)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_ty: Option<String>,
    /// Signature tokens between `fn` and the body (params flattened in).
    pub signature: Vec<FlatTok>,
    /// Flattened body tokens; depth 0 is the body's own scope.
    pub body: Vec<FlatTok>,
    /// Whether this function lives under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

/// A file's structural index: its functions and its non-test token soup.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Every function item, including those in nested modules.
    pub functions: Vec<Function>,
    /// Every token outside `#[cfg(test)]` items, in source order
    /// (attribute contents excluded). Group delimiters appear as puncts.
    pub code: Vec<FlatTok>,
}

/// Build the index for a file's source.
pub fn index(src: &str) -> FileIndex {
    let toks = crate::lexer::lex(&crate::lexer::mask(src));
    let root = parse(toks);
    let mut idx = FileIndex::default();
    scan(&root, None, false, &mut idx);
    idx
}

/// Whether an attribute group (`#[…]`'s bracket contents) gates its item
/// to test builds: `cfg(test)`, `cfg(any(test, …))`, `test`,
/// `tokio::test`, … — but *not* `cfg_attr(test, …)`, which only makes
/// other attributes conditional.
fn attr_is_test_gate(attr: &Group) -> bool {
    let mut idents = attr.items.iter().filter_map(|t| match t {
        Tree::Tok(t) if t.kind == TokKind::Ident => Some(t.text.as_str()),
        _ => None,
    });
    let Some(first) = idents.next() else { return false };
    match first {
        "cfg" => group_contains_ident(attr, "test"),
        "cfg_attr" => false,
        "test" => true,
        // path attributes like tokio::test — look at the trailing segment
        _ => attr.items.iter().rev().any(|t| match t {
            Tree::Tok(t) => t.is_ident("test"),
            Tree::Group(_) => false,
        }),
    }
}

fn group_contains_ident(g: &Group, id: &str) -> bool {
    g.items.iter().any(|t| match t {
        Tree::Tok(t) => t.is_ident(id),
        Tree::Group(sub) => group_contains_ident(sub, id),
    })
}

/// Extract the implemented type name from the tokens between `impl` (or
/// `trait`) and the body: the last path identifier at angle-bracket depth
/// zero before any `where` clause, preferring what follows `for`.
fn impl_type_name(toks: &[&Tok]) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    for t in toks {
        match t.text.as_str() {
            "<" if t.kind == TokKind::Punct => angle += 1,
            ">" if t.kind == TokKind::Punct => angle -= 1,
            ">>" if t.kind == TokKind::Punct => angle -= 2,
            "where" if t.kind == TokKind::Ident => break,
            "for" if t.kind == TokKind::Ident && angle == 0 => saw_for = true,
            _ if t.kind == TokKind::Ident && angle == 0 => {
                if saw_for {
                    after_for = Some(t.text.clone());
                } else {
                    last = Some(t.text.clone());
                }
            }
            _ => {}
        }
    }
    after_for.or(last)
}

/// Item keywords that consume a pending `#[…]` attribute.
fn is_item_keyword(id: &str) -> bool {
    matches!(
        id,
        "fn" | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "use"
            | "static"
            | "const"
            | "type"
            | "macro_rules"
    )
}

/// Visibility/qualifier tokens that sit between an attribute and its item.
fn is_item_qualifier(id: &str) -> bool {
    matches!(id, "pub" | "unsafe" | "async" | "extern" | "crate" | "default")
}

fn scan(g: &Group, impl_ty: Option<&str>, in_test: bool, idx: &mut FileIndex) {
    let items = &g.items;
    let mut i = 0usize;
    let mut pending_test = false;
    while i < items.len() {
        match &items[i] {
            Tree::Tok(t) if t.is_punct("#") => {
                // attribute: #[...] (outer) or #![...] (inner, ignored)
                let mut j = i + 1;
                let inner = matches!(&items.get(j), Some(Tree::Tok(t)) if t.is_punct("!"));
                if inner {
                    j += 1;
                }
                if let Some(Tree::Group(attr)) = items.get(j) {
                    if attr.delim == '[' {
                        if !inner && attr_is_test_gate(attr) {
                            pending_test = true;
                        }
                        i = j + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Tree::Tok(t) if t.is_ident("fn") => {
                let fn_line = t.line;
                let name = match items.get(i + 1) {
                    Some(Tree::Tok(n)) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                // scan forward for the body; a `;` (or end) first means a
                // declaration (trait method) — skip it. `,` does NOT end
                // the scan: generic return types (`MutexGuard<'_, T>`)
                // contain commas at this tree level.
                let mut j = i + 2;
                let mut signature: Vec<FlatTok> = Vec::new();
                let mut body: Option<&Group> = None;
                while j < items.len() {
                    match &items[j] {
                        Tree::Tok(t) if t.is_punct(";") => break,
                        Tree::Tok(t) => {
                            signature.push(FlatTok {
                                kind: t.kind,
                                text: t.text.clone(),
                                line: t.line,
                                depth: 0,
                            });
                            j += 1;
                        }
                        Tree::Group(sub) if sub.delim == '{' => {
                            body = Some(sub);
                            break;
                        }
                        Tree::Group(sub) => {
                            // params / default-value groups: flatten into
                            // the signature
                            flatten_into(sub, 0, &mut signature);
                            j += 1;
                        }
                    }
                }
                let is_test = in_test || pending_test;
                pending_test = false;
                if let Some(bg) = body {
                    let mut flat = Vec::new();
                    flatten_into(bg, 0, &mut flat);
                    if !is_test {
                        // the fn's own tokens join the file-wide code soup
                        idx.code.push(FlatTok {
                            kind: TokKind::Ident,
                            text: "fn".to_string(),
                            line: fn_line,
                            depth: 0,
                        });
                        idx.code.push(FlatTok {
                            kind: TokKind::Ident,
                            text: name.clone(),
                            line: fn_line,
                            depth: 0,
                        });
                        idx.code.extend(signature.iter().cloned());
                        idx.code.extend(flat.iter().cloned());
                    }
                    idx.functions.push(Function {
                        name,
                        line: fn_line,
                        impl_ty: impl_ty.map(str::to_owned),
                        signature,
                        body: flat,
                        is_test,
                    });
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            Tree::Tok(t) if t.is_ident("mod") || t.is_ident("impl") || t.is_ident("trait") => {
                let kw = t.text.clone();
                // gather header tokens up to the body group or `;`
                let mut j = i + 1;
                let mut header: Vec<&Tok> = Vec::new();
                let mut body: Option<&Group> = None;
                while j < items.len() {
                    match &items[j] {
                        Tree::Tok(t) if t.is_punct(";") => break,
                        Tree::Tok(t) => {
                            header.push(t);
                            j += 1;
                        }
                        Tree::Group(sub) if sub.delim == '{' => {
                            body = Some(sub);
                            break;
                        }
                        Tree::Group(_) => j += 1,
                    }
                }
                let gated = in_test || pending_test;
                pending_test = false;
                if let Some(bg) = body {
                    let ty = if kw == "mod" {
                        impl_ty.map(str::to_owned)
                    } else {
                        impl_type_name(&header)
                    };
                    // a test module named `tests` without the attribute is
                    // still a test module by strong convention
                    let named_tests = kw == "mod"
                        && header
                            .first()
                            .is_some_and(|t| t.is_ident("tests") || t.text.ends_with("_tests"));
                    scan(bg, ty.as_deref(), gated || named_tests, idx);
                }
                i = j + 1;
            }
            Tree::Tok(t)
                if pending_test && t.kind == TokKind::Ident && is_item_keyword(&t.text) =>
            {
                // a test-gated item we don't descend into (struct / enum /
                // use / const / …): skip it wholesale so its tokens stay
                // out of the code soup
                pending_test = false;
                let mut j = i + 1;
                while j < items.len() {
                    match &items[j] {
                        Tree::Tok(t) if t.is_punct(";") => {
                            j += 1;
                            break;
                        }
                        Tree::Group(sub) if sub.delim == '{' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            Tree::Tok(t) => {
                // visibility/qualifier idents keep a pending test attr
                // alive until its item keyword; anything else ends its
                // reach (the attr belonged to a non-scanned item)
                if !(t.kind == TokKind::Ident && is_item_qualifier(&t.text)) {
                    pending_test = false;
                }
                if !in_test {
                    idx.code.push(FlatTok {
                        kind: t.kind,
                        text: t.text.clone(),
                        line: t.line,
                        depth: 0,
                    });
                }
                i += 1;
            }
            Tree::Group(sub) => {
                // a paren group between a test attr and its item is
                // `pub(crate)`-style visibility: it keeps the gate alive
                if pending_test && sub.delim == '(' {
                    i += 1;
                    continue;
                }
                // non-item group at this level (const initializer, static
                // value, struct body, …): flatten into the code soup
                if !in_test && !pending_test {
                    let mut flat = Vec::new();
                    flatten_into(sub, 0, &mut flat);
                    idx.code.extend(flat);
                }
                pending_test = false;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_are_found_with_impl_context() {
        let src = "impl Shard {\n    fn lock(&self) -> MutexGuard<'_, u8> {\n        self.map.lock()\n    }\n}\nfn free() {}\n";
        let idx = index(src);
        let names: Vec<(String, Option<String>)> =
            idx.functions.iter().map(|f| (f.name.clone(), f.impl_ty.clone())).collect();
        assert_eq!(
            names,
            vec![("lock".to_string(), Some("Shard".to_string())), ("free".to_string(), None)]
        );
        assert!(idx.functions[0].signature.iter().any(|t| t.is_ident("MutexGuard")));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl fmt::Display for Violation { fn fmt(&self) {} }\nimpl<T: Clone> Registry<T> { fn get(&self) {} }\n";
        let idx = index(src);
        assert_eq!(idx.functions[0].impl_ty.as_deref(), Some("Violation"));
        assert_eq!(idx.functions[1].impl_ty.as_deref(), Some("Registry"));
    }

    #[test]
    fn cfg_test_is_item_scoped_not_file_trailing() {
        let src = "fn before() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let idx = index(src);
        let tests: Vec<(String, bool)> =
            idx.functions.iter().map(|f| (f.name.clone(), f.is_test)).collect();
        assert_eq!(
            tests,
            vec![
                ("before".to_string(), false),
                ("t".to_string(), true),
                ("after".to_string(), false)
            ]
        );
        // the code soup must still contain `after`'s tokens
        assert!(idx.code.iter().any(|t| t.is_ident("after")));
        assert!(!idx.code.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn pub_crate_visibility_keeps_the_test_gate() {
        let src = "#[cfg(test)]\npub(crate) mod test_support {\n    pub fn fixture() { x.unwrap(); }\n}\n";
        let idx = index(src);
        assert!(idx.functions[0].is_test);
        assert!(!idx.code.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn cfg_attr_does_not_gate_an_item() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn kept() {}\n";
        let idx = index(src);
        assert!(!idx.functions[0].is_test);
    }

    #[test]
    fn test_attribute_gates_a_function() {
        let src = "#[test]\nfn t() {}\nfn real() {}\n";
        let idx = index(src);
        assert!(idx.functions[0].is_test);
        assert!(!idx.functions[1].is_test);
    }

    #[test]
    fn body_depth_tracks_braces() {
        let src = "fn f() { if x { inner(); } tail(); }\n";
        let f = &index(src).functions[0];
        let inner = f.body.iter().find(|t| t.is_ident("inner")).map(|t| t.depth);
        let tail = f.body.iter().find(|t| t.is_ident("tail")).map(|t| t.depth);
        assert_eq!(inner, Some(1));
        assert_eq!(tail, Some(0));
    }
}
