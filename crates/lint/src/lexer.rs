//! The lexer front end: comment/string masking plus a line-tracking
//! tokenizer over the masked source.
//!
//! Masking runs first and is byte-preserving (masked bytes become spaces,
//! newlines survive), so every token the tokenizer produces carries the
//! 1-based line number of the original source. Delimiting quotes survive
//! masking, so string and char literals appear in the token stream as
//! opaque `Str`/`Char` tokens — rules can see *that* a literal sits at a
//! call site without ever matching its contents.

/// Token classes the rule passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `cost_a`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`); produced so char-literal detection stays exact.
    Lifetime,
    /// A (masked) string literal, raw or not, including byte strings.
    Str,
    /// A (masked) char literal.
    Char,
    /// A numeric literal (`3`, `1.0`, `0x2545`, `1e-5`, `2.0f64`).
    Num,
    /// Punctuation; multi-byte operators (`==`, `::`, `->`, …) are one token.
    Punct,
}

/// One lexed token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token text (for `Str`/`Char`, just the delimiters).
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is the exact identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Mask comments, string/char literal *contents* and doc text out of the
/// source, byte for byte (masked bytes become spaces), so rule patterns
/// only ever match real code. Delimiting quotes survive as code so the
/// tokenizer can still see where a literal starts.
pub fn mask(src: &str) -> String {
    mask_impl(src, false)
}

/// Like [`mask`], but comments survive: used for scanning
/// `// rqp-lint: allow(…)` directives, which live in comments but must not
/// be picked up out of string literals (e.g. linter test sources).
pub fn mask_strings(src: &str) -> String {
    mask_impl(src, true)
}

fn mask_impl(src: &str, keep_comments: bool) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    if keep_comments {
                        out[i] = b[i];
                    }
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b'
                if {
                    // raw (byte) string: r"…", r#"…"#, br#"…"#
                    let mut j = i + 1;
                    if c == b'b' && j < b.len() && b[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r'))
                        && j < b.len()
                        && b[j] == b'"'
                        && (hashes > 0 || b[j] == b'"')
                } =>
            {
                let mut j = i + 1;
                if c == b'b' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                out[j] = b'"';
                j += 1; // past the opening quote
                'raw: while j < b.len() {
                    if b[j] == b'\n' {
                        out[j] = b'\n';
                    }
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < b.len() && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out[j] = b'"';
                            j = k;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                out[i] = b'"';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if b[i] == b'\\' {
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out[i] = b'"';
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // char literal vs lifetime: a literal closes with ' within
                // a few bytes; a lifetime never closes. An escaped literal
                // (`'\''`, `'\u{41}'`) must search *past* the escaped
                // character, or the escaped quote is mistaken for the close.
                let close = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    (i + 3..b.len().min(i + 12)).find(|&k| b[k] == b'\'')
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(k) = close {
                    out[i] = b'\'';
                    out[k] = b'\'';
                    i = k + 1;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            _ => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Multi-byte operators lexed as single tokens, longest first.
const MULTI_PUNCT: [&str; 18] = [
    "::", "==", "!=", "<=", ">=", "=>", "->", "..", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=",
    "<<", ">>",
];

/// Tokenize a *masked* source (see [`mask`]) into a flat token stream with
/// line numbers.
pub fn lex(masked: &str) -> Vec<Tok> {
    let b = masked.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'"' => {
                // masked string literal: contents are spaces, delimiters survive
                let start = line;
                let mut j = i + 1;
                while j < b.len() && b[j] != b'"' {
                    if b[j] == b'\n' {
                        line += 1;
                    }
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Str, text: "\"\"".to_string(), line: start });
                i = (j + 1).min(b.len());
            }
            b'\'' => {
                // masked char literal closes with '; a lifetime never does
                let close = (i + 1..b.len().min(i + 12)).find(|&k| b[k] == b'\'');
                match close {
                    Some(k) if !(i + 1 < b.len() && is_ident_byte(b[i + 1]) && k > i + 2) => {
                        toks.push(Tok { kind: TokKind::Char, text: "''".to_string(), line });
                        i = k + 1;
                    }
                    _ => {
                        // lifetime: ' plus the following identifier
                        let mut j = i + 1;
                        while j < b.len() && is_ident_byte(b[j]) {
                            j += 1;
                        }
                        toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: masked[i..j].to_string(),
                            line,
                        });
                        i = j;
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() && (is_ident_byte(b[j]) || b[j] == b'.') {
                    if b[j] == b'.' {
                        // `0..n` is a range, not a fraction
                        if j + 1 < b.len() && b[j + 1] == b'.' {
                            break;
                        }
                        // `x.method()` after a number would be odd; accept
                        // digits only after the dot
                        if j + 1 < b.len() && !b[j + 1].is_ascii_digit() {
                            break;
                        }
                    }
                    // exponent sign: 1e-5 / 2.5E+8
                    if (b[j] == b'e' || b[j] == b'E')
                        && j + 1 < b.len()
                        && (b[j + 1] == b'-' || b[j + 1] == b'+')
                        && j + 2 < b.len()
                        && b[j + 2].is_ascii_digit()
                    {
                        j += 2;
                    }
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Num, text: masked[i..j].to_string(), line });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_byte(b[j]) {
                    j += 1;
                }
                toks.push(Tok { kind: TokKind::Ident, text: masked[i..j].to_string(), line });
                i = j;
            }
            _ => {
                let two = if i + 1 < b.len() { &masked[i..i + 2] } else { "" };
                if let Some(&op) = MULTI_PUNCT.iter().find(|&&op| op == two) {
                    toks.push(Tok { kind: TokKind::Punct, text: op.to_string(), line });
                    i += 2;
                } else {
                    toks.push(Tok { kind: TokKind::Punct, text: (c as char).to_string(), line });
                    i += 1;
                }
            }
        }
    }
    toks
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_src(src: &str) -> Vec<Tok> {
        lex(&mask(src))
    }

    #[test]
    fn masking_hides_comments_and_strings() {
        let src = "let a = 1; // x.unwrap()\nlet s = \"panic!\";\n/* todo! */ let c = 'x';\n";
        let m = mask(src);
        assert!(!m.contains(".unwrap()"));
        assert!(!m.contains("panic!"));
        assert!(!m.contains("todo!"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let s = \""));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let s = r#\"x.unwrap() panic!\"#; y.unwrap()";
        let m = mask(src);
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let src = "/* outer /* inner panic! */ still.unwrap() */ real_code()";
        let m = mask(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains(".unwrap()"));
        assert!(m.contains("real_code()"));
    }

    #[test]
    fn escaped_char_literals_close_correctly() {
        // '\'' and '"' both contain a quote character; the masker must not
        // treat the contained quote as a delimiter.
        let src = "let a = '\\''; let b = '\"'; x.unwrap()";
        let toks = lex_src(src);
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 2, "{toks:?}");
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
        // no stray Str token from the contained double quote
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex_src("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 0);
    }

    #[test]
    fn lines_survive_masking_and_lexing() {
        let toks = lex_src("a\n\nb // comment\nc");
        let lines: Vec<(String, usize)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(lines, vec![("a".to_string(), 1), ("b".to_string(), 3), ("c".to_string(), 4)]);
    }

    #[test]
    fn multibyte_operators_are_single_tokens() {
        let toks = lex_src("a == b != c :: d -> e => f");
        let ops: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Punct).map(|t| t.text.as_str()).collect();
        assert_eq!(ops, vec!["==", "!=", "::", "->", "=>"]);
    }

    #[test]
    fn numbers_lex_with_fraction_and_exponent() {
        let toks = lex_src("1.0 0x2545F4914F6CDD1D 1e-5 0..n 2.0f64");
        let nums: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, vec!["1.0", "0x2545F4914F6CDD1D", "1e-5", "0", "2.0f64"]);
    }
}
