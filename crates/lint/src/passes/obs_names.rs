//! `obs-names`: metric, event and span names at `rqp_obs` call sites must
//! be constants from `crates/obs/src/names.rs`, never inline literals, so
//! series names cannot drift between producers and readers.
//!
//! The token tree makes raw strings (`r#"…"#`) and multi-line calls
//! visible — both were blind spots of the line-lexical v1 rule.

use super::{is_seq, FileCtx, Finding};
use crate::lexer::TokKind;
use crate::Rule;

/// Methods whose first argument is a series name (called with a `.`).
const NAME_METHODS: [&str; 5] = ["counter", "gauge", "histogram", "span", "record_span"];

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.test_like || ctx.obs_crate {
        return;
    }
    let code = &ctx.index.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let method_site = NAME_METHODS.contains(&name) && i > 0 && code[i - 1].is_punct(".");
        let labeled_site = name == "labeled";
        let event_site = name == "Event" && is_seq(code, i, &["Event", "::", "new"]);
        let (call, arg_at) = if method_site || labeled_site {
            (name.to_string(), i + 1)
        } else if event_site {
            ("Event::new".to_string(), i + 3)
        } else {
            continue;
        };
        let open = code.get(arg_at).is_some_and(|n| n.is_punct("("));
        let literal_arg = code.get(arg_at + 1).is_some_and(|n| n.kind == TokKind::Str);
        if open && literal_arg {
            out.push(Finding {
                rule: Rule::ObsNames,
                line: t.line,
                message: format!(
                    "inline name literal at `{call}(…)` (declare it in crates/obs/src/names.rs)"
                ),
            });
        }
    }
}
