//! `lock-order` and `guard-across-blocking`: the concurrency rule family.
//!
//! Both rules share one flow-insensitive scan per function that tracks
//! which mutex guards are live at each token:
//!
//! * an acquisition while other guards are held adds an edge
//!   `held → acquired` to the crate's **lock acquisition graph**; a cycle
//!   in that graph is a potential deadlock (`lock-order`, deny). The graph
//!   is exportable as DOT via `rqp lint --lock-graph`.
//! * a **blocking call** (`.wait()`, `recv`, `accept`, file/socket IO,
//!   `sleep`, thread `join()`) while a guard is held stalls every peer of
//!   that mutex (`guard-across-blocking`, deny) — unless the wait is on
//!   the guard's *own* condvar (`cv.wait(guard)`), which is the condvar
//!   protocol itself and releases the lock while parked.
//!
//! Lock identity: `.lock()` receivers resolve to `Type::field` where
//! possible (`self.map.lock()` in `impl Shard` → `Shard::map`); calls to
//! crate-local wrapper fns returning `MutexGuard` (`shard.lock()`,
//! `inner.lock_state()`) resolve through the pooled wrapper registry.
//! Unresolvable receivers get their own split node — splitting can only
//! *miss* cycles, never invent them.

use super::{matching_close, receiver_chain, CrateCtx, FileCtx, Finding};
use crate::lexer::TokKind;
use crate::tree::{FlatTok, Function};
use crate::Rule;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Blocking calls (matched behind a `.`); `wait`/`wait_timeout` get the
/// own-condvar exemption, `join` must have empty args (thread join, not
/// `str::join`), `read` must have non-empty args (socket/file read, not
/// `RwLock::read()`).
const BLOCKING: [&str; 12] = [
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "sleep",
];

/// `std::fs` free functions that hit the disk (matched behind `fs::`).
const FS_BLOCKING: [&str; 8] = [
    "remove_file",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "write",
    "rename",
    "copy",
    "read_to_string",
];

/// One acquisition-order edge: `from` was held when `to` was acquired.
#[derive(Debug, Clone)]
pub struct Edge {
    /// The already-held lock.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Workspace-relative file of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

/// A per-crate lock acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Deduplicated edges (first site wins), insertion order.
    pub edges: Vec<Edge>,
    /// Every acquired lock, including ones never nested under another
    /// (so the DOT export shows the crate's full lock inventory).
    acquired: BTreeSet<String>,
}

impl LockGraph {
    /// Record a lock acquisition (a graph node, with or without edges).
    pub fn add_node(&mut self, id: &str) {
        self.acquired.insert(id.to_string());
    }

    /// Record an acquisition-order edge (keeping the first site per pair).
    pub fn add_edge(&mut self, from: String, to: String, file: &str, line: usize) {
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return;
        }
        self.edges.push(Edge { from, to, file: file.to_string(), line });
    }

    /// Every lock acquired or named by an edge, sorted.
    pub fn nodes(&self) -> BTreeSet<&str> {
        self.acquired
            .iter()
            .map(String::as_str)
            .chain(self.edges.iter().flat_map(|e| [e.from.as_str(), e.to.as_str()]))
            .collect()
    }

    fn adjacency(&self) -> BTreeMap<&str, Vec<&Edge>> {
        let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
        let mut sorted: Vec<&Edge> = self.edges.iter().collect();
        sorted.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        for e in sorted {
            adj.entry(&e.from).or_default().push(e);
        }
        adj
    }

    /// Deterministic list of cycles, each as the edge path that closes it.
    /// At most one cycle is reported per participating node set.
    pub fn cycles(&self) -> Vec<Vec<&Edge>> {
        let adj = self.adjacency();
        let mut sorted: Vec<&Edge> = self.edges.iter().collect();
        sorted.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        let mut reported: BTreeSet<&str> = BTreeSet::new();
        let mut out = Vec::new();
        for e in sorted {
            if reported.contains(e.from.as_str()) || reported.contains(e.to.as_str()) {
                continue;
            }
            if let Some(back) = path(&adj, &e.to, &e.from) {
                let mut cycle = vec![e];
                cycle.extend(back);
                for edge in &cycle {
                    reported.insert(&edge.from);
                    reported.insert(&edge.to);
                }
                out.push(cycle);
            }
        }
        out
    }

    /// Render the graph as GraphViz DOT, edges labeled with their site.
    pub fn to_dot(&self) -> String {
        let mut sorted: Vec<&Edge> = self.edges.iter().collect();
        sorted.sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
        let mut s = String::from("digraph lock_order {\n    rankdir=LR;\n");
        for n in self.nodes() {
            s.push_str(&format!("    \"{n}\";\n"));
        }
        for e in sorted {
            s.push_str(&format!(
                "    \"{}\" -> \"{}\" [label=\"{}:{}\"];\n",
                e.from, e.to, e.file, e.line
            ));
        }
        s.push_str("}\n");
        s
    }
}

/// Shortest edge path `from → … → to` (BFS over sorted adjacency).
fn path<'g>(adj: &BTreeMap<&str, Vec<&'g Edge>>, from: &str, to: &str) -> Option<Vec<&'g Edge>> {
    let mut prev: BTreeMap<&str, &'g Edge> = BTreeMap::new();
    let mut queue = VecDeque::from([from.to_string()]);
    let mut seen: BTreeSet<String> = BTreeSet::from([from.to_string()]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut chain = Vec::new();
            let mut cur = to.to_string();
            while cur != from {
                let e = prev.get(cur.as_str())?;
                chain.push(*e);
                cur = e.from.clone();
            }
            chain.reverse();
            return Some(chain);
        }
        for e in adj.get(n.as_str()).into_iter().flatten() {
            if seen.insert(e.to.clone()) {
                prev.insert(&e.to, e);
                queue.push_back(e.to.clone());
            }
        }
    }
    None
}

/// Cycle findings for a crate graph, each anchored at its first edge's
/// site; `(file, finding)` pairs because a cycle's edges can span files.
pub fn cycle_violations(graph: &LockGraph) -> Vec<(String, Finding)> {
    graph
        .cycles()
        .iter()
        .map(|cycle| {
            let first = cycle[0];
            let ring: Vec<&str> = cycle
                .iter()
                .map(|e| e.from.as_str())
                .chain(std::iter::once(cycle[0].from.as_str()))
                .collect();
            let sites: Vec<String> = cycle
                .iter()
                .map(|e| format!("`{} -> {}` at {}:{}", e.from, e.to, e.file, e.line))
                .collect();
            (
                first.file.clone(),
                Finding {
                    rule: Rule::LockOrder,
                    line: first.line,
                    message: format!(
                        "lock-order cycle {} — acquisition edges: {} \
                         (establish one global order or narrow a guard's scope)",
                        ring.join(" -> "),
                        sites.join(", ")
                    ),
                },
            )
        })
        .collect()
}

#[derive(Debug)]
struct Held {
    id: String,
    binding: Option<String>,
    depth: u32,
}

/// Run the lock scan over a file: feeds `graph` with acquisition-order
/// edges and `out` with guard-across-blocking findings.
pub(crate) fn analyze_file(
    ctx: &FileCtx<'_>,
    krate: &CrateCtx,
    graph: &mut LockGraph,
    out: &mut Vec<Finding>,
) {
    if ctx.test_like {
        return;
    }
    for f in &ctx.index.functions {
        if f.is_test {
            continue;
        }
        scan_function(f, ctx.path, krate, graph, out);
    }
}

/// Resolve the lock id acquired by `recv.M(…)` (`dot` = index of the `.`).
fn resolve_lock_id(
    body: &[FlatTok],
    dot: usize,
    method: &str,
    f: &Function,
    krate: &CrateCtx,
) -> String {
    let chain = receiver_chain(body, dot);
    let recv_last = chain.first().map(String::as_str).unwrap_or("?");
    // `self.M()`: the enclosing impl's own wrapper
    if chain.len() == 1 && recv_last == "self" {
        if let Some(id) = krate.wrappers.get(&(f.impl_ty.clone(), method.to_string())) {
            return id.clone();
        }
    }
    // receiver-name ↔ wrapper-type match: `shard.lock()` → `Shard::map`
    for ((ty, name), id) in &krate.wrappers {
        if name == method {
            if let Some(ty) = ty {
                if ty.eq_ignore_ascii_case(recv_last) {
                    return id.clone();
                }
            }
        }
    }
    if method != "lock" {
        // a wrapper called through an untyped receiver: unique name wins
        let candidates: Vec<&String> = krate
            .wrappers
            .iter()
            .filter(|((_, name), _)| name == method)
            .map(|(_, id)| id)
            .collect();
        if candidates.len() == 1 {
            return candidates[0].clone();
        }
        return format!("{recv_last}.{method}");
    }
    // direct `.lock()` on a mutex field: `self.<field>.lock()` → Type::field
    if chain.last().map(String::as_str) == Some("self") && chain.len() >= 2 {
        if let Some(ty) = &f.impl_ty {
            return format!("{ty}::{recv_last}");
        }
    }
    recv_last.to_string()
}

/// Whether `M` names a crate lock wrapper (any impl).
fn is_wrapper(method: &str, krate: &CrateCtx) -> bool {
    krate.wrappers.keys().any(|(_, name)| name == method)
}

fn scan_function(
    f: &Function,
    file: &str,
    krate: &CrateCtx,
    graph: &mut LockGraph,
    out: &mut Vec<Finding>,
) {
    let body = &f.body;
    let mut held: Vec<Held> = Vec::new();
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if t.is_punct(";") {
            // statement end: temporaries (un-bound guards) drop here
            held.retain(|h| h.binding.is_some());
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            held.retain(|h| h.depth <= t.depth);
            stmt_start = i + 1;
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        let next_open = body.get(i + 1).is_some_and(|n| n.is_punct("("));
        // explicit release
        if name == "drop" && next_open && body.get(i + 3).is_some_and(|n| n.is_punct(")")) {
            if let Some(arg) = body.get(i + 2) {
                held.retain(|h| h.binding.as_deref() != Some(arg.text.as_str()));
            }
            i += 1;
            continue;
        }
        let prev_dot = i > 0 && body[i - 1].is_punct(".");
        let prev_path = i >= 2 && body[i - 1].is_punct("::");
        // condvar wait: exempt when parking on a held guard's own condvar
        if prev_dot && (name == "wait" || name == "wait_timeout") && next_open {
            let first_arg = body.get(i + 2).map(|a| a.text.as_str()).unwrap_or("");
            let own = held.iter().any(|h| h.binding.as_deref() == Some(first_arg));
            if !own {
                for h in &held {
                    out.push(Finding {
                        rule: Rule::GuardAcrossBlocking,
                        line: t.line,
                        message: format!(
                            "`{}` guard held across `.{name}(…)` on a foreign condvar \
                             (the lock stays held while parked; wait on the guard's own \
                             condvar or drop it first)",
                            h.id
                        ),
                    });
                }
            }
            i += 1;
            continue;
        }
        // blocking calls under a held guard
        let blocking = (prev_dot && BLOCKING.contains(&name))
            || (prev_path
                && (name == "sleep"
                    || (body[i - 2].is_ident("fs") && FS_BLOCKING.contains(&name))))
            || (prev_dot
                && name == "join"
                && next_open
                && body.get(i + 2).is_some_and(|n| n.is_punct(")")))
            || (prev_dot
                && name == "read"
                && next_open
                && !body.get(i + 2).is_some_and(|n| n.is_punct(")")));
        if blocking && next_open {
            for h in &held {
                out.push(Finding {
                    rule: Rule::GuardAcrossBlocking,
                    line: t.line,
                    message: format!(
                        "`{}` guard held across blocking `{name}(…)` \
                         (every peer of that mutex stalls; move the IO outside the guard)",
                        h.id
                    ),
                });
            }
            i += 1;
            continue;
        }
        // acquisition: direct `.lock()` or a crate wrapper returning a guard
        let acquires = prev_dot
            && next_open
            && body.get(i + 2).is_some_and(|n| n.is_punct(")"))
            && (name == "lock" || is_wrapper(name, krate));
        if acquires {
            let id = resolve_lock_id(body, i - 1, name, f, krate);
            graph.add_node(&id);
            for h in &held {
                if h.id != id {
                    graph.add_edge(h.id.clone(), id.clone(), file, t.line);
                }
            }
            // adapter chains (`.unwrap_or_else(PoisonError::into_inner)`)
            // still yield the guard; any other continuation consumes it
            // within the statement (a temporary)
            let mut after = i + 3;
            loop {
                let adapter = body.get(after).is_some_and(|n| n.is_punct("."))
                    && body.get(after + 1).is_some_and(|n| {
                        n.is_ident("unwrap_or_else") || n.is_ident("unwrap") || n.is_ident("expect")
                    })
                    && body.get(after + 2).is_some_and(|n| n.is_punct("("));
                if !adapter {
                    break;
                }
                after = matching_close(body, after + 2) + 1;
            }
            let at_stmt_end = body.get(after).is_some_and(|n| n.is_punct(";"));
            let binding = if at_stmt_end {
                let stmt = &body[stmt_start..i];
                if stmt.first().is_some_and(|s| s.is_ident("let")) {
                    let mut b = 1usize;
                    if stmt.get(b).is_some_and(|s| s.is_ident("mut")) {
                        b += 1;
                    }
                    match (stmt.get(b), stmt.get(b + 1)) {
                        (Some(bind), Some(eq))
                            if eq.is_punct("=")
                                && bind.kind == TokKind::Ident
                                && bind.text != "_" =>
                        {
                            Some(bind.text.clone())
                        }
                        _ => None,
                    }
                } else {
                    None
                }
            } else {
                None
            };
            held.push(Held { id, binding, depth: t.depth });
            i += 1;
            continue;
        }
        i += 1;
    }
}
