//! The rule passes and the contexts they share.
//!
//! Each pass is a function from a [`FileCtx`] (one file's token tree plus
//! its path classification) to [`Finding`]s. Crate-wide knowledge that a
//! single file cannot see — lock *wrapper* functions, fallible functions —
//! is pooled into a [`CrateCtx`] before any pass runs, so e.g. a
//! `shard.lock()` call in `registry.rs` resolves to the `Shard::map` mutex
//! even though the wrapper body lives in another item.

pub mod determinism;
pub mod float_eq;
pub mod locks;
pub mod no_panic;
pub mod obs_names;
pub mod raii_span;
pub mod swallowed_result;

use crate::tree::{FileIndex, FlatTok, Function};
use crate::Rule;
use std::collections::{HashMap, HashSet};

/// One rule finding, before file attribution and `allow` filtering.
#[derive(Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-file context shared by every pass.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Test/bench/example code: exempt from most rules.
    pub test_like: bool,
    /// A crate whose compile path must be replayable (L4).
    pub deterministic: bool,
    /// `crates/obs` itself: exempt from obs-names (it defines the names).
    pub obs_crate: bool,
    /// The file's token tree index.
    pub index: &'a FileIndex,
}

/// Crate-wide knowledge pooled across files before the passes run.
#[derive(Debug, Default)]
pub struct CrateCtx {
    /// Lock wrapper functions — fns returning a `MutexGuard` whose body
    /// acquires `self.<field>.lock()` — keyed by `(impl type, fn name)`,
    /// mapped to the canonical lock id (`Type::field`) they acquire.
    pub wrappers: HashMap<(Option<String>, String), String>,
    /// Names of functions in this crate returning `RqpResult`/`io::Result`.
    pub result_fns: HashSet<String>,
}

impl CrateCtx {
    /// Pool wrapper and fallible-fn registries from every file of a crate.
    pub fn collect<'a>(indexes: impl Iterator<Item = &'a FileIndex>) -> CrateCtx {
        let mut ctx = CrateCtx::default();
        for idx in indexes {
            for f in &idx.functions {
                if f.is_test {
                    continue;
                }
                if returns_guard(f) {
                    if let Some(field) = self_locked_field(&f.body) {
                        let ty = f.impl_ty.clone().unwrap_or_else(|| "?".to_string());
                        ctx.wrappers
                            .insert((f.impl_ty.clone(), f.name.clone()), format!("{ty}::{field}"));
                    }
                }
                if returns_result(f) {
                    ctx.result_fns.insert(f.name.clone());
                }
            }
        }
        ctx
    }
}

/// Whether a function's signature returns a mutex guard.
fn returns_guard(f: &Function) -> bool {
    let mut after_arrow = false;
    f.signature.iter().any(|t| {
        if t.is_punct("->") {
            after_arrow = true;
        }
        after_arrow && t.is_ident("MutexGuard")
    })
}

/// Whether a function's signature returns `RqpResult<…>` or `io::Result<…>`.
fn returns_result(f: &Function) -> bool {
    let mut after_arrow = false;
    for (i, t) in f.signature.iter().enumerate() {
        if t.is_punct("->") {
            after_arrow = true;
        }
        if !after_arrow {
            continue;
        }
        if t.is_ident("RqpResult") {
            return true;
        }
        if t.is_ident("Result")
            && i >= 2
            && f.signature[i - 1].is_punct("::")
            && f.signature[i - 2].is_ident("io")
        {
            return true;
        }
    }
    false
}

/// The `self.<field>.lock()` receiver field in a wrapper body, if any.
fn self_locked_field(body: &[FlatTok]) -> Option<String> {
    for i in 0..body.len().saturating_sub(5) {
        if body[i].is_ident("self")
            && body[i + 1].is_punct(".")
            && body[i + 3].is_punct(".")
            && body[i + 4].is_ident("lock")
            && body[i + 5].is_punct("(")
        {
            return Some(body[i + 2].text.clone());
        }
    }
    None
}

/// Whether `toks[i..]` matches the token texts in `pat`.
pub fn is_seq(toks: &[FlatTok], i: usize, pat: &[&str]) -> bool {
    pat.len() <= toks.len().saturating_sub(i)
        && pat.iter().enumerate().all(|(k, p)| toks[i + k].text == *p)
}

/// The identifier chain of a call receiver, nearest-first: for
/// `self.map.lock()` with `dot` at the final `.`, returns
/// `["map", "self"]`.
pub fn receiver_chain(toks: &[FlatTok], dot: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 || !(toks[j].is_punct(".") || toks[j].is_punct("::")) {
            break;
        }
        let prev = &toks[j - 1];
        if prev.kind == crate::lexer::TokKind::Ident {
            chain.push(prev.text.clone());
            if j < 2 {
                break;
            }
            j -= 2;
        } else if prev.is_punct(")") || prev.is_punct("]") {
            // a call/index in the chain: skip the balanced group and keep
            // the method name as the chain element
            let close_txt = &prev.text;
            let open_txt = if close_txt == ")" { "(" } else { "[" };
            let mut depth = 1i32;
            let mut k = j - 1;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].text == *close_txt {
                    depth += 1;
                } else if toks[k].text == open_txt {
                    depth -= 1;
                }
            }
            if k == 0 {
                break;
            }
            if toks[k - 1].kind == crate::lexer::TokKind::Ident {
                chain.push(toks[k - 1].text.clone());
                if k < 2 {
                    break;
                }
                j = k - 2;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    chain
}

/// Index of the `)` matching the `(` at `open` (same nesting level), or
/// the slice end on unbalanced input.
pub fn matching_close(toks: &[FlatTok], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}
