//! `raii-span`: span/timer guard discipline (warn severity).
//!
//! Trace accounting relies on RAII: a [`SpanGuard`] records its duration
//! and restores its parent on drop, so guards must nest LIFO. This pass
//! flags three anti-patterns inside one function:
//!
//! * a span guard bound to `_` — it drops immediately and measures
//!   nothing;
//! * explicit `drop(..)` of span guards out of LIFO order — the parent
//!   span closes while a child is still open, corrupting trace nesting;
//! * a `record_span(NAME, ..)` twin of a live `span(NAME)` guard — the
//!   same phase is accounted twice under one name.

use super::{matching_close, FileCtx, Finding};
use crate::lexer::TokKind;
use crate::tree::FlatTok;
use crate::Rule;

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.test_like {
        return;
    }
    for f in &ctx.index.functions {
        if f.is_test {
            continue;
        }
        scan_body(&f.body, out);
    }
}

#[derive(Debug)]
struct LiveSpan {
    binding: String,
    name_key: String,
    depth: u32,
}

/// The name key of a span call's first argument: the last identifier of
/// the argument path (`names::SPAN_SESSION` → `SPAN_SESSION`), or
/// `"<literal>"` for an inline string (obs-names flags those separately).
fn name_key(body: &[FlatTok], open: usize) -> String {
    let close = matching_close(body, open);
    let mut key = "<literal>".to_string();
    for t in &body[open + 1..close] {
        if t.is_punct(",") {
            break;
        }
        if t.kind == TokKind::Ident {
            key = t.text.clone();
        }
    }
    key
}

fn scan_body(body: &[FlatTok], out: &mut Vec<Finding>) {
    let mut live: Vec<LiveSpan> = Vec::new();
    let mut opened_keys: Vec<String> = Vec::new();
    let mut stmt_start = 0usize;
    for i in 0..body.len() {
        let t = &body[i];
        if t.is_punct(";") || t.is_punct("{") {
            stmt_start = i + 1;
            continue;
        }
        if t.is_punct("}") {
            live.retain(|s| s.depth <= t.depth);
            stmt_start = i + 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        // span guard opened: `let [mut] NAME = … .span(KEY …)`
        if t.text == "span"
            && i > 0
            && body[i - 1].is_punct(".")
            && body.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let key = name_key(body, i + 1);
            opened_keys.push(key.clone());
            let stmt = &body[stmt_start..i];
            if stmt.first().is_some_and(|s| s.is_ident("let")) {
                let mut b = 1usize;
                if stmt.get(b).is_some_and(|s| s.is_ident("mut")) {
                    b += 1;
                }
                if let Some(bind) = stmt.get(b) {
                    if bind.is_ident("_") {
                        out.push(Finding {
                            rule: Rule::RaiiSpan,
                            line: t.line,
                            message: "span guard bound to `_` drops immediately and measures \
                                      nothing (bind it `_g`-style for the scope)"
                                .to_string(),
                        });
                    } else if stmt.get(b + 1).is_some_and(|s| s.is_punct("=")) {
                        live.push(LiveSpan {
                            binding: bind.text.clone(),
                            name_key: key,
                            depth: t.depth,
                        });
                    }
                }
            }
            continue;
        }
        // record_span twin of a guard this function already opened
        if t.text == "record_span"
            && i > 0
            && body[i - 1].is_punct(".")
            && body.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let key = name_key(body, i + 1);
            if key != "<literal>" && opened_keys.contains(&key) {
                out.push(Finding {
                    rule: Rule::RaiiSpan,
                    line: t.line,
                    message: format!(
                        "`record_span({key}, …)` duplicates a span guard opened under the \
                         same name in this function (the phase is accounted twice)"
                    ),
                });
            }
            continue;
        }
        // explicit drop: must be the innermost live span guard
        if t.text == "drop"
            && body.get(i + 1).is_some_and(|n| n.is_punct("("))
            && body.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let Some(arg) = body.get(i + 2) else { continue };
            if let Some(pos) = live.iter().position(|s| s.binding == arg.text) {
                if pos != live.len() - 1 {
                    let inner = &live[live.len() - 1];
                    out.push(Finding {
                        rule: Rule::RaiiSpan,
                        line: t.line,
                        message: format!(
                            "span guard `{}` dropped while inner span `{}` ({}) is still \
                             open — drops must be LIFO to keep trace nesting correct",
                            arg.text, inner.binding, inner.name_key
                        ),
                    });
                }
                live.remove(pos);
            }
        }
    }
}
