//! `determinism`: no wall clocks or ambient randomness in the
//! deterministic crates (`ess`, `core`, `qplan`).
//!
//! Compilation and discovery must be replayable; `crates/chaos` is the
//! designated owner of seeded pseudo-randomness and is outside this rule.

use super::{is_seq, FileCtx, Finding};
use crate::Rule;

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.deterministic {
        return;
    }
    let code = &ctx.index.code;
    for (i, t) in code.iter().enumerate() {
        let msg = if is_seq(code, i, &["std", "::", "time"]) {
            "wall-clock access in a deterministic crate (route timing through rqp_obs)"
        } else if t.is_ident("thread_rng") || is_seq(code, i, &["rand", "::", "random"]) {
            "ambient RNG in a deterministic crate (use a seeded `StdRng`)"
        } else {
            continue;
        };
        out.push(Finding { rule: Rule::Determinism, line: t.line, message: msg.to_string() });
    }
}
