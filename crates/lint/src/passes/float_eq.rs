//! `float-eq`: no raw `==`/`!=` on cost or selectivity expressions;
//! comparisons go through `rqp_qplan::cost_eq`/`cost_cmp`.
//!
//! Operands are gathered by walking the token stream outward from the
//! comparison (balanced through call/index groups), so multi-line
//! comparisons — invisible to the line-lexical v1 rule — are analyzed
//! like any other.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;
use crate::tree::FlatTok;
use crate::Rule;

/// Words that mark an operand as a cost/selectivity expression.
const COST_WORDS: [&str; 10] =
    ["cost", "sel", "sels", "selectivity", "budget", "lambda", "penalty", "spent", "mso", "subopt"];

/// Statement/expression keywords that terminate an operand walk.
const STOP_KEYWORDS: [&str; 12] = [
    "if", "else", "while", "for", "let", "match", "return", "in", "as", "move", "break", "continue",
];

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.test_like {
        return;
    }
    let code = &ctx.index.code;
    for (i, t) in code.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let lhs = operand_left(code, i);
        let rhs = operand_right(code, i);
        if is_exempt(&lhs) || is_exempt(&rhs) {
            continue;
        }
        if is_costlike(&lhs) || is_costlike(&rhs) {
            out.push(Finding {
                rule: Rule::FloatEq,
                line: t.line,
                message: format!(
                    "raw `{}` on a cost/selectivity expression \
                     (use rqp_qplan::cost_eq / cost_cmp)",
                    t.text
                ),
            });
        }
    }
}

/// Whether a token may extend an operand chain at group depth zero.
fn chain_tok(t: &FlatTok) -> bool {
    match t.kind {
        TokKind::Ident => !STOP_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Num => true,
        TokKind::Punct => matches!(t.text.as_str(), "." | "::" | "-"),
        _ => false,
    }
}

/// Operand tokens left of the comparison at `cmp`, in source order.
fn operand_left(code: &[FlatTok], cmp: usize) -> Vec<&FlatTok> {
    let mut toks = Vec::new();
    let mut depth = 0i32;
    let mut j = cmp;
    while j > 0 {
        j -= 1;
        let t = &code[j];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && !chain_tok(t) {
            break;
        }
        toks.push(t);
    }
    toks.reverse();
    toks
}

/// Operand tokens right of the comparison at `cmp`, in source order.
fn operand_right(code: &[FlatTok], cmp: usize) -> Vec<&FlatTok> {
    let mut toks = Vec::new();
    let mut depth = 0i32;
    let mut j = cmp + 1;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && !chain_tok(t) {
            break;
        }
        toks.push(t);
        j += 1;
    }
    toks
}

/// Comparisons that look cost-like but are fine: `.len()` counts are
/// integers however the field is named, and a site already routed through
/// the epsilon helpers (`cost_cmp(..) != Ordering::Greater`) is the
/// approved idiom, not a violation.
fn is_exempt(operand: &[&FlatTok]) -> bool {
    operand.iter().any(|t| {
        t.is_ident("cost_cmp")
            || t.is_ident("cost_eq")
            || t.is_ident("total_cmp")
            || t.is_ident("Ordering")
    }) || operand
        .windows(3)
        .any(|w| w[0].is_ident("len") && w[1].is_punct("(") && w[2].is_punct(")"))
}

fn is_costlike(operand: &[&FlatTok]) -> bool {
    for (k, t) in operand.iter().enumerate() {
        match t.kind {
            TokKind::Num => {
                // a float literal: `1.0`, `2.5e8`, `3.0f64`
                let b = t.text.as_bytes();
                if (1..b.len().saturating_sub(1))
                    .any(|i| b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit())
                {
                    return true;
                }
            }
            TokKind::Ident => {
                // `f64::EPSILON`-style constants
                if t.text == "f64" && operand.get(k + 1).is_some_and(|n| n.is_punct("::")) {
                    return true;
                }
                let lower = t.text.to_ascii_lowercase();
                if lower.split('_').any(|w| COST_WORDS.contains(&w)) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}
