//! `no-panic`: no panicking constructs in library code.
//!
//! Discovery runs inside a long-lived process; programmer errors degrade
//! to `debug_assert!` plus a PCM-safe fallback instead of aborting. Token
//! matching (rather than substring matching) means `unwrap_or_else`,
//! identifiers containing `panic`, and literals spelling `.unwrap()` can
//! never false-positive.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;
use crate::Rule;

pub(crate) fn run(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.test_like {
        return;
    }
    let code = &ctx.index.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].is_punct(".");
        let next_open = code.get(i + 1).is_some_and(|n| n.is_punct("("));
        let msg = match t.text.as_str() {
            "unwrap"
                if prev_dot && next_open && code.get(i + 2).is_some_and(|n| n.is_punct(")")) =>
            {
                "`.unwrap()` in library code (use `?`, `let-else` or a fallback)"
            }
            "expect" if prev_dot && next_open => {
                "`.expect(...)` in library code (use `?`, `let-else` or a fallback)"
            }
            "panic" if code.get(i + 1).is_some_and(|n| n.is_punct("!")) => {
                "`panic!` in library code (use `debug_assert!` + a PCM-safe fallback)"
            }
            "todo" if code.get(i + 1).is_some_and(|n| n.is_punct("!")) => "`todo!` in library code",
            "unimplemented" if code.get(i + 1).is_some_and(|n| n.is_punct("!")) => {
                "`unimplemented!` in library code"
            }
            _ => continue,
        };
        out.push(Finding { rule: Rule::NoPanic, line: t.line, message: msg.to_string() });
    }
}
