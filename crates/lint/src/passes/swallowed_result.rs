//! `swallowed-result`: a `let _ =` or `;`-dropped `RqpResult`/`io::Result`
//! outside tests silently discards an error the serving tier needs to
//! account for.
//!
//! A call is fallible when its method name is a known `io::Result`
//! producer, when it is a path-qualified `fs::` operation, or when the
//! crate itself defines a function by that name returning `RqpResult` or
//! `io::Result` (pooled in [`CrateCtx`](super::CrateCtx)). The result is
//! "swallowed" only when the call's value dies at the statement end: a
//! `?`, a `return`, an assignment to a real binding, or any continued
//! method chain (`.is_err()`, `.ok()`, `.map_err(..)`) all count as
//! handling.

use super::{matching_close, CrateCtx, FileCtx, Finding};
use crate::lexer::TokKind;
use crate::tree::FlatTok;
use crate::Rule;

/// Method names returning `io::Result` (called with a `.`).
const IO_METHODS: [&str; 13] = [
    "write_all",
    "flush",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "set_nonblocking",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "sync_all",
    "sync_data",
    "send",
    "recv",
];

/// `std::fs` free functions (matched only behind a `fs::` path).
const FS_FNS: [&str; 8] = [
    "remove_file",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "write",
    "rename",
    "copy",
    "set_permissions",
];

pub(crate) fn run(ctx: &FileCtx<'_>, krate: &CrateCtx, out: &mut Vec<Finding>) {
    if ctx.test_like {
        return;
    }
    for f in &ctx.index.functions {
        if f.is_test {
            continue;
        }
        scan_body(&f.body, krate, out);
    }
}

fn scan_body(body: &[FlatTok], krate: &CrateCtx, out: &mut Vec<Finding>) {
    let mut stmt_start = 0usize;
    for i in 0..body.len() {
        let t = &body[i];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            stmt_start = i + 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let method = IO_METHODS.contains(&name) && i > 0 && body[i - 1].is_punct(".");
        let fs_fn = FS_FNS.contains(&name)
            && i >= 2
            && body[i - 1].is_punct("::")
            && body[i - 2].is_ident("fs");
        let crate_fn = krate.result_fns.contains(name);
        if !(method || fs_fn || crate_fn) {
            continue;
        }
        if !body.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let close = matching_close(body, i + 1);
        // the result is only dropped when the call's value dies at the
        // statement end; a continued chain, `?`, etc. is handling
        if !body.get(close + 1).is_some_and(|n| n.is_punct(";")) {
            continue;
        }
        let stmt = &body[stmt_start..=close];
        let kind = if method || fs_fn { "io::Result" } else { "Result" };
        match classify(stmt) {
            StmtKind::LetUnderscore => out.push(Finding {
                rule: Rule::SwallowedResult,
                line: t.line,
                message: format!(
                    "`let _ =` swallows the {kind} of `{name}(…)` \
                     (handle the error or count it in a metric)"
                ),
            }),
            StmtKind::BareDrop => out.push(Finding {
                rule: Rule::SwallowedResult,
                line: t.line,
                message: format!(
                    "{kind} of `{name}(…)` dropped by `;` \
                     (handle the error or count it in a metric)"
                ),
            }),
            StmtKind::Consumed => {}
        }
    }
}

enum StmtKind {
    LetUnderscore,
    BareDrop,
    Consumed,
}

fn classify(stmt: &[FlatTok]) -> StmtKind {
    if stmt.len() >= 3 && stmt[0].is_ident("let") && stmt[1].is_ident("_") && stmt[2].is_punct("=")
    {
        return StmtKind::LetUnderscore;
    }
    if stmt.first().is_some_and(|t| t.is_ident("let")) {
        return StmtKind::Consumed;
    }
    let consumed = stmt.iter().any(|t| {
        t.is_punct("=")
            || t.is_punct("?")
            || (t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "return" | "break" | "match" | "if" | "while"))
    });
    if consumed {
        StmtKind::Consumed
    } else {
        StmtKind::BareDrop
    }
}
