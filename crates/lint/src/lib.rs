#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! `rqp-lint`: the workspace invariant linter.
//!
//! Four rules, each tied to an invariant the paper's guarantees depend on
//! (see DESIGN.md, "Static analysis"):
//!
//! * **L1 `no-panic`** — library code must not contain `.unwrap()`,
//!   `.expect(…)`, `panic!`, `todo!` or `unimplemented!`. Discovery runs
//!   inside a long-lived process; programmer errors degrade to
//!   `debug_assert!` plus a PCM-safe fallback instead of aborting.
//! * **L2 `float-eq`** — no raw `==`/`!=` on cost or selectivity
//!   expressions; comparisons go through `rqp_qplan::cost_eq`/`cost_cmp`.
//! * **L3 `obs-names`** — metric, event and span names at `rqp_obs` call
//!   sites (including `Tracer::span` / `Tracer::record_span`) must be
//!   constants from `crates/obs/src/names.rs`, never inline string
//!   literals, so series names cannot drift between producers and readers.
//! * **L4 `determinism`** — the deterministic crates (`ess`, `core`,
//!   `qplan`) must not read wall clocks or ambient randomness
//!   (`std::time`, `thread_rng`, `rand::random`): compilation and
//!   discovery must be replayable. `crates/chaos` is the designated
//!   owner of seeded pseudo-randomness (its `SplitMix64` drives fault
//!   schedules) and is deliberately outside this rule.
//!
//! Test modules (`#[cfg(test)]`), `tests/`, `benches/`, `examples/` and
//! the `crates/bench` harness are exempt. A single site can be waived with
//! a `// rqp-lint: allow(<rule>)` comment on the offending line or the
//! line above it.
//!
//! The scanner is a hand-rolled lexical pass (comments, strings and char
//! literals are masked before matching), deliberately dependency-free.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L1: no panicking constructs in library code.
    NoPanic,
    /// L2: no raw float equality on cost/selectivity expressions.
    FloatEq,
    /// L3: metric/event/span names must come from `rqp_obs::names`.
    ObsNames,
    /// L4: no wall clocks or ambient randomness in deterministic crates.
    Determinism,
}

impl Rule {
    /// Stable rule identifier, as used in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::ObsNames => "obs-names",
            Rule::Determinism => "determinism",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{}: {}", self.rule, self.file, self.line, self.message)
    }
}

/// Mask comments, string/char literal *contents* and doc text out of the
/// source, byte for byte (masked bytes become spaces), so rule patterns
/// only ever match real code. Delimiting quotes survive as code so rules
/// can still see where a literal starts.
fn code_mask(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if i + 1 < b.len() && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b'
                if {
                    // raw (byte) string: r"…", r#"…"#, br#"…"#
                    let mut j = i + 1;
                    if c == b'b' && j < b.len() && b[j] == b'r' {
                        j += 1;
                    }
                    let mut hashes = 0usize;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    (c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r'))
                        && j < b.len()
                        && b[j] == b'"'
                        && (hashes > 0 || b[j] == b'"')
                } =>
            {
                let mut j = i + 1;
                if c == b'b' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                out[j] = b'"';
                j += 1; // past the opening quote
                'raw: while j < b.len() {
                    if b[j] == b'\n' {
                        out[j] = b'\n';
                    }
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < b.len() && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out[j] = b'"';
                            j = k;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                out[i] = b'"';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                    }
                    if b[i] == b'\\' {
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        out[i] = b'"';
                        i += 1;
                        break;
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // char literal vs lifetime: a literal closes with ' within
                // a few bytes; a lifetime never closes
                let close = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    (i + 2..b.len().min(i + 8)).find(|&k| b[k] == b'\'')
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(k) = close {
                    out[i] = b'\'';
                    out[k] = b'\'';
                    i = k + 1;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            _ => {
                out[i] = c;
                i += 1;
            }
        }
    }
    // 'while' loops above can overshoot on truncated input; clamp is
    // implicit because out was sized to b.len()
    String::from_utf8_lossy(&out).into_owned()
}

/// Paths exempt from L1/L2/L3: test, bench and demo code.
fn is_test_like(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Crates whose compile + discovery pipeline must be replayable (L4).
/// `crates/chaos` is intentionally absent: it owns the seeded PRNG that
/// drives fault schedules, keeping the deterministic crates RNG-free.
fn is_deterministic_crate(path: &str) -> bool {
    path.starts_with("crates/ess/src")
        || path.starts_with("crates/core/src")
        || path.starts_with("crates/qplan/src")
}

/// Byte offset where trailing `#[cfg(test)]` code begins, or `len`.
fn cfg_test_offset(masked: &str) -> usize {
    masked.find("#[cfg(test)]").unwrap_or(masked.len())
}

const L1_TOKENS: [(&str, &str); 5] = [
    (".unwrap()", "`.unwrap()` in library code (use `?`, `let-else` or a fallback)"),
    (".expect(", "`.expect(...)` in library code (use `?`, `let-else` or a fallback)"),
    ("panic!", "`panic!` in library code (use `debug_assert!` + a PCM-safe fallback)"),
    ("todo!", "`todo!` in library code"),
    ("unimplemented!", "`unimplemented!` in library code"),
];

const L3_CALLS: [&str; 7] =
    ["Event::new(", ".counter(", ".gauge(", ".histogram(", "labeled(", ".span(", ".record_span("];

const L4_TOKENS: [(&str, &str); 3] = [
    ("std::time", "wall-clock access in a deterministic crate (route timing through rqp_obs)"),
    ("thread_rng", "ambient RNG in a deterministic crate (use a seeded `StdRng`)"),
    ("rand::random", "ambient RNG in a deterministic crate (use a seeded `StdRng`)"),
];

/// Words that mark an operand as a cost/selectivity expression for L2.
const L2_WORDS: [&str; 10] =
    ["cost", "sel", "sels", "selectivity", "budget", "lambda", "penalty", "spent", "mso", "subopt"];

fn ident_words(operand: &str) -> impl Iterator<Item = &str> {
    operand
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .flat_map(|tok| tok.split('_'))
        .filter(|w| !w.is_empty())
}

fn has_float_literal(operand: &str) -> bool {
    let b = operand.as_bytes();
    (1..b.len()).any(|i| {
        b[i] == b'.' && b[i - 1].is_ascii_digit() && i + 1 < b.len() && b[i + 1].is_ascii_digit()
    }) || operand.contains("f64::")
}

/// Comparisons that look cost-like but are fine: `.len()` counts are
/// integers however the field is named, and a site already routed through
/// the epsilon helpers (`cost_cmp(..) != Ordering::Greater`) is the
/// approved idiom, not a violation.
fn l2_operand_is_exempt(operand: &str) -> bool {
    operand.ends_with(".len()")
        || operand.contains("cost_cmp(")
        || operand.contains("cost_eq(")
        || operand.contains("total_cmp(")
        || operand.contains("Ordering::")
}

fn l2_operand_is_costlike(operand: &str) -> bool {
    has_float_literal(operand)
        || ident_words(operand).any(|w| {
            let lw = w.to_ascii_lowercase();
            L2_WORDS.iter().any(|&t| t == lw)
        })
}

/// The span of the operand adjacent to a comparison, bounded by expression
/// punctuation.
fn operand_left(line: &str, end: usize) -> &str {
    let b = line.as_bytes();
    let mut i = end;
    while i > 0 {
        let c = b[i - 1];
        let keep = c.is_ascii_alphanumeric()
            || matches!(c, b'_' | b':' | b'.' | b'(' | b')' | b'[' | b']' | b' ' | b'-');
        if !keep {
            break;
        }
        i -= 1;
    }
    line[i..end].trim()
}

fn operand_right(line: &str, start: usize) -> &str {
    let b = line.as_bytes();
    let mut i = start;
    while i < b.len() {
        let c = b[i];
        let keep = c.is_ascii_alphanumeric()
            || matches!(c, b'_' | b':' | b'.' | b'(' | b')' | b'[' | b']' | b' ' | b'-');
        if !keep {
            break;
        }
        i += 1;
    }
    line[start..i].trim()
}

/// Rules waived on `line` by an `allow(...)` directive on it or the line
/// above. Raw (unmasked) lines are inspected so the directive may live in
/// a comment.
fn waived(raw_lines: &[&str], line_idx: usize, rule: Rule) -> bool {
    let needle = format!("rqp-lint: allow({})", rule.id());
    let here = raw_lines.get(line_idx).is_some_and(|l| l.contains(&needle));
    let above = line_idx > 0 && raw_lines[line_idx - 1].contains(&needle);
    here || above
}

/// Lint one file's source, classified by its workspace-relative `path`.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let test_like = is_test_like(path);
    let deterministic = is_deterministic_crate(path);
    let obs_crate = path.starts_with("crates/obs/");
    let masked = code_mask(src);
    let cut = cfg_test_offset(&masked);
    let raw_lines: Vec<&str> = src.lines().collect();

    let mut offset = 0usize;
    for (idx, mline) in masked.lines().enumerate() {
        let line_start = offset;
        offset += mline.len() + 1;
        if line_start >= cut {
            break; // trailing #[cfg(test)] module: all rules exempt
        }
        let lineno = idx + 1;
        let mut report = |rule: Rule, message: String| {
            if !waived(&raw_lines, idx, rule) {
                out.push(Violation { rule, file: path.to_owned(), line: lineno, message });
            }
        };

        if !test_like {
            // L1 no-panic
            for (tok, msg) in L1_TOKENS {
                if mline.contains(tok) {
                    report(Rule::NoPanic, (*msg).to_owned());
                }
            }

            // L2 float-eq
            let b = mline.as_bytes();
            for i in 0..b.len().saturating_sub(1) {
                let two = &mline[i..i + 2];
                if two != "==" && two != "!=" {
                    continue;
                }
                // not part of <=, >=, ===, =>, or a != that is part of =!=
                if i > 0 && matches!(b[i - 1], b'<' | b'>' | b'=' | b'!') {
                    continue;
                }
                if i + 2 < b.len() && b[i + 2] == b'=' {
                    continue;
                }
                let lhs = operand_left(mline, i);
                let rhs = operand_right(mline, i + 2);
                if l2_operand_is_exempt(lhs) || l2_operand_is_exempt(rhs) {
                    continue;
                }
                if l2_operand_is_costlike(lhs) || l2_operand_is_costlike(rhs) {
                    report(
                        Rule::FloatEq,
                        format!(
                            "raw `{two}` on a cost/selectivity expression \
                             (use rqp_qplan::cost_eq / cost_cmp)"
                        ),
                    );
                }
            }

            // L3 obs-names
            if !obs_crate {
                for call in L3_CALLS {
                    let mut from = 0usize;
                    while let Some(rel) = mline[from..].find(call) {
                        let after = from + rel + call.len();
                        let rest = mline[after..].trim_start();
                        if rest.starts_with('"')
                            || rest.starts_with("r\"")
                            || rest.starts_with("r#")
                        {
                            report(
                                Rule::ObsNames,
                                format!(
                                    "inline name literal at `{}…)` \
                                     (declare it in crates/obs/src/names.rs)",
                                    call
                                ),
                            );
                        }
                        from = after;
                    }
                }
            }
        }

        // L4 determinism (deterministic crates only; test modules already
        // excluded by the cfg(test) cut above)
        if deterministic {
            for (tok, msg) in L4_TOKENS {
                if mline.contains(tok) {
                    report(Rule::Determinism, (*msg).to_owned());
                }
            }
        }
    }
    out
}

fn walk(dir: &Path, files: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | ".github" | "node_modules" | "third_party"
            ) {
                continue;
            }
            walk(&p, files)?;
        } else if name.ends_with(".rs") {
            files.push(p);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/` and
/// fixture directories). Paths in the findings are relative to `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        let rel = f.strip_prefix(root).unwrap_or(&f).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&f)?;
        out.extend(lint_source(&rel, &src));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_comments_and_strings() {
        let src = "let a = 1; // x.unwrap()\nlet s = \"panic!\";\n/* todo! */ let c = 'x';\n";
        let m = code_mask(src);
        assert!(!m.contains(".unwrap()"));
        assert!(!m.contains("panic!"));
        assert!(!m.contains("todo!"));
        assert!(m.contains("let a = 1;"));
        assert!(m.contains("let s = \""));
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let s = r#\"x.unwrap() panic!\"#; y.unwrap()";
        let m = code_mask(src);
        assert_eq!(m.matches(".unwrap()").count(), 1);
    }

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // .expect(\nz.expect(\"\")";
        let v = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn allow_directive_waives_one_site() {
        let src =
            "fn f(x: Option<u8>) -> u8 {\n    // rqp-lint: allow(no-panic)\n    x.unwrap()\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
        let src2 = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/x/src/lib.rs", src2).len(), 1);
    }

    #[test]
    fn float_eq_needs_a_costlike_operand() {
        let clean = "fn f(a: usize, b: usize) -> bool { a == b }\n";
        assert!(lint_source("crates/x/src/lib.rs", clean).is_empty());
        let dirty = "fn f(cost_a: f64, b: f64) -> bool { cost_a == b }\n";
        let v = lint_source("crates/x/src/lib.rs", dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FloatEq);
    }

    #[test]
    fn epsilon_helper_sites_and_len_counts_are_exempt() {
        let idiom = "let ok = cost_cmp(cost, budget) != Ordering::Greater;\n";
        assert!(lint_source("crates/x/src/lib.rs", idiom).is_empty());
        let count = "if self.cell_cost.len() != cells { return; }\n";
        assert!(lint_source("crates/x/src/lib.rs", count).is_empty());
    }

    #[test]
    fn self_is_not_sel() {
        let src = "fn f(a: &S, b: &S) -> bool { a.self_id == b.self_id }\n";
        assert!(lint_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_like_paths_are_exempt_from_l1() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("crates/core/tests/it.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(lint_source("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn span_sites_with_inline_names_trip_l3() {
        let dirty = "let _g = tracer.span(\"my_span\", SpanKind::Step);\n";
        let v = lint_source("crates/x/src/lib.rs", dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::ObsNames);
        let dirty2 = "t.record_span(\"phase\", SpanKind::CompilePhase, secs, vec![]);\n";
        assert_eq!(lint_source("crates/x/src/lib.rs", dirty2).len(), 1);
        // Constants from rqp_obs::names are the approved form.
        let clean = "let _g = tracer.span(names::SPAN_EXECUTION, SpanKind::Execution);\n";
        assert!(lint_source("crates/x/src/lib.rs", clean).is_empty());
        // The obs crate defines the names; its own call sites are exempt.
        assert!(lint_source("crates/obs/src/trace.rs", dirty).is_empty());
    }

    #[test]
    fn determinism_applies_only_to_deterministic_crates() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/ess/src/lib.rs", src).len(), 1);
        assert!(lint_source("crates/executor/src/lib.rs", src).is_empty());
        // chaos is the designated PRNG owner, so ambient-randomness
        // idioms (its own seeded generator) never trip L4 there.
        let rng = "let x = self.state.wrapping_mul(0x2545F4914F6CDD1D);\n";
        assert!(lint_source("crates/chaos/src/rng.rs", rng).is_empty());
        assert!(lint_source("crates/chaos/src/plan.rs", src).is_empty());
    }
}
