#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! `rqp-lint`: the workspace invariant linter, v2.
//!
//! v2 replaces the line-lexical scanner of PR 2 with a real analysis
//! pipeline: [`lexer`] masks comments/strings and tokenizes with line
//! tracking, [`tree`] builds a token tree with brace/paren nesting, item
//! boundaries (`fn`/`impl`/`mod`) and per-function token lists, and
//! [`passes`] runs one pass per rule over that structure. `#[cfg(test)]`
//! exemption is *item-scoped* — a test module in the middle of a file no
//! longer exempts the code after it.
//!
//! ## Rules
//!
//! | rule | severity | invariant |
//! |------|----------|-----------|
//! | `no-panic` | deny | library code never aborts a long-lived process |
//! | `float-eq` | deny | cost/selectivity comparisons go through `cost_eq`/`cost_cmp` |
//! | `obs-names` | deny | series names come from `crates/obs/src/names.rs` |
//! | `determinism` | deny | `ess`/`core`/`qplan` stay replayable (no clocks/RNG) |
//! | `lock-order` | deny | the per-crate lock acquisition graph is acyclic |
//! | `guard-across-blocking` | deny | no `MutexGuard` live across `.wait()`/recv/accept/IO, unless parked on its own condvar |
//! | `raii-span` | warn | span guards nest and drop LIFO; no `record_span` twins |
//! | `swallowed-result` | deny | no `let _ =`/`;`-dropped `RqpResult`/`io::Result` outside tests |
//! | `bare-allow` | deny | every `allow` directive carries a reason |
//!
//! Test modules (`#[cfg(test)]`, `#[test]`), `tests/`, `benches/`,
//! `examples/` and the `crates/bench` harness are exempt. A single site
//! can be waived with a *reasoned* directive on the offending line or the
//! line above it:
//!
//! ```text
//! // rqp-lint: allow(<rule>): <why this site is safe>
//! ```
//!
//! A bare `allow(<rule>)` without the `: <reason>` tail is itself a
//! deny-level `bare-allow` violation.
//!
//! The lock acquisition graph behind `lock-order` is exportable as
//! GraphViz DOT via [`lock_graph`] (CLI: `rqp lint --lock-graph <dir>`).

pub mod lexer;
pub mod passes;
pub mod tree;

use passes::locks::LockGraph;
use passes::{CrateCtx, FileCtx, Finding};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No panicking constructs in library code.
    NoPanic,
    /// No raw float equality on cost/selectivity expressions.
    FloatEq,
    /// Metric/event/span names must come from `rqp_obs::names`.
    ObsNames,
    /// No wall clocks or ambient randomness in deterministic crates.
    Determinism,
    /// The per-crate lock acquisition graph must be acyclic.
    LockOrder,
    /// No mutex guard held across a blocking call (own condvar excepted).
    GuardAcrossBlocking,
    /// Span/timer guards must bind, nest and drop LIFO.
    RaiiSpan,
    /// No silently dropped `RqpResult`/`io::Result` outside tests.
    SwallowedResult,
    /// `allow` directives must carry a reason.
    BareAllow,
}

/// Every rule, in stable id order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::NoPanic,
    Rule::FloatEq,
    Rule::ObsNames,
    Rule::Determinism,
    Rule::LockOrder,
    Rule::GuardAcrossBlocking,
    Rule::RaiiSpan,
    Rule::SwallowedResult,
    Rule::BareAllow,
];

impl Rule {
    /// Stable rule identifier, as used in `allow(...)` directives.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::FloatEq => "float-eq",
            Rule::ObsNames => "obs-names",
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::GuardAcrossBlocking => "guard-across-blocking",
            Rule::RaiiSpan => "raii-span",
            Rule::SwallowedResult => "swallowed-result",
            Rule::BareAllow => "bare-allow",
        }
    }

    /// The rule's default severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::RaiiSpan => Severity::Warn,
            _ => Severity::Deny,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A finding's severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but only fails the build under `--deny-warnings`.
    Warn,
    /// Hard failure.
    Deny,
}

impl Severity {
    /// Stable identifier (`warn`/`deny`).
    pub fn id(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// The rule's severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}:{}: {}", self.severity, self.rule, self.file, self.line, self.message)
    }
}

/// Paths exempt from most rules: test, bench and demo code.
fn is_test_like(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("benches/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
}

/// Crates whose compile + discovery pipeline must be replayable.
/// `crates/chaos` is intentionally absent: it owns the seeded PRNG that
/// drives fault schedules, keeping the deterministic crates RNG-free.
fn is_deterministic_crate(path: &str) -> bool {
    path.starts_with("crates/ess/src")
        || path.starts_with("crates/core/src")
        || path.starts_with("crates/qplan/src")
}

/// An `// rqp-lint: allow(<rule>)[: reason]` directive found in a file.
#[derive(Debug)]
struct Directive {
    /// 0-based line index.
    line_idx: usize,
    /// The rule id inside `allow(...)`.
    rule_id: String,
    /// Whether a non-empty `: <reason>` tail followed.
    reasoned: bool,
}

const DIRECTIVE: &str = "rqp-lint: allow(";

/// Every directive in the source. Directives live in `//` comments, so
/// the scan runs over a strings-masked view (comments kept): directive
/// text inside a string literal — linter test sources, message templates —
/// is not a directive. Doc-comment lines (`///`, `//!`) are skipped too:
/// they *document* the syntax rather than use it.
fn directives(src: &str) -> Vec<Directive> {
    let masked = lexer::mask_strings(src);
    let mut out = Vec::new();
    for (line_idx, line) in masked.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(DIRECTIVE) {
            let open = from + rel + DIRECTIVE.len();
            let Some(close_rel) = line[open..].find(')') else { break };
            let close = open + close_rel;
            let rule_id = line[open..close].trim().to_string();
            let tail = &line[close + 1..];
            let reasoned = tail.strip_prefix(':').is_some_and(|reason| !reason.trim().is_empty());
            out.push(Directive { line_idx, rule_id, reasoned });
            from = close + 1;
        }
    }
    out
}

/// Whether `rule` is waived on 0-based `line_idx` by a directive on the
/// same line or the line above.
fn waived(dirs: &[Directive], line_idx: usize, rule: Rule) -> bool {
    dirs.iter()
        .any(|d| d.rule_id == rule.id() && (d.line_idx == line_idx || d.line_idx + 1 == line_idx))
}

/// `bare-allow` violations for a file's directives: a directive without a
/// reason, or naming an unknown rule. Not waivable.
fn directive_violations(path: &str, dirs: &[Directive], out: &mut Vec<Violation>) {
    for d in dirs {
        let known = ALL_RULES.iter().any(|r| r.id() == d.rule_id);
        let message = if !known {
            format!(
                "allow directive names unknown rule `{}` (known: {})",
                d.rule_id,
                ALL_RULES.map(Rule::id).join(", ")
            )
        } else if !d.reasoned {
            format!(
                "bare `allow({id})` without a reason \
                 (write `// rqp-lint: allow({id}): <why this site is safe>`)",
                id = d.rule_id
            )
        } else {
            continue;
        };
        out.push(Violation {
            rule: Rule::BareAllow,
            severity: Rule::BareAllow.severity(),
            file: path.to_string(),
            line: d.line_idx + 1,
            message,
        });
    }
}

/// One parsed file, ready for the passes.
struct PreparedFile {
    path: String,
    index: tree::FileIndex,
    dirs: Vec<Directive>,
}

fn prepare(path: &str, src: &str) -> PreparedFile {
    PreparedFile { path: path.to_string(), index: tree::index(src), dirs: directives(src) }
}

/// Run every pass over one crate's prepared files, appending to `out`.
/// `graph` receives the crate's lock acquisition edges.
fn lint_crate(files: &[PreparedFile], graph: &mut LockGraph, out: &mut Vec<Violation>) {
    let krate = CrateCtx::collect(files.iter().map(|f| &f.index));
    for file in files {
        let ctx = FileCtx {
            path: &file.path,
            test_like: is_test_like(&file.path),
            deterministic: is_deterministic_crate(&file.path),
            obs_crate: file.path.starts_with("crates/obs/"),
            index: &file.index,
        };
        let mut findings: Vec<Finding> = Vec::new();
        passes::no_panic::run(&ctx, &mut findings);
        passes::float_eq::run(&ctx, &mut findings);
        passes::obs_names::run(&ctx, &mut findings);
        passes::determinism::run(&ctx, &mut findings);
        passes::swallowed_result::run(&ctx, &krate, &mut findings);
        passes::raii_span::run(&ctx, &mut findings);
        passes::locks::analyze_file(&ctx, &krate, graph, &mut findings);
        for f in findings {
            if !waived(&file.dirs, f.line.saturating_sub(1), f.rule) {
                out.push(Violation {
                    rule: f.rule,
                    severity: f.rule.severity(),
                    file: file.path.clone(),
                    line: f.line,
                    message: f.message,
                });
            }
        }
        directive_violations(&file.path, &file.dirs, out);
    }
    // lock-order cycles are a crate-level property; a cycle is never
    // waivable at a single site
    for (file, f) in passes::locks::cycle_violations(graph) {
        out.push(Violation {
            rule: f.rule,
            severity: f.rule.severity(),
            file,
            line: f.line,
            message: f.message,
        });
    }
}

fn sort_violations(out: &mut [Violation]) {
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// Lint one file's source, classified by its workspace-relative `path`.
/// The file is treated as its own crate: lock wrappers and fallible
/// functions defined in sibling files are not visible.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    let files = vec![prepare(path, src)];
    let mut graph = LockGraph::default();
    let mut out = Vec::new();
    lint_crate(&files, &mut graph, &mut out);
    sort_violations(&mut out);
    out
}

fn walk(dir: &Path, files: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if matches!(
                name.as_ref(),
                "target" | ".git" | "fixtures" | ".github" | "node_modules" | "third_party"
            ) {
                continue;
            }
            walk(&p, files)?;
        } else if name.ends_with(".rs") {
            files.push(p);
        }
    }
    Ok(())
}

/// The crate-grouping key of a workspace-relative path: `crates/<name>`
/// for crate members, the first component otherwise.
fn crate_key(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), Some(_)) => first.to_string(),
        _ => rel.to_string(),
    }
}

fn prepared_by_crate(root: &Path) -> io::Result<BTreeMap<String, Vec<PreparedFile>>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut crates: BTreeMap<String, Vec<PreparedFile>> = BTreeMap::new();
    for f in files {
        let rel = f.strip_prefix(root).unwrap_or(&f).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&f)?;
        crates.entry(crate_key(&rel)).or_default().push(prepare(&rel, &src));
    }
    Ok(crates)
}

/// Lint every `.rs` file under `root` (skipping `target/`, `.git/` and
/// fixture directories). Paths in the findings are relative to `root`.
/// Lock graphs are built and cycle-checked per crate.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for files in prepared_by_crate(root)?.values() {
        let mut graph = LockGraph::default();
        lint_crate(files, &mut graph, &mut out);
    }
    sort_violations(&mut out);
    Ok(out)
}

/// Build the lock acquisition graph for every `.rs` file under `root`,
/// pooled as if the subtree were one crate (which it is for the intended
/// `crates/<name>` arguments).
pub fn lock_graph(root: &Path) -> io::Result<LockGraph> {
    let mut graph = LockGraph::default();
    for files in prepared_by_crate(root)?.values() {
        let mut sink = Vec::new();
        lint_crate(files, &mut graph, &mut sink);
    }
    Ok(graph)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render violations as a JSON array (machine-readable `--format json`).
pub fn render_json(violations: &[Violation]) -> String {
    let mut s = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"message\": \"{}\"}}",
            v.rule,
            v.severity,
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        ));
    }
    s.push_str(if violations.is_empty() { "]\n" } else { "\n]\n" });
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Violation> {
        lint_source("crates/x/src/lib.rs", src)
    }

    // ---- ported v1 behavior ----

    #[test]
    fn lifetimes_do_not_start_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // .expect(\nfn g() { z.expect(\"\"); }";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn reasoned_allow_waives_one_site() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // rqp-lint: allow(no-panic): demo of a checked invariant\n    x.unwrap()\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
        let src2 = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(lint(src2).len(), 1);
    }

    #[test]
    fn float_eq_needs_a_costlike_operand() {
        let clean = "fn f(a: usize, b: usize) -> bool { a == b }\n";
        assert!(lint(clean).is_empty());
        let dirty = "fn f(cost_a: f64, b: f64) -> bool { cost_a == b }\n";
        let v = lint(dirty);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);
    }

    #[test]
    fn epsilon_helper_sites_and_len_counts_are_exempt() {
        let idiom = "fn f() { let ok = cost_cmp(cost, budget) != Ordering::Greater; }\n";
        assert!(lint(idiom).is_empty());
        let count = "fn f() { if self.cell_cost.len() != cells { return; } }\n";
        assert!(lint(count).is_empty());
    }

    #[test]
    fn self_is_not_sel() {
        let src = "fn f(a: &S, b: &S) -> bool { a.self_id == b.self_id }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn multiline_float_eq_is_caught() {
        // the v1 line-lexical rule could not see a comparison split
        // across lines
        let src = "fn f() -> bool {\n    total_cost\n        == budget\n}\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);
    }

    #[test]
    fn test_like_paths_are_exempt() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("crates/core/tests/it.rs", src).is_empty());
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(lint_source("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn span_sites_with_inline_names_trip_obs_names() {
        let dirty = "fn f() { let _g = tracer.span(\"my_span\", SpanKind::Step); }\n";
        let v = lint(dirty);
        assert!(v.iter().any(|v| v.rule == Rule::ObsNames), "{v:?}");
        let dirty2 = "fn f() { t.record_span(\"phase\", SpanKind::CompilePhase, secs, vec![]); }\n";
        assert!(lint(dirty2).iter().any(|v| v.rule == Rule::ObsNames));
        // raw-string names were a v1 blind spot
        let raw = "fn f() { let _g = tracer.span(r#\"raw_name\"#, SpanKind::Step); }\n";
        assert!(lint(raw).iter().any(|v| v.rule == Rule::ObsNames), "{:?}", lint(raw));
        // Constants from rqp_obs::names are the approved form.
        let clean = "fn f() { let g = tracer.span(names::SPAN_EXECUTION, SpanKind::Execution); }\n";
        assert!(lint(clean).is_empty());
        // The obs crate defines the names; its own call sites are exempt.
        assert!(lint_source("crates/obs/src/trace.rs", dirty).is_empty());
    }

    #[test]
    fn determinism_applies_only_to_deterministic_crates() {
        let src = "use std::time::Instant;\n";
        assert_eq!(lint_source("crates/ess/src/lib.rs", src).len(), 1);
        assert!(lint_source("crates/executor/src/lib.rs", src).is_empty());
        let rng = "fn f() { let x = self.state.wrapping_mul(0x2545F4914F6CDD1D); }\n";
        assert!(lint_source("crates/chaos/src/rng.rs", rng).is_empty());
        assert!(lint_source("crates/chaos/src/plan.rs", src).is_empty());
    }

    // ---- v2: item-scoped cfg(test) ----

    #[test]
    fn code_after_a_mid_file_test_module_is_still_linted() {
        // the v1 scanner exempted everything after the first #[cfg(test)]
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn bad(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::NoPanic);
        assert_eq!(v[0].line, 6);
    }

    // ---- v2: bare-allow ----

    #[test]
    fn bare_allow_is_itself_a_violation() {
        let src =
            "fn f(x: Option<u8>) -> u8 {\n    // rqp-lint: allow(no-panic)\n    x.unwrap()\n}\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BareAllow);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].severity, Severity::Deny);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// rqp-lint: allow(no-such-rule): because\nfn f() {}\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::BareAllow);
    }

    // ---- v2: swallowed-result ----

    #[test]
    fn swallowed_io_results_are_flagged() {
        let src = "fn f(mut s: TcpStream) {\n    let _ = s.flush();\n    s.write_all(b\"x\");\n}\n";
        let v = lint(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::SwallowedResult));
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn handled_results_are_not_swallowed() {
        let src = "fn f(mut s: TcpStream) -> std::io::Result<()> {\n    s.flush()?;\n    if s.write_all(b\"x\").is_err() { count(); }\n    let n = s.write_all(b\"y\");\n    s.flush()\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn crate_local_fallible_fns_are_tracked() {
        let src = "fn fallible() -> RqpResult<()> { Ok(()) }\nfn f() { let _ = fallible(); }\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::SwallowedResult);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn fmt_write_macros_are_not_io() {
        let src = "fn f(out: &mut String) { let _ = write!(out, \"x\"); let _ = writeln!(out, \"y\"); }\n";
        assert!(lint(src).is_empty());
    }

    // ---- v2: raii-span ----

    #[test]
    fn span_guard_bound_to_underscore_warns() {
        let src = "fn f(t: &Tracer) { let _ = t.span(names::SPAN_SESSION, SpanKind::Session); }\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RaiiSpan);
        assert_eq!(v[0].severity, Severity::Warn);
    }

    #[test]
    fn out_of_order_span_drops_warn() {
        let src = "fn f(t: &Tracer) {\n    let outer = t.span(names::A, SpanKind::Session);\n    let inner = t.span(names::B, SpanKind::Step);\n    drop(outer);\n    drop(inner);\n}\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RaiiSpan);
        assert_eq!(v[0].line, 4);
        let lifo = "fn f(t: &Tracer) {\n    let outer = t.span(names::A, SpanKind::Session);\n    let inner = t.span(names::B, SpanKind::Step);\n    drop(inner);\n    drop(outer);\n}\n";
        assert!(lint(lifo).is_empty());
    }

    #[test]
    fn record_span_twin_of_a_guard_warns() {
        let src = "fn f(t: &Tracer) {\n    let g = t.span(names::PHASE, SpanKind::Step);\n    t.record_span(names::PHASE, SpanKind::Step, secs, vec![]);\n}\n";
        let v = lint(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RaiiSpan);
        assert_eq!(v[0].line, 3);
    }

    // ---- v2: guard-across-blocking ----

    #[test]
    fn guard_across_foreign_blocking_call_is_flagged() {
        let src = "impl S {\n    fn f(&self) {\n        let g = self.state.lock();\n        self.rx.recv();\n    }\n}\n";
        let v = lint(src);
        assert!(v.iter().any(|v| v.rule == Rule::GuardAcrossBlocking), "{v:?}");
    }

    #[test]
    fn own_condvar_wait_is_exempt() {
        let src = "impl S {\n    fn f(&self) {\n        let mut g = self.state.lock();\n        g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn dropped_guard_unblocks() {
        let src = "impl S {\n    fn f(&self) {\n        let g = self.state.lock();\n        drop(g);\n        let msg = self.rx.recv();\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn block_scoped_guard_unblocks() {
        let src = "impl S {\n    fn f(&self) {\n        { let g = self.state.lock(); g.push(1); }\n        let msg = self.rx.recv();\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    // ---- v2: lock-order ----

    #[test]
    fn two_lock_cycle_is_detected() {
        let src = "impl S {\n    fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n    fn ba(&self) {\n        let b = self.beta.lock();\n        let a = self.alpha.lock();\n    }\n}\n";
        let v = lint(src);
        let cycles: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 1, "{v:?}");
        assert!(cycles[0].message.contains("S::alpha"), "{}", cycles[0].message);
        assert!(cycles[0].message.contains("S::beta"), "{}", cycles[0].message);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = "impl S {\n    fn ab(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n    fn ab2(&self) {\n        let a = self.alpha.lock();\n        let b = self.beta.lock();\n    }\n}\n";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn wrapper_fns_resolve_to_the_wrapped_mutex() {
        // Shard::lock is a wrapper around Shard::map; acquiring via the
        // wrapper and via self.map.lock() must be the same graph node
        let src = "impl Shard {\n    fn lock(&self) -> MutexGuard<'_, u8> {\n        self.map.lock().unwrap_or_else(PoisonError::into_inner)\n    }\n}\nimpl Registry {\n    fn f(&self, shard: &Shard) {\n        let a = shard.lock();\n        let b = self.other.lock();\n    }\n    fn g(&self, shard: &Shard) {\n        let b = self.other.lock();\n        let a = shard.lock();\n    }\n}\n";
        let v = lint(src);
        let cycles: Vec<&Violation> = v.iter().filter(|v| v.rule == Rule::LockOrder).collect();
        assert_eq!(cycles.len(), 1, "{v:?}");
        assert!(cycles[0].message.contains("Shard::map"), "{}", cycles[0].message);
    }

    // ---- output formats ----

    #[test]
    fn json_rendering_is_wellformed() {
        let v = lint("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
        let json = render_json(&v);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"severity\": \"deny\""));
        assert!(json.contains("\"line\": 1"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
