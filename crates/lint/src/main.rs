//! `rqp-lint` CLI.
//!
//! ```text
//! rqp-lint [PATH] [--format text|json] [--deny-warnings]
//! rqp-lint --lock-graph DIR [--dot FILE]
//! ```
//!
//! With no `PATH`, lints the workspace rooted at the current directory.
//! A file `PATH` is linted standalone, classified as `crates/core/src/…`
//! so every rule (including the deterministic-crate ones) applies — that
//! is what the fixture checks in CI rely on. A directory `PATH` is linted
//! as a workspace root. `--lock-graph DIR` prints the lock acquisition
//! graph of the subtree as GraphViz DOT (or writes it to `--dot FILE`)
//! and fails if the graph has a cycle.
//!
//! Exit codes: 0 clean, 1 violations (or cycles) found, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

#[derive(Debug, PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    path: Option<PathBuf>,
    format: Format,
    deny_warnings: bool,
    lock_graph: Option<PathBuf>,
    dot_out: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: rqp-lint [PATH] [--format text|json] [--deny-warnings]\n\
         \x20      rqp-lint --lock-graph DIR [--dot FILE]"
    );
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        path: None,
        format: Format::Text,
        deny_warnings: false,
        lock_graph: None,
        dot_out: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                };
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--lock-graph" => {
                let dir = it.next().ok_or("--lock-graph expects a directory")?;
                args.lock_graph = Some(PathBuf::from(dir));
            }
            "--dot" => {
                let file = it.next().ok_or("--dot expects a file path")?;
                args.dot_out = Some(PathBuf::from(file));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => {
                if args.path.is_some() {
                    return Err("at most one PATH".to_string());
                }
                args.path = Some(PathBuf::from(path));
            }
        }
    }
    Ok(args)
}

fn run_lock_graph(dir: &Path, dot_out: Option<&Path>) -> ExitCode {
    let graph = match rqp_lint::lock_graph(dir) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("rqp-lint: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };
    let dot = graph.to_dot();
    if let Some(out) = dot_out {
        if let Err(e) = std::fs::write(out, &dot) {
            eprintln!("rqp-lint: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "rqp-lint: lock graph of {} ({} locks, {} edges) -> {}",
            dir.display(),
            graph.nodes().len(),
            graph.edges.len(),
            out.display()
        );
    } else {
        print!("{dot}");
    }
    let cycles = graph.cycles();
    if cycles.is_empty() {
        eprintln!("rqp-lint: lock graph is acyclic");
        ExitCode::SUCCESS
    } else {
        for (_, v) in rqp_lint::passes::locks::cycle_violations(&graph) {
            eprintln!("rqp-lint: {}", v.message);
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rqp-lint: {e}");
            return usage();
        }
    };
    if let Some(dir) = &args.lock_graph {
        return run_lock_graph(dir, args.dot_out.as_deref());
    }

    let violations = match &args.path {
        Some(p) if p.is_file() => {
            let synthetic = format!(
                "crates/core/src/{}",
                p.file_name()
                    .map_or_else(|| "input.rs".to_string(), |n| n.to_string_lossy().into_owned())
            );
            match std::fs::read_to_string(p) {
                Ok(src) => rqp_lint::lint_source(&synthetic, &src),
                Err(e) => {
                    eprintln!("rqp-lint: {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            }
        }
        Some(p) => match rqp_lint::lint_workspace(p) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("rqp-lint: {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => match rqp_lint::lint_workspace(Path::new(".")) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("rqp-lint: error: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let denied = violations
        .iter()
        .filter(|v| args.deny_warnings || v.severity == rqp_lint::Severity::Deny)
        .count();
    let warned = violations.len() - denied;

    match args.format {
        Format::Json => print!("{}", rqp_lint::render_json(&violations)),
        Format::Text => {
            for v in &violations {
                println!("{v}");
            }
        }
    }

    if denied > 0 {
        let tail = if warned > 0 { format!(" + {warned} warning(s)") } else { String::new() };
        eprintln!("rqp-lint: {denied} violation(s){tail}");
        ExitCode::FAILURE
    } else if warned > 0 {
        eprintln!("rqp-lint: clean ({warned} warning(s))");
        ExitCode::SUCCESS
    } else {
        eprintln!("rqp-lint: clean");
        ExitCode::SUCCESS
    }
}
