//! CLI for `rqp-lint`. See the library docs for the rule catalog.
//!
//! Usage:
//!
//! ```text
//! cargo run -q -p rqp-lint             # lint the workspace rooted at .
//! cargo run -q -p rqp-lint -- <path>   # lint another root, or one file
//! ```
//!
//! A single-file argument is linted as if it lived at
//! `crates/core/src/<name>` so every rule (including the
//! deterministic-crate ones) applies — that is what the fixture checks in
//! CI rely on.
//!
//! Exit codes: 0 clean, 1 violations found, 2 I/O error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let path = Path::new(&arg);

    let result = if path.is_file() {
        let synthetic = format!(
            "crates/core/src/{}",
            path.file_name().map_or_else(|| arg.clone(), |n| n.to_string_lossy().into_owned())
        );
        std::fs::read_to_string(path).map(|src| rqp_lint::lint_source(&synthetic, &src))
    } else {
        rqp_lint::lint_workspace(path)
    };

    match result {
        Ok(violations) if violations.is_empty() => {
            eprintln!("rqp-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            eprintln!("rqp-lint: {} violation(s)", violations.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("rqp-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
