//! Seeded L3 (obs-names) violations for the fixture tests.

pub fn rogue_event() {
    let _ = rqp_obs::Event::new("rqp_rogue_event");
}

pub fn rogue_counter(g: &rqp_obs::MetricsGroup) {
    g.counter("rqp_rogue_counter");
}
