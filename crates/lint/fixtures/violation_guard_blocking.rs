//! Seeded guard-across-blocking violation: a mutex guard held across a
//! blocking channel receive parks the thread with the lock still held.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, PoisonError};

pub struct Inbox {
    state: Mutex<Vec<u64>>,
    rx: Receiver<u64>,
}

impl Inbox {
    pub fn drain_one(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Ok(v) = self.rx.recv() {
            state.push(v);
        }
    }
}
