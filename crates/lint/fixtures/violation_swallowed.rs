//! Seeded swallowed-result violations: `let _ =` and bare-`;` drops of
//! `io::Result`s, including through a crate-local fallible fn.

use std::io::Write;
use std::net::TcpStream;

pub fn swallow_socket_io(mut stream: TcpStream) {
    let _ = stream.write_all(b"hello");
    stream.flush();
}

pub fn persist(path: &str, payload: &str) -> std::io::Result<()> {
    std::fs::write(path, payload)
}

pub fn fire_and_forget(path: &str) {
    let _ = persist(path, "snapshot");
}
