//! A clean fixture: no rule fires on any line.

pub fn safe(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn compare_counts(a: usize, b: usize) -> bool {
    a == b
}

pub fn describe() -> &'static str {
    // Pattern strings inside comments or literals must not trip the
    // lexer-masked scanner: .unwrap() panic! std::time thread_rng
    "cost == budget is only a string here"
}
