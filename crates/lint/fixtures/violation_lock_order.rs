//! Seeded lock-order violation for the fixture tests: two functions
//! acquire the same pair of mutexes in opposite orders — a potential
//! deadlock the acquisition graph reports as a cycle.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn alpha_then_beta(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        *a + *b
    }

    pub fn beta_then_alpha(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        *a - *b
    }
}
