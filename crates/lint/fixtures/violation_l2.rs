//! Seeded L2 (float-eq) violations for the fixture tests.

pub fn costs_equal(cost_a: f64, cost_b: f64) -> bool {
    cost_a == cost_b
}

pub fn sel_is_full(filter_sel: f64) -> bool {
    filter_sel != 1.0
}

pub fn literal_compare(x: f64) -> bool {
    x == 0.0
}

pub fn clean_integer_compare(a: usize, b: usize) -> bool {
    a == b
}
