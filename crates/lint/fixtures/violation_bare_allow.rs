//! Seeded bare-allow violation: the directive waives its rule, but a
//! reasonless `allow` is itself a deny-level violation.

pub fn escaped_without_reason(x: Option<u8>) -> u8 {
    // rqp-lint: allow(no-panic)
    x.unwrap()
}
