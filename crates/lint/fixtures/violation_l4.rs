//! Seeded L4 (determinism) violations for the fixture tests.

pub fn wall_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn ambient_rng() -> u8 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
