//! Seeded raii-span violations: a span guard bound to `_` (drops
//! immediately), a non-LIFO drop, and a `record_span` twin of a live
//! guard.

use rqp_obs::{names, SpanKind, Tracer};

pub fn discarded(tracer: &Tracer) {
    let _ = tracer.span(names::SPAN_SESSION, SpanKind::Session);
}

pub fn out_of_order(tracer: &Tracer) {
    let outer = tracer.span(names::SPAN_SESSION, SpanKind::Session);
    let inner = tracer.span(names::SPAN_COMPILE, SpanKind::CompilePhase);
    drop(outer);
    drop(inner);
}

pub fn double_accounted(tracer: &Tracer) {
    let guard = tracer.span(names::SPAN_COMPILE, SpanKind::CompilePhase);
    tracer.record_span(names::SPAN_COMPILE, SpanKind::CompilePhase, 0.5, vec![]);
    drop(guard);
}
