//! Seeded L1 (no-panic) violations for the fixture tests.

pub fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u8>) -> u8 {
    x.expect("present")
}

pub fn bad_panic() {
    panic!("boom");
}

pub fn bad_todo() {
    todo!()
}

pub fn escaped(x: Option<u8>) -> u8 {
    // rqp-lint: allow(no-panic): fixture demonstrating the reasoned escape
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u8).unwrap();
    }
}
