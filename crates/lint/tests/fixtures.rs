//! End-to-end checks of the rule scanners against seeded fixtures, plus
//! the self-hosting check: the workspace this linter ships in must itself
//! be clean.

use rqp_lint::{lint_source, lint_workspace, Rule};
use std::path::Path;

fn lint_fixture(name: &str) -> Vec<(Rule, usize)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    // Synthetic location inside a deterministic crate so all four rules
    // apply, mirroring the single-file mode of the CLI.
    lint_source(&format!("crates/core/src/{name}"), &src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l1_fixture_reports_each_panic_site_once() {
    let got = lint_fixture("violation_l1.rs");
    assert_eq!(
        got,
        vec![
            (Rule::NoPanic, 4),  // .unwrap()
            (Rule::NoPanic, 8),  // .expect(
            (Rule::NoPanic, 12), // panic!
            (Rule::NoPanic, 16), // todo!
        ],
        "allow(...) escape and #[cfg(test)] module must be exempt"
    );
}

#[test]
fn l2_fixture_flags_costlike_comparisons_only() {
    let got = lint_fixture("violation_l2.rs");
    assert_eq!(
        got,
        vec![(Rule::FloatEq, 4), (Rule::FloatEq, 8), (Rule::FloatEq, 12)],
        "the integer == on line 16 must not fire"
    );
}

#[test]
fn l3_fixture_flags_inline_name_literals() {
    let got = lint_fixture("violation_l3.rs");
    assert_eq!(got, vec![(Rule::ObsNames, 4), (Rule::ObsNames, 8)]);
}

#[test]
fn l4_fixture_flags_clock_and_rng() {
    let got = lint_fixture("violation_l4.rs");
    assert_eq!(got, vec![(Rule::Determinism, 3), (Rule::Determinism, 4), (Rule::Determinism, 8)]);
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(lint_fixture("clean.rs"), vec![]);
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let violations = lint_workspace(&root).expect("workspace readable");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
