//! End-to-end checks of the rule scanners against seeded fixtures, plus
//! the self-hosting check: the workspace this linter ships in must itself
//! be clean.

use rqp_lint::{lint_source, lint_workspace, Rule};
use std::path::Path;

fn lint_fixture(name: &str) -> Vec<(Rule, usize)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    // Synthetic location inside a deterministic crate so all four rules
    // apply, mirroring the single-file mode of the CLI.
    lint_source(&format!("crates/core/src/{name}"), &src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l1_fixture_reports_each_panic_site_once() {
    let got = lint_fixture("violation_l1.rs");
    assert_eq!(
        got,
        vec![
            (Rule::NoPanic, 4),  // .unwrap()
            (Rule::NoPanic, 8),  // .expect(
            (Rule::NoPanic, 12), // panic!
            (Rule::NoPanic, 16), // todo!
        ],
        "allow(...) escape and #[cfg(test)] module must be exempt"
    );
}

#[test]
fn l2_fixture_flags_costlike_comparisons_only() {
    let got = lint_fixture("violation_l2.rs");
    assert_eq!(
        got,
        vec![(Rule::FloatEq, 4), (Rule::FloatEq, 8), (Rule::FloatEq, 12)],
        "the integer == on line 16 must not fire"
    );
}

#[test]
fn l3_fixture_flags_inline_name_literals() {
    let got = lint_fixture("violation_l3.rs");
    assert_eq!(got, vec![(Rule::ObsNames, 4), (Rule::ObsNames, 8)]);
}

#[test]
fn l4_fixture_flags_clock_and_rng() {
    let got = lint_fixture("violation_l4.rs");
    assert_eq!(got, vec![(Rule::Determinism, 3), (Rule::Determinism, 4), (Rule::Determinism, 8)]);
}

#[test]
fn lock_order_fixture_reports_the_cycle_once() {
    let got = lint_fixture("violation_lock_order.rs");
    assert_eq!(
        got,
        vec![(Rule::LockOrder, 15)],
        "one cycle, anchored at the first conflicting acquisition site"
    );
}

#[test]
fn guard_blocking_fixture_flags_the_recv_under_guard() {
    let got = lint_fixture("violation_guard_blocking.rs");
    assert_eq!(got, vec![(Rule::GuardAcrossBlocking, 15)]);
}

#[test]
fn raii_span_fixture_flags_all_three_antipatterns() {
    let got = lint_fixture("violation_raii_span.rs");
    assert_eq!(
        got,
        vec![(Rule::RaiiSpan, 8), (Rule::RaiiSpan, 14), (Rule::RaiiSpan, 20)],
        "underscore binding, non-LIFO drop, record_span twin"
    );
}

#[test]
fn swallowed_fixture_flags_let_underscore_and_bare_drops() {
    let got = lint_fixture("violation_swallowed.rs");
    assert_eq!(
        got,
        vec![(Rule::SwallowedResult, 8), (Rule::SwallowedResult, 9), (Rule::SwallowedResult, 17),],
        "socket writes and a crate-local fallible fn"
    );
}

#[test]
fn bare_allow_fixture_is_flagged_but_still_waives() {
    let got = lint_fixture("violation_bare_allow.rs");
    assert_eq!(
        got,
        vec![(Rule::BareAllow, 5)],
        "the waive applies to the unwrap; the bare directive is the violation"
    );
}

#[test]
fn clean_fixture_is_clean() {
    assert_eq!(lint_fixture("clean.rs"), vec![]);
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let violations = lint_workspace(&root).expect("workspace readable");
    assert!(
        violations.is_empty(),
        "workspace must lint clean:\n{}",
        violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
