#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Physical query plans, pipeline decomposition and the PCM cost model.
//!
//! This crate provides the execution-plan substrate that the paper's
//! algorithms manipulate:
//!
//! * [`ops`] — physical operator trees (scans, three join algorithms with an
//!   index nested-loop variant, sorts) over the logical queries of
//!   `rqp-catalog`;
//! * [`cost`] — a classical I/O + CPU cost model with *selectivity
//!   injection*: every plan can be costed at any location of the error-prone
//!   selectivity space. The model satisfies **Plan Cost Monotonicity** (PCM,
//!   §2.4): costs are non-decreasing in every epp selectivity — the single
//!   assumption all MSO guarantees rest on;
//! * [`pipeline`] — demand-driven-iterator pipeline decomposition (§3.1.1)
//!   and the inter-/intra-pipeline total ordering of epps (§3.1.3) that
//!   determines the *spill node* of a plan;
//! * [`fingerprint`] — structural plan identity for deduplication across the
//!   thousands of optimizer calls that compile an ESS;
//! * [`stable`] — a version-stable FNV-1a hasher for fingerprints that are
//!   persisted to disk (the ESS compile cache key).

pub mod cost;
pub mod fingerprint;
pub mod ops;
pub mod pipeline;
pub mod stable;

pub use cost::{cost_cmp, cost_eq, CostModel, CostParams, PlanCtx, COST_EPS};
pub use fingerprint::Fingerprint;
pub use ops::PlanNode;
pub use pipeline::{epp_spill_order, pipelines, spill_subtree, spill_target, Pipeline};
pub use stable::StableHasher;
