//! The cost model: classical I/O + CPU formulas with selectivity injection.
//!
//! Every cost is a pure function of (plan, catalog, query, ESS location), so
//! any plan can be costed at any hypothetical location — the primitive that
//! POSP compilation, iso-cost contours and budgeted execution simulation are
//! all built on.
//!
//! **Plan Cost Monotonicity.** Each operator's cost is a sum of terms that
//! are non-decreasing in its input cardinalities and output cardinality, and
//! cardinalities are products of base cardinalities and selectivities; hence
//! the total cost is non-decreasing in every injected selectivity (verified
//! by property tests at the bottom of this file and in `rqp-ess`).

use crate::ops::PlanNode;
use rqp_catalog::{Catalog, PredId, Query, SelVector};
use serde::{Deserialize, Serialize};

/// Tunable constants of the cost model, in the spirit of PostgreSQL's
/// `seq_page_cost`-family settings. The defaults produce plan diagrams with
/// the qualitative structure the paper relies on: index nested-loops win at
/// low selectivities, hash joins at high ones, with sort-merge competitive
/// in between.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Cost of a sequentially-fetched page.
    pub seq_page: f64,
    /// Cost of a randomly-fetched page.
    pub rand_page: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of one index-structure traversal step.
    pub cpu_index: f64,
    /// CPU cost of one operator/comparison evaluation.
    pub cpu_oper: f64,
    /// Working memory in pages; larger builds/sorts pay external passes.
    pub mem_pages: f64,
    /// B-tree fanout used to derive index heights.
    pub btree_fanout: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page: 1.0,
            rand_page: 4.0,
            cpu_tuple: 0.01,
            cpu_index: 0.005,
            cpu_oper: 0.0025,
            mem_pages: 16_384.0, // 128 MiB of 8 KiB pages
            btree_fanout: 300.0,
        }
    }
}

/// Output properties of a (sub)plan at a given ESS location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanProps {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated output tuple width in bytes.
    pub width: f64,
}

impl PlanProps {
    /// Pages occupied if the output were materialized.
    pub fn pages(&self) -> f64 {
        (self.rows * self.width / rqp_catalog::stats::PAGE_SIZE as f64).max(1.0)
    }
}

/// Costing context: a query, its catalog, and an injected ESS location.
///
/// Selectivity resolution (`sel`):
/// * predicate is an epp → the location's coordinate for its dimension;
/// * non-epp equi-join → the System-R `1/max(ndv)` value (treated as exact
///   for non-error-prone predicates);
/// * non-epp filter → the selectivity recorded in the query.
#[derive(Debug, Clone, Copy)]
pub struct PlanCtx<'a> {
    /// The catalog supplying statistics.
    pub catalog: &'a Catalog,
    /// The query being planned.
    pub query: &'a Query,
    /// The injected ESS location.
    pub loc: &'a SelVector,
}

impl<'a> PlanCtx<'a> {
    /// Create a context.
    ///
    /// # Panics
    /// Panics (debug) if the location dimensionality differs from the
    /// query's epp count.
    pub fn new(catalog: &'a Catalog, query: &'a Query, loc: &'a SelVector) -> Self {
        debug_assert_eq!(query.dims(), loc.dims(), "location dims must equal query epp count");
        PlanCtx { catalog, query, loc }
    }

    /// Resolve the selectivity of any predicate of the query under this
    /// context's injected location.
    pub fn sel(&self, pred: PredId) -> f64 {
        if let Some(dim) = self.query.epp_dim(pred) {
            return self.loc.get(dim.0).value();
        }
        if let Some(j) = self.query.join(pred) {
            let ndv_l = self.catalog.relation(j.left.rel).columns[j.left.col].ndv;
            let ndv_r = self.catalog.relation(j.right.rel).columns[j.right.col].ndv;
            return 1.0 / ndv_l.max(ndv_r) as f64;
        }
        if let Some(f) = self.query.filter(pred) {
            return f.selectivity;
        }
        // Unknown predicate: a programmer error upstream. Degrade to the
        // PCM-safe worst case (selectivity 1.0) instead of aborting.
        debug_assert!(false, "predicate {pred} not part of query {}", self.query.name);
        1.0
    }

    fn sel_product(&self, preds: &[PredId]) -> f64 {
        preds.iter().map(|&p| self.sel(p)).product()
    }
}

/// The cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Model constants.
    pub params: CostParams,
}

impl CostModel {
    /// A model with the given constants.
    pub fn new(params: CostParams) -> Self {
        CostModel { params }
    }

    /// Height of the B-tree index on a relation of `rows` tuples.
    fn btree_height(&self, rows: f64) -> f64 {
        (rows.max(2.0).ln() / self.params.btree_fanout.ln()).ceil().max(1.0)
    }

    /// Total cost of executing `plan` under `ctx`.
    pub fn cost(&self, plan: &PlanNode, ctx: &PlanCtx<'_>) -> f64 {
        self.cost_with_props(plan, ctx).0
    }

    // ---- incremental operator helpers -----------------------------------
    //
    // The DP optimizer costs thousands of candidate joins per invocation;
    // these helpers compute an operator's (cost, props) from its children's
    // (cost, props) in O(1). `cost_with_props` delegates to them, so the
    // recursive and incremental paths cannot diverge.

    /// Cost of a sequential scan of relation `rel` applying `n_filters`
    /// filters whose combined selectivity is `filter_sel`.
    pub fn seq_scan_cost(
        &self,
        rel: &rqp_catalog::Relation,
        filter_sel: f64,
        n_filters: usize,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let rows_in = rel.rows as f64;
        let cost = rel.pages() as f64 * p.seq_page
            + rows_in * p.cpu_tuple
            + rows_in * n_filters as f64 * p.cpu_oper;
        (cost, PlanProps { rows: rows_in * filter_sel, width: rel.tuple_width() as f64 })
    }

    /// Cost of an index scan of `rel` driven by a sarg of selectivity
    /// `sarg_sel`, with `n_residual` residual filters of combined
    /// selectivity `residual_sel`.
    pub fn index_scan_cost(
        &self,
        rel: &rqp_catalog::Relation,
        sarg_sel: f64,
        residual_sel: f64,
        n_residual: usize,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let rows_in = rel.rows as f64;
        let fetched = rows_in * sarg_sel;
        let cost = self.btree_height(rows_in) * p.rand_page
            + fetched.min(rel.pages() as f64) * p.rand_page
            + fetched * (p.cpu_index + p.cpu_tuple)
            + fetched * n_residual as f64 * p.cpu_oper;
        (cost, PlanProps { rows: fetched * residual_sel, width: rel.tuple_width() as f64 })
    }

    /// Cost of sorting an input.
    pub fn sort_cost(&self, input: (f64, PlanProps)) -> (f64, PlanProps) {
        let p = &self.params;
        let (c_in, props) = input;
        let n = props.rows.max(1.0);
        let mut cost = c_in + n * n.max(2.0).log2() * p.cpu_oper;
        let pages = props.pages();
        if pages > p.mem_pages {
            cost += 2.0 * pages * p.seq_page;
        }
        (cost, props)
    }

    /// Cost of hash-aggregating an input into at most `group_cap` groups
    /// (the product of the grouping columns' NDVs).
    pub fn hash_aggregate_cost(&self, input: (f64, PlanProps), group_cap: f64) -> (f64, PlanProps) {
        let p = &self.params;
        let (c_in, props) = input;
        let groups = props.rows.min(group_cap.max(1.0));
        let out = PlanProps { rows: groups, width: props.width };
        let mut cost = c_in + props.rows * (p.cpu_tuple + p.cpu_oper) + groups * p.cpu_tuple;
        let table_pages = out.pages();
        if table_pages > p.mem_pages {
            // spill the hash table once
            cost += 2.0 * table_pages * p.seq_page;
        }
        (cost, out)
    }

    /// Cost of streaming aggregation over an input already sorted on the
    /// grouping columns.
    pub fn sort_aggregate_cost(&self, input: (f64, PlanProps), group_cap: f64) -> (f64, PlanProps) {
        let p = &self.params;
        let (c_in, props) = input;
        let groups = props.rows.min(group_cap.max(1.0));
        let cost = c_in + props.rows * p.cpu_oper + groups * p.cpu_tuple;
        (cost, PlanProps { rows: groups, width: props.width })
    }

    /// Cost of a hash join given build/probe inputs and the combined join
    /// selectivity.
    pub fn hash_join_cost(
        &self,
        build: (f64, PlanProps),
        probe: (f64, PlanProps),
        join_sel: f64,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let (cb, pb) = build;
        let (cp, pp) = probe;
        let out = pb.rows * pp.rows * join_sel;
        let mut cost = cb
            + cp
            + pb.rows * (p.cpu_tuple + p.cpu_oper)
            + pp.rows * (p.cpu_tuple + p.cpu_oper)
            + out * p.cpu_tuple;
        if pb.pages() > p.mem_pages {
            cost += 2.0 * (pb.pages() + pp.pages()) * p.seq_page;
        }
        (cost, PlanProps { rows: out, width: pb.width + pp.width })
    }

    /// Cost of merging two *already sorted* inputs.
    pub fn merge_join_cost(
        &self,
        left: (f64, PlanProps),
        right: (f64, PlanProps),
        join_sel: f64,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let (cl, pl) = left;
        let (cr, pr) = right;
        let out = pl.rows * pr.rows * join_sel;
        let cost = cl + cr + (pl.rows + pr.rows) * p.cpu_oper + out * p.cpu_tuple;
        (cost, PlanProps { rows: out, width: pl.width + pr.width })
    }

    /// Cost of a (materialized-inner) nested-loop join.
    pub fn nest_loop_cost(
        &self,
        outer: (f64, PlanProps),
        inner: (f64, PlanProps),
        join_sel: f64,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let (co, po) = outer;
        let (ci, pi) = inner;
        let out = po.rows * pi.rows * join_sel;
        let cost =
            co + ci + pi.pages() * p.seq_page + po.rows * pi.rows * p.cpu_oper + out * p.cpu_tuple;
        (cost, PlanProps { rows: out, width: po.width + pi.width })
    }

    /// Cost of an index nested-loop join probing `inner_rel` with a lookup
    /// predicate of selectivity `lookup_sel`; `residual_sel` is the combined
    /// selectivity of the `n_residual` residual join predicates and inner
    /// filters.
    pub fn index_nest_loop_cost(
        &self,
        outer: (f64, PlanProps),
        inner_rel: &rqp_catalog::Relation,
        lookup_sel: f64,
        residual_sel: f64,
        n_residual: usize,
    ) -> (f64, PlanProps) {
        let p = &self.params;
        let (co, po) = outer;
        let inner_rows = inner_rel.rows as f64;
        let matches_total = po.rows * inner_rows * lookup_sel;
        let out = matches_total * residual_sel;
        // per probe: one leaf fetch (upper levels assumed cached) plus a CPU
        // descent; matches of one key are clustered, so heap fetches
        // amortize over the tuples sharing a page
        let rows_per_page =
            (rqp_catalog::stats::PAGE_SIZE as f64 / inner_rel.tuple_width() as f64).max(1.0);
        let cost = co
            + po.rows * (p.rand_page + self.btree_height(inner_rows) * p.cpu_index)
            + (matches_total / rows_per_page) * p.rand_page
            + matches_total * p.cpu_tuple
            + matches_total * n_residual as f64 * p.cpu_oper
            + out * p.cpu_tuple;
        (cost, PlanProps { rows: out, width: po.width + inner_rel.tuple_width() as f64 })
    }

    /// Total cost plus output properties.
    pub fn cost_with_props(&self, plan: &PlanNode, ctx: &PlanCtx<'_>) -> (f64, PlanProps) {
        match plan {
            PlanNode::SeqScan { rel, filters } => self.seq_scan_cost(
                ctx.catalog.relation(*rel),
                ctx.sel_product(filters),
                filters.len(),
            ),
            PlanNode::IndexScan { rel, sarg, filters } => self.index_scan_cost(
                ctx.catalog.relation(*rel),
                ctx.sel(*sarg),
                ctx.sel_product(filters),
                filters.len(),
            ),
            PlanNode::Sort { input } => self.sort_cost(self.cost_with_props(input, ctx)),
            PlanNode::HashAggregate { input, groups } => self
                .hash_aggregate_cost(self.cost_with_props(input, ctx), group_ndv_cap(ctx, groups)),
            PlanNode::SortAggregate { input, groups } => self
                .sort_aggregate_cost(self.cost_with_props(input, ctx), group_ndv_cap(ctx, groups)),
            PlanNode::HashJoin { build, probe, preds } => self.hash_join_cost(
                self.cost_with_props(build, ctx),
                self.cost_with_props(probe, ctx),
                ctx.sel_product(preds),
            ),
            PlanNode::MergeJoin { left, right, preds } => self.merge_join_cost(
                self.cost_with_props(left, ctx),
                self.cost_with_props(right, ctx),
                ctx.sel_product(preds),
            ),
            PlanNode::NestLoop { outer, inner, preds } => self.nest_loop_cost(
                self.cost_with_props(outer, ctx),
                self.cost_with_props(inner, ctx),
                ctx.sel_product(preds),
            ),
            PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters } => {
                let residual_sel = ctx.sel_product(inner_filters) * ctx.sel_product(preds);
                self.index_nest_loop_cost(
                    self.cost_with_props(outer, ctx),
                    ctx.catalog.relation(*inner_rel),
                    ctx.sel(*lookup),
                    residual_sel,
                    inner_filters.len() + preds.len(),
                )
            }
        }
    }
}

/// Relative tolerance for comparing plan costs and selectivities.
///
/// Costs are chains of f64 products and sums; two mathematically equal
/// costs computed along different association orders can differ by a few
/// ulps. Everything in the workspace that asks "are these costs equal?" or
/// "is this cost strictly larger?" must go through [`cost_eq`] /
/// [`cost_cmp`] with this tolerance rather than raw `==` on floats (the
/// `rqp-lint` L2 rule enforces this).
pub const COST_EPS: f64 = 1e-9;

/// Whether two cost/selectivity values are equal within [`COST_EPS`]
/// relative tolerance (absolute near zero).
#[must_use]
pub fn cost_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= COST_EPS * scale
}

/// Total order on cost values that collapses [`cost_eq`] pairs to
/// `Ordering::Equal`; NaNs order via `f64::total_cmp`.
#[must_use]
pub fn cost_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    if cost_eq(a, b) {
        std::cmp::Ordering::Equal
    } else {
        a.total_cmp(&b)
    }
}

/// Upper bound on the number of groups: the product of the grouping
/// columns' distinct-value counts.
fn group_ndv_cap(ctx: &PlanCtx<'_>, groups: &[rqp_catalog::ColRef]) -> f64 {
    groups.iter().map(|g| ctx.catalog.relation(g.rel).columns[g.col].ndv as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    fn seq(catalog: &Catalog, name: &str, filters: Vec<PredId>) -> PlanNode {
        PlanNode::SeqScan { rel: catalog.find_relation(name).unwrap(), filters }
    }

    fn two_join_plan(catalog: &Catalog, query: &Query) -> PlanNode {
        let j_pl = query.epps[0];
        let j_ol = query.epps[1];
        let filter = query.filters[0].id;
        PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: Box::new(seq(catalog, "part", vec![filter])),
                probe: Box::new(seq(catalog, "lineitem", vec![])),
                preds: vec![j_pl],
            }),
            probe: Box::new(seq(catalog, "orders", vec![])),
            preds: vec![j_ol],
        }
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let (catalog, query) = fixture();
        let plan = two_join_plan(&catalog, &query);
        let model = CostModel::default();
        for loc in [
            SelVector::from_values(&[1e-6, 1e-6]),
            SelVector::from_values(&[0.5, 0.5]),
            SelVector::from_values(&[1.0, 1.0]),
        ] {
            let ctx = PlanCtx::new(&catalog, &query, &loc);
            let (c, props) = model.cost_with_props(&plan, &ctx);
            assert!(c.is_finite() && c > 0.0);
            assert!(props.rows >= 0.0);
            assert!(props.width > 0.0);
        }
    }

    #[test]
    fn pcm_holds_along_each_dimension() {
        let (catalog, query) = fixture();
        let plan = two_join_plan(&catalog, &query);
        let model = CostModel::default();
        let mut prev = 0.0;
        for i in 0..20 {
            let s = 10f64.powf(-6.0 + 6.0 * i as f64 / 19.0);
            let loc = SelVector::from_values(&[s, 1e-4]);
            let ctx = PlanCtx::new(&catalog, &query, &loc);
            let c = model.cost(&plan, &ctx);
            assert!(c >= prev, "PCM violated at step {i}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn index_nest_loop_beats_hash_join_at_tiny_selectivity() {
        let (catalog, query) = fixture();
        let model = CostModel::default();
        let j_pl = query.epps[0];
        let filter = query.filters[0].id;
        let hj = PlanNode::HashJoin {
            build: Box::new(seq(&catalog, "part", vec![filter])),
            probe: Box::new(seq(&catalog, "lineitem", vec![])),
            preds: vec![j_pl],
        };
        let inl = PlanNode::IndexNestLoop {
            outer: Box::new(seq(&catalog, "part", vec![filter])),
            inner_rel: catalog.find_relation("lineitem").unwrap(),
            lookup: j_pl,
            preds: vec![],
            inner_filters: vec![],
        };
        let lo = SelVector::from_values(&[1e-8, 1e-8]);
        let hi = SelVector::from_values(&[0.9, 1e-8]);
        let ctx_lo = PlanCtx::new(&catalog, &query, &lo);
        let ctx_hi = PlanCtx::new(&catalog, &query, &hi);
        assert!(
            model.cost(&inl, &ctx_lo) < model.cost(&hj, &ctx_lo),
            "index NL should win at tiny selectivity"
        );
        assert!(
            model.cost(&hj, &ctx_hi) < model.cost(&inl, &ctx_hi),
            "hash join should win at large selectivity"
        );
    }

    #[test]
    fn sel_resolution_covers_all_predicate_kinds() {
        let (catalog, query) = fixture();
        let loc = SelVector::from_values(&[0.25, 0.75]);
        let ctx = PlanCtx::new(&catalog, &query, &loc);
        assert_eq!(ctx.sel(query.epps[0]), 0.25);
        assert_eq!(ctx.sel(query.epps[1]), 0.75);
        assert_eq!(ctx.sel(query.filters[0].id), 0.05);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not part of query")]
    fn unknown_predicate_selectivity_panics() {
        let (catalog, query) = fixture();
        let loc = SelVector::from_values(&[0.5, 0.5]);
        let ctx = PlanCtx::new(&catalog, &query, &loc);
        ctx.sel(PredId(99));
    }

    #[test]
    fn cost_eq_and_cmp_respect_the_epsilon() {
        use std::cmp::Ordering;
        assert!(cost_eq(1.0, 1.0 + 1e-12));
        assert!(cost_eq(1e6, 1e6 * (1.0 + 1e-10)));
        assert!(!cost_eq(1.0, 1.0 + 1e-6));
        assert!(cost_eq(0.0, 1e-12), "absolute tolerance near zero");
        assert_eq!(cost_cmp(1.0, 1.0 + 1e-12), Ordering::Equal);
        assert_eq!(cost_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(cost_cmp(2.0, 1.0), Ordering::Greater);
    }

    #[test]
    fn sort_adds_external_pass_above_memory() {
        let (catalog, query) = fixture();
        let model = CostModel::default();
        let loc = SelVector::from_values(&[1e-8, 1e-8]);
        let ctx = PlanCtx::new(&catalog, &query, &loc);
        let small = PlanNode::Sort { input: Box::new(seq(&catalog, "part", vec![])) };
        let large = PlanNode::Sort { input: Box::new(seq(&catalog, "lineitem", vec![])) };
        let (c_small, p_small) = model.cost_with_props(&small, &ctx);
        let (c_large, p_large) = model.cost_with_props(&large, &ctx);
        assert!(p_large.pages() > model.params.mem_pages);
        // the large sort pays the extra I/O pass on top of its scan cost
        let scan_large = model.cost(&seq(&catalog, "lineitem", vec![]), &ctx);
        let scan_small = model.cost(&seq(&catalog, "part", vec![]), &ctx);
        assert!((c_large - scan_large) > (c_small - scan_small) * 10.0);
        assert!(p_small.pages() > 0.0);
    }

    #[test]
    fn hash_join_children_commute_in_output_but_not_cost() {
        let (catalog, query) = fixture();
        let model = CostModel::default();
        let loc = SelVector::from_values(&[1e-4, 1e-4]);
        let ctx = PlanCtx::new(&catalog, &query, &loc);
        let j = query.epps[0];
        let a = PlanNode::HashJoin {
            build: Box::new(seq(&catalog, "part", vec![])),
            probe: Box::new(seq(&catalog, "lineitem", vec![])),
            preds: vec![j],
        };
        let b = PlanNode::HashJoin {
            build: Box::new(seq(&catalog, "lineitem", vec![])),
            probe: Box::new(seq(&catalog, "part", vec![])),
            preds: vec![j],
        };
        let (ca, pa) = model.cost_with_props(&a, &ctx);
        let (cb, pb) = model.cost_with_props(&b, &ctx);
        assert!((pa.rows - pb.rows).abs() < 1e-6);
        assert!(ca < cb, "building on the smaller side must be cheaper");
    }
}
