//! Physical operator trees.

use rqp_catalog::{ColRef, PredId, RelId};
use serde::{Deserialize, Serialize};

/// A physical execution plan node.
///
/// Plans are ordinary owned trees: they are small (tens of nodes), cloned
/// rarely, and owning boxes keep subtree extraction for spill-mode execution
/// trivial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanNode {
    /// Full scan of a base relation, applying the given filter predicates
    /// on the fly.
    SeqScan {
        /// Scanned relation.
        rel: RelId,
        /// Filter predicates evaluated during the scan.
        filters: Vec<PredId>,
    },
    /// B-tree index scan of a base relation driven by one sargable filter
    /// predicate; remaining filters are applied as residuals.
    IndexScan {
        /// Scanned relation.
        rel: RelId,
        /// The indexed filter predicate used as the search argument.
        sarg: PredId,
        /// Residual filter predicates.
        filters: Vec<PredId>,
    },
    /// Blocking sort of the input (used below merge joins).
    Sort {
        /// The sorted input.
        input: Box<PlanNode>,
    },
    /// Hash join: `build` side is consumed into a hash table (blocking),
    /// then `probe` streams through.
    HashJoin {
        /// Hash-table side.
        build: Box<PlanNode>,
        /// Streaming side.
        probe: Box<PlanNode>,
        /// Join predicates applied at this node.
        preds: Vec<PredId>,
    },
    /// Merge join over two sorted inputs.
    MergeJoin {
        /// Left sorted input.
        left: Box<PlanNode>,
        /// Right sorted input.
        right: Box<PlanNode>,
        /// Join predicates applied at this node.
        preds: Vec<PredId>,
    },
    /// Tuple nested-loop join with the inner side materialized once.
    NestLoop {
        /// Outer (driving) input.
        outer: Box<PlanNode>,
        /// Inner input, materialized and rescanned per outer tuple.
        inner: Box<PlanNode>,
        /// Join predicates applied at this node.
        preds: Vec<PredId>,
    },
    /// Hash aggregation of the input by grouping columns (blocking).
    HashAggregate {
        /// Aggregated input.
        input: Box<PlanNode>,
        /// Grouping columns.
        groups: Vec<ColRef>,
    },
    /// Streaming aggregation over an input sorted on the grouping columns.
    SortAggregate {
        /// Aggregated input (must be sorted on `groups`).
        input: Box<PlanNode>,
        /// Grouping columns.
        groups: Vec<ColRef>,
    },
    /// Index nested-loop join: for each outer tuple, probe the B-tree index
    /// on the inner base relation's join column.
    IndexNestLoop {
        /// Outer (driving) input.
        outer: Box<PlanNode>,
        /// Inner base relation probed via its index.
        inner_rel: RelId,
        /// The join predicate whose inner column is indexed (the lookup key).
        lookup: PredId,
        /// Additional join predicates applied as residuals.
        preds: Vec<PredId>,
        /// Filters on the inner relation applied after each fetch.
        inner_filters: Vec<PredId>,
    },
}

impl PlanNode {
    /// Child subtrees, in execution-relevant order.
    pub fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => vec![],
            PlanNode::Sort { input }
            | PlanNode::HashAggregate { input, .. }
            | PlanNode::SortAggregate { input, .. } => vec![input],
            PlanNode::HashJoin { build, probe, .. } => vec![build, probe],
            PlanNode::MergeJoin { left, right, .. } => vec![left, right],
            PlanNode::NestLoop { outer, inner, .. } => vec![outer, inner],
            PlanNode::IndexNestLoop { outer, .. } => vec![outer],
        }
    }

    /// All join predicates applied at this node (empty for scans/sorts).
    pub fn join_preds(&self) -> &[PredId] {
        match self {
            PlanNode::HashJoin { preds, .. }
            | PlanNode::MergeJoin { preds, .. }
            | PlanNode::NestLoop { preds, .. } => preds,
            PlanNode::IndexNestLoop { preds, .. } => preds,
            _ => &[],
        }
    }

    /// Every predicate evaluated at this node, joins and filters alike.
    /// For [`PlanNode::IndexNestLoop`] this includes the lookup predicate
    /// and the inner filters; for scans, the sarg and filters.
    pub fn local_preds(&self) -> Vec<PredId> {
        match self {
            PlanNode::SeqScan { filters, .. } => filters.clone(),
            PlanNode::IndexScan { sarg, filters, .. } => {
                let mut v = vec![*sarg];
                v.extend_from_slice(filters);
                v
            }
            PlanNode::Sort { .. }
            | PlanNode::HashAggregate { .. }
            | PlanNode::SortAggregate { .. } => vec![],
            PlanNode::HashJoin { preds, .. }
            | PlanNode::MergeJoin { preds, .. }
            | PlanNode::NestLoop { preds, .. } => preds.clone(),
            PlanNode::IndexNestLoop { lookup, preds, inner_filters, .. } => {
                let mut v = vec![*lookup];
                v.extend_from_slice(preds);
                v.extend_from_slice(inner_filters);
                v
            }
        }
    }

    /// The base relations contributing to this subtree.
    pub fn base_relations(&self) -> Vec<RelId> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut Vec<RelId>) {
        match self {
            PlanNode::SeqScan { rel, .. } | PlanNode::IndexScan { rel, .. } => out.push(*rel),
            PlanNode::IndexNestLoop { outer, inner_rel, .. } => {
                outer.collect_relations(out);
                out.push(*inner_rel);
            }
            _ => {
                for c in self.children() {
                    c.collect_relations(out);
                }
            }
        }
    }

    /// Number of nodes in the subtree (counting the implicit inner index
    /// scan of an [`PlanNode::IndexNestLoop`] as one node).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
            + matches!(self, PlanNode::IndexNestLoop { .. }) as usize
    }

    /// Find the unique node at which predicate `pred` is evaluated, if any.
    pub fn node_evaluating(&self, pred: PredId) -> Option<&PlanNode> {
        if self.local_preds().contains(&pred) {
            return Some(self);
        }
        self.children().into_iter().find_map(|c| c.node_evaluating(pred))
    }

    /// Short operator name for display.
    pub fn op_name(&self) -> &'static str {
        match self {
            PlanNode::SeqScan { .. } => "SeqScan",
            PlanNode::IndexScan { .. } => "IndexScan",
            PlanNode::Sort { .. } => "Sort",
            PlanNode::HashAggregate { .. } => "HashAgg",
            PlanNode::SortAggregate { .. } => "SortAgg",
            PlanNode::HashJoin { .. } => "HashJoin",
            PlanNode::MergeJoin { .. } => "MergeJoin",
            PlanNode::NestLoop { .. } => "NestLoop",
            PlanNode::IndexNestLoop { .. } => "IdxNestLoop",
        }
    }

    /// Render the plan as an indented operator tree.
    pub fn render(&self, catalog: &rqp_catalog::Catalog) -> String {
        let mut s = String::new();
        self.render_into(catalog, 0, &mut s);
        s
    }

    fn render_into(&self, catalog: &rqp_catalog::Catalog, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PlanNode::SeqScan { rel, filters } => {
                let _ = writeln!(
                    out,
                    "{pad}SeqScan {} {:?}",
                    catalog.relation(*rel).name,
                    filters.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
            }
            PlanNode::IndexScan { rel, sarg, filters } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexScan {} sarg={sarg} {:?}",
                    catalog.relation(*rel).name,
                    filters.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
            }
            PlanNode::Sort { input } => {
                let _ = writeln!(out, "{pad}Sort");
                input.render_into(catalog, depth + 1, out);
            }
            PlanNode::HashAggregate { input, groups }
            | PlanNode::SortAggregate { input, groups } => {
                let _ = writeln!(out, "{pad}{} ({} group cols)", self.op_name(), groups.len());
                input.render_into(catalog, depth + 1, out);
            }
            PlanNode::HashJoin { build, probe, preds } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin {:?}",
                    preds.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
                build.render_into(catalog, depth + 1, out);
                probe.render_into(catalog, depth + 1, out);
            }
            PlanNode::MergeJoin { left, right, preds } => {
                let _ = writeln!(
                    out,
                    "{pad}MergeJoin {:?}",
                    preds.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
                left.render_into(catalog, depth + 1, out);
                right.render_into(catalog, depth + 1, out);
            }
            PlanNode::NestLoop { outer, inner, preds } => {
                let _ = writeln!(
                    out,
                    "{pad}NestLoop {:?}",
                    preds.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
                outer.render_into(catalog, depth + 1, out);
                inner.render_into(catalog, depth + 1, out);
            }
            PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters } => {
                let _ = writeln!(
                    out,
                    "{pad}IdxNestLoop {} lookup={lookup} {:?} inner_filters={:?}",
                    catalog.relation(*inner_rel).name,
                    preds.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
                    inner_filters.iter().map(|p| p.to_string()).collect::<Vec<_>>()
                );
                outer.render_into(catalog, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: u32) -> PlanNode {
        PlanNode::SeqScan { rel: RelId(r), filters: vec![] }
    }

    #[test]
    fn children_and_counts() {
        let p = PlanNode::HashJoin {
            build: Box::new(scan(0)),
            probe: Box::new(PlanNode::Sort { input: Box::new(scan(1)) }),
            preds: vec![PredId(0)],
        };
        assert_eq!(p.children().len(), 2);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.base_relations(), vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn index_nest_loop_counts_inner_relation() {
        let p = PlanNode::IndexNestLoop {
            outer: Box::new(scan(0)),
            inner_rel: RelId(1),
            lookup: PredId(0),
            preds: vec![],
            inner_filters: vec![PredId(1)],
        };
        assert_eq!(p.base_relations(), vec![RelId(0), RelId(1)]);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.local_preds(), vec![PredId(0), PredId(1)]);
    }

    #[test]
    fn node_evaluating_finds_deep_predicate() {
        let inner = PlanNode::SeqScan { rel: RelId(1), filters: vec![PredId(7)] };
        let p = PlanNode::NestLoop {
            outer: Box::new(scan(0)),
            inner: Box::new(inner),
            preds: vec![PredId(3)],
        };
        assert_eq!(p.node_evaluating(PredId(3)).unwrap().op_name(), "NestLoop");
        assert_eq!(p.node_evaluating(PredId(7)).unwrap().op_name(), "SeqScan");
        assert!(p.node_evaluating(PredId(9)).is_none());
    }

    #[test]
    fn local_preds_of_index_scan_lists_sarg_first() {
        let p = PlanNode::IndexScan { rel: RelId(0), sarg: PredId(2), filters: vec![PredId(5)] };
        assert_eq!(p.local_preds(), vec![PredId(2), PredId(5)]);
    }
}
