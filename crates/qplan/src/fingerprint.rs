//! Structural plan identity.
//!
//! POSP compilation invokes the optimizer at every grid location of the ESS;
//! the same physical plan is typically optimal over a large region, so plans
//! are deduplicated by a structural fingerprint before being registered in
//! the plan registry of `rqp-ess`.

use crate::ops::PlanNode;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A structural fingerprint of a plan: equal plans (same operators, shapes,
/// relations and predicate placement) hash equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint a plan.
    pub fn of(plan: &PlanNode) -> Fingerprint {
        let mut h = DefaultHasher::new();
        hash_node(plan, &mut h);
        Fingerprint(h.finish())
    }
}

fn hash_node(node: &PlanNode, h: &mut DefaultHasher) {
    match node {
        PlanNode::SeqScan { rel, filters } => {
            0u8.hash(h);
            rel.0.hash(h);
            for f in filters {
                f.0.hash(h);
            }
        }
        PlanNode::IndexScan { rel, sarg, filters } => {
            1u8.hash(h);
            rel.0.hash(h);
            sarg.0.hash(h);
            for f in filters {
                f.0.hash(h);
            }
        }
        PlanNode::Sort { input } => {
            2u8.hash(h);
            hash_node(input, h);
        }
        PlanNode::HashJoin { build, probe, preds } => {
            3u8.hash(h);
            for p in preds {
                p.0.hash(h);
            }
            hash_node(build, h);
            hash_node(probe, h);
        }
        PlanNode::MergeJoin { left, right, preds } => {
            4u8.hash(h);
            for p in preds {
                p.0.hash(h);
            }
            hash_node(left, h);
            hash_node(right, h);
        }
        PlanNode::NestLoop { outer, inner, preds } => {
            5u8.hash(h);
            for p in preds {
                p.0.hash(h);
            }
            hash_node(outer, h);
            hash_node(inner, h);
        }
        PlanNode::HashAggregate { input, groups } => {
            7u8.hash(h);
            for g in groups {
                g.rel.0.hash(h);
                g.col.hash(h);
            }
            hash_node(input, h);
        }
        PlanNode::SortAggregate { input, groups } => {
            8u8.hash(h);
            for g in groups {
                g.rel.0.hash(h);
                g.col.hash(h);
            }
            hash_node(input, h);
        }
        PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters } => {
            6u8.hash(h);
            inner_rel.0.hash(h);
            lookup.0.hash(h);
            for p in preds {
                p.0.hash(h);
            }
            for p in inner_filters {
                p.0.hash(h);
            }
            hash_node(outer, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{PredId, RelId};

    fn scan(r: u32) -> PlanNode {
        PlanNode::SeqScan { rel: RelId(r), filters: vec![] }
    }

    #[test]
    fn equal_plans_have_equal_fingerprints() {
        let a = PlanNode::HashJoin {
            build: Box::new(scan(0)),
            probe: Box::new(scan(1)),
            preds: vec![PredId(0)],
        };
        let b = a.clone();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn swapped_sides_differ() {
        let a = PlanNode::HashJoin {
            build: Box::new(scan(0)),
            probe: Box::new(scan(1)),
            preds: vec![PredId(0)],
        };
        let b = PlanNode::HashJoin {
            build: Box::new(scan(1)),
            probe: Box::new(scan(0)),
            preds: vec![PredId(0)],
        };
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn operator_kind_distinguishes() {
        let a = PlanNode::HashJoin {
            build: Box::new(scan(0)),
            probe: Box::new(scan(1)),
            preds: vec![PredId(0)],
        };
        let b = PlanNode::MergeJoin {
            left: Box::new(scan(0)),
            right: Box::new(scan(1)),
            preds: vec![PredId(0)],
        };
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }

    #[test]
    fn filter_placement_distinguishes() {
        let a = PlanNode::SeqScan { rel: RelId(0), filters: vec![PredId(1)] };
        let b = PlanNode::SeqScan { rel: RelId(0), filters: vec![] };
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&b));
    }
}
