//! Stable 64-bit hashing for on-disk cache keys.
//!
//! `std::hash::DefaultHasher` makes no promise about producing the same
//! digest across Rust releases (or even across processes, for keyed
//! hashers), so nothing persisted to disk may key off it. This module is a
//! fixed FNV-1a/64 implementation with explicit input encoding: every value
//! is fed in as little-endian bytes (floats via their IEEE-754 bit
//! patterns, strings length-prefixed), so a fingerprint computed today
//! matches one computed by any future build over the same inputs.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hasher with an explicit, stable input encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feed one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feed a `u32` as little-endian bytes.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a `usize` widened to `u64` (so 32- and 64-bit builds agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed an `f64` via its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feed a bool as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feed a length-prefixed string (the prefix keeps `("ab","c")` and
    /// `("a","bc")` distinct).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Noll).
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = StableHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn string_prefix_disambiguates_concatenation() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_uses_exact_bits() {
        let mut a = StableHasher::new();
        a.write_f64(0.1 + 0.2);
        let mut b = StableHasher::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 bit-wise; a stable fingerprint must see that
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_f64(0.3);
        assert_eq!(b.finish(), c.finish());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = StableHasher::new();
        a.write_u32(1);
        a.write_u32(2);
        let mut b = StableHasher::new();
        b.write_u32(2);
        b.write_u32(1);
        assert_ne!(a.finish(), b.finish());
    }
}
