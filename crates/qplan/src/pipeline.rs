//! Pipeline decomposition and spill-node identification (§3.1).
//!
//! Under the demand-driven iterator model a plan executes as a sequence of
//! *pipelines* — maximal concurrently-executing subtrees — separated by
//! blocking operators (hash-table builds, sorts, inner materializations).
//! The paper's spilling machinery needs a *total order* over the epps of a
//! plan, combining:
//!
//! * **inter-pipeline ordering** — epps follow the execution order of their
//!   pipelines, and
//! * **intra-pipeline ordering** — an epp downstream of another within the
//!   same pipeline comes later.
//!
//! The *spill node* of a plan is the node of the first not-yet-learnt epp in
//! this order; every predicate upstream of it then has an exactly-known
//! selectivity (it is either not error-prone or was learnt earlier), which
//! is what makes the half-space-pruning lemma (Lemma 3.1) sound.

use crate::ops::PlanNode;
use rqp_catalog::{EppId, PredId, Query};
use std::collections::BTreeSet;

/// One pipeline of a plan: the operator names it contains, in upstream-to-
/// downstream order, for display and testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// Operator names, upstream first.
    pub ops: Vec<String>,
}

/// Decompose a plan into its pipelines, in execution (completion) order.
///
/// Blocking boundaries: the build side of a hash join, the input of a sort,
/// and the materialized inner of a nested-loop join each terminate a
/// pipeline; the blocking operator's consumer starts/continues a later one.
pub fn pipelines(plan: &PlanNode) -> Vec<Pipeline> {
    let mut done = Vec::new();
    let current = collect_pipelines(plan, &mut done);
    done.push(current);
    done
}

/// Returns the pipeline still being built at `node` (the one `node`'s parent
/// would extend); completed pipelines are pushed to `done` in execution
/// order.
fn collect_pipelines(node: &PlanNode, done: &mut Vec<Pipeline>) -> Pipeline {
    match node {
        PlanNode::SeqScan { .. } | PlanNode::IndexScan { .. } => {
            Pipeline { ops: vec![node.op_name().to_string()] }
        }
        PlanNode::Sort { input } => {
            let mut inp = collect_pipelines(input, done);
            inp.ops.push("Sort(write)".to_string());
            done.push(inp);
            Pipeline { ops: vec!["Sort(read)".to_string()] }
        }
        PlanNode::HashAggregate { input, .. } => {
            // blocking: the input pipeline fills the hash table
            let mut inp = collect_pipelines(input, done);
            inp.ops.push("HashAgg(build)".to_string());
            done.push(inp);
            Pipeline { ops: vec!["HashAgg(read)".to_string()] }
        }
        PlanNode::SortAggregate { input, .. } => {
            // streaming: groups emit as the sorted input flows
            let mut inp = collect_pipelines(input, done);
            inp.ops.push("SortAgg".to_string());
            inp
        }
        PlanNode::HashJoin { build, probe, .. } => {
            let mut b = collect_pipelines(build, done);
            b.ops.push("HashBuild".to_string());
            done.push(b);
            let mut p = collect_pipelines(probe, done);
            p.ops.push(node.op_name().to_string());
            p
        }
        PlanNode::MergeJoin { left, right, .. } => {
            // both inputs stream concurrently into the merge: their open
            // pipelines fuse with the merge-join pipeline
            let l = collect_pipelines(left, done);
            let r = collect_pipelines(right, done);
            let mut ops = l.ops;
            ops.extend(r.ops);
            ops.push(node.op_name().to_string());
            Pipeline { ops }
        }
        PlanNode::NestLoop { outer, inner, .. } => {
            let mut i = collect_pipelines(inner, done);
            i.ops.push("Materialize".to_string());
            done.push(i);
            let mut o = collect_pipelines(outer, done);
            o.ops.push(node.op_name().to_string());
            o
        }
        PlanNode::IndexNestLoop { outer, .. } => {
            let mut o = collect_pipelines(outer, done);
            o.ops.push(node.op_name().to_string());
            o
        }
    }
}

/// The epps of the plan in spill total order (§3.1.3): blocking children
/// first (inter-pipeline rule), upstream before downstream within a pipeline
/// (intra-pipeline rule). Only predicates that are epps of `query` are
/// emitted.
pub fn epp_spill_order(plan: &PlanNode, query: &Query) -> Vec<EppId> {
    let mut preds = Vec::new();
    emit_preds(plan, &mut preds);
    preds.into_iter().filter_map(|p| query.epp_dim(p)).collect()
}

fn emit_preds(node: &PlanNode, out: &mut Vec<PredId>) {
    match node {
        PlanNode::SeqScan { filters, .. } => out.extend_from_slice(filters),
        PlanNode::IndexScan { sarg, filters, .. } => {
            out.push(*sarg);
            out.extend_from_slice(filters);
        }
        PlanNode::Sort { input }
        | PlanNode::HashAggregate { input, .. }
        | PlanNode::SortAggregate { input, .. } => emit_preds(input, out),
        PlanNode::HashJoin { build, probe, preds } => {
            emit_preds(build, out);
            emit_preds(probe, out);
            out.extend_from_slice(preds);
        }
        PlanNode::MergeJoin { left, right, preds } => {
            emit_preds(left, out);
            emit_preds(right, out);
            out.extend_from_slice(preds);
        }
        PlanNode::NestLoop { outer, inner, preds } => {
            emit_preds(inner, out);
            emit_preds(outer, out);
            out.extend_from_slice(preds);
        }
        PlanNode::IndexNestLoop { outer, lookup, preds, inner_filters, .. } => {
            emit_preds(outer, out);
            out.push(*lookup);
            out.extend_from_slice(preds);
            out.extend_from_slice(inner_filters);
        }
    }
}

/// The epp a plan would spill on: the first epp in spill order that is still
/// in `unlearnt`. Returns `None` if the plan evaluates no unlearnt epp.
pub fn spill_target(plan: &PlanNode, query: &Query, unlearnt: &BTreeSet<EppId>) -> Option<EppId> {
    epp_spill_order(plan, query).into_iter().find(|e| unlearnt.contains(e))
}

/// The subtree executed in spill-mode for epp `epp`: the subtree rooted at
/// the node evaluating the epp's predicate (§3.1.2 — the output of that node
/// is discarded instead of being forwarded downstream, so the downstream
/// operators contribute no cost).
///
/// Returns `None` if the plan does not evaluate the predicate.
pub fn spill_subtree(plan: &PlanNode, query: &Query, epp: EppId) -> Option<PlanNode> {
    let pred = query.epp_pred(epp);
    plan.node_evaluating(pred).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::Catalog;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(RelationBuilder::new("a", 1000).indexed_column("k", 1000, 8).build())
            .relation(
                RelationBuilder::new("b", 2000)
                    .indexed_column("k", 1000, 8)
                    .indexed_column("j", 2000, 8)
                    .build(),
            )
            .relation(RelationBuilder::new("c", 3000).indexed_column("j", 2000, 8).build())
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .table("c")
            .epp_join("a", "k", "b", "k") // e0 -> dim0
            .epp_join("b", "j", "c", "j") // e1 -> dim1
            .build()
            .unwrap();
        (catalog, query)
    }

    fn seq(catalog: &Catalog, name: &str) -> PlanNode {
        PlanNode::SeqScan { rel: catalog.find_relation(name).unwrap(), filters: vec![] }
    }

    #[test]
    fn hash_join_build_side_epps_come_first() {
        let (catalog, query) = fixture();
        // ((a ⋈ b) as build) ⋈ c : dim0 evaluated in the build pipeline of
        // the outer join, so it precedes dim1.
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: Box::new(seq(&catalog, "a")),
                probe: Box::new(seq(&catalog, "b")),
                preds: vec![query.epps[0]],
            }),
            probe: Box::new(seq(&catalog, "c")),
            preds: vec![query.epps[1]],
        };
        assert_eq!(epp_spill_order(&plan, &query), vec![EppId(0), EppId(1)]);
    }

    #[test]
    fn spill_target_skips_learnt_epps() {
        let (catalog, query) = fixture();
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: Box::new(seq(&catalog, "a")),
                probe: Box::new(seq(&catalog, "b")),
                preds: vec![query.epps[0]],
            }),
            probe: Box::new(seq(&catalog, "c")),
            preds: vec![query.epps[1]],
        };
        let all: BTreeSet<_> = [EppId(0), EppId(1)].into();
        assert_eq!(spill_target(&plan, &query, &all), Some(EppId(0)));
        let only1: BTreeSet<_> = [EppId(1)].into();
        assert_eq!(spill_target(&plan, &query, &only1), Some(EppId(1)));
        let none: BTreeSet<_> = BTreeSet::new();
        assert_eq!(spill_target(&plan, &query, &none), None);
    }

    #[test]
    fn spill_subtree_is_rooted_at_the_epp_node() {
        let (catalog, query) = fixture();
        let lower = PlanNode::HashJoin {
            build: Box::new(seq(&catalog, "a")),
            probe: Box::new(seq(&catalog, "b")),
            preds: vec![query.epps[0]],
        };
        let plan = PlanNode::HashJoin {
            build: Box::new(lower.clone()),
            probe: Box::new(seq(&catalog, "c")),
            preds: vec![query.epps[1]],
        };
        let sub = spill_subtree(&plan, &query, EppId(0)).unwrap();
        assert_eq!(sub, lower);
        let whole = spill_subtree(&plan, &query, EppId(1)).unwrap();
        assert_eq!(whole, plan);
    }

    #[test]
    fn pipelines_of_two_hash_joins() {
        let (catalog, query) = fixture();
        let plan = PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: Box::new(seq(&catalog, "a")),
                probe: Box::new(seq(&catalog, "b")),
                preds: vec![query.epps[0]],
            }),
            probe: Box::new(seq(&catalog, "c")),
            preds: vec![query.epps[1]],
        };
        let pls = pipelines(&plan);
        // 1: scan a -> build; 2: scan b -> inner HJ -> outer build;
        // 3: scan c -> outer HJ.
        assert_eq!(pls.len(), 3);
        assert_eq!(pls[0].ops, vec!["SeqScan", "HashBuild"]);
        assert_eq!(pls[1].ops, vec!["SeqScan", "HashJoin", "HashBuild"]);
        assert_eq!(pls[2].ops, vec!["SeqScan", "HashJoin"]);
    }

    #[test]
    fn sort_is_blocking() {
        let (catalog, query) = fixture();
        let plan = PlanNode::MergeJoin {
            left: Box::new(PlanNode::Sort { input: Box::new(seq(&catalog, "a")) }),
            right: Box::new(PlanNode::Sort { input: Box::new(seq(&catalog, "b")) }),
            preds: vec![query.epps[0]],
        };
        let pls = pipelines(&plan);
        assert_eq!(pls.len(), 3, "two sort pipelines plus the merge pipeline");
        assert_eq!(pls[2].ops.last().unwrap(), "MergeJoin");
    }

    #[test]
    fn nest_loop_materializes_inner_first() {
        let (catalog, query) = fixture();
        let plan = PlanNode::NestLoop {
            outer: Box::new(PlanNode::SeqScan {
                rel: catalog.find_relation("a").unwrap(),
                filters: vec![],
            }),
            inner: Box::new(seq(&catalog, "b")),
            preds: vec![query.epps[0]],
        };
        let pls = pipelines(&plan);
        assert_eq!(pls[0].ops, vec!["SeqScan", "Materialize"]);
        assert_eq!(pls[1].ops, vec!["SeqScan", "NestLoop"]);
    }

    #[test]
    fn index_nest_loop_orders_outer_epps_before_lookup() {
        let (catalog, query) = fixture();
        let plan = PlanNode::IndexNestLoop {
            outer: Box::new(PlanNode::IndexNestLoop {
                outer: Box::new(seq(&catalog, "a")),
                inner_rel: catalog.find_relation("b").unwrap(),
                lookup: query.epps[0],
                preds: vec![],
                inner_filters: vec![],
            }),
            inner_rel: catalog.find_relation("c").unwrap(),
            lookup: query.epps[1],
            preds: vec![],
            inner_filters: vec![],
        };
        assert_eq!(epp_spill_order(&plan, &query), vec![EppId(0), EppId(1)]);
    }
}
