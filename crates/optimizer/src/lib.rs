#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! A Selinger-style dynamic-programming query optimizer with selectivity
//! injection.
//!
//! This crate plays the role the paper assigns to the (modified) PostgreSQL
//! optimizer: given a query and an *injected* assignment of selectivities to
//! its error-prone predicates — a location `q` of the ESS — it returns the
//! cheapest physical plan and its cost, `Cost(P_q, q)`. Repeated invocation
//! over a grid of locations yields the Parametric Optimal Set of Plans
//! (POSP), the search space of all bouquet algorithms (§2.2).
//!
//! The optimizer enumerates connected subsets of the join graph bottom-up
//! (bushy by default, optionally left-deep only), choosing among sequential
//! and index access paths, and hash / sort-merge / nested-loop / index
//! nested-loop join operators. Because every plan of a given relation subset
//! produces identical output cardinality and width under this cost model,
//! Bellman's principle of optimality holds exactly and the DP is exact over
//! its plan space.
//!
//! It also provides [`Optimizer::optimize_spilling_on`] — "obtain a least
//! cost plan from the optimizer which spills on a user-specified epp" — the
//! engine extension §6.1 adds for AlignedBound's replacement-plan search.

pub mod dp;
pub mod obs;

pub use dp::{JoinShape, Optimizer, OptimizerConfig, Planned};
pub use obs::register_metrics;
