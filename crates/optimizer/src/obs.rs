//! Instrumentation handles for the DP enumerator.
//!
//! All handles are looked up once from the global [`rqp_obs`] registry and
//! cached in a `OnceLock`, so a hot-path increment is a single relaxed
//! atomic operation.

use rqp_obs::{default_latency_buckets, global, names, Counter, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct OptMetrics {
    /// `rqp_optimizer_calls_total`
    pub calls: Arc<Counter>,
    /// `rqp_optimizer_optimize_seconds`
    pub optimize_seconds: Arc<Histogram>,
    /// `rqp_optimizer_dp_entries_total`
    pub dp_entries: Arc<Counter>,
    /// `rqp_optimizer_join_candidates_total`
    pub join_candidates: Arc<Counter>,
    /// `rqp_optimizer_spill_constrained_calls_total`
    pub spill_constrained_calls: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static OptMetrics {
    static METRICS: OnceLock<OptMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        OptMetrics {
            calls: g.counter(names::OPTIMIZER_CALLS),
            optimize_seconds: g
                .histogram(names::OPTIMIZER_OPTIMIZE_SECONDS, &default_latency_buckets()),
            dp_entries: g.counter(names::OPTIMIZER_DP_ENTRIES),
            join_candidates: g.counter(names::OPTIMIZER_JOIN_CANDIDATES),
            spill_constrained_calls: g.counter(names::OPTIMIZER_SPILL_CONSTRAINED_CALLS),
        }
    })
}

/// Pre-register the optimizer's metric series (at zero) in the global
/// registry, so snapshots taken before any optimization still list them.
pub fn register_metrics() {
    let _ = metrics();
}
