//! The dynamic-programming plan enumerator.

use rqp_catalog::{Catalog, EppId, PredId, Query, RelId, SelVector};
use rqp_qplan::cost::{CostModel, PlanCtx, PlanProps};
use rqp_qplan::ops::PlanNode;
use rqp_qplan::pipeline::spill_target;
use std::collections::BTreeSet;

/// Join-tree shape explored by the DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinShape {
    /// All connected partitions of every subset (exhaustive bushy DP).
    Bushy,
    /// Only plans whose right input is a single base relation.
    LeftDeep,
    /// Bushy up to 9 relations, left-deep beyond (keeps ESS compilation of
    /// large queries tractable).
    #[default]
    Auto,
}

/// Optimizer tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizerConfig {
    /// Join-tree shape.
    pub shape: JoinShape,
    /// Disable the materialized-inner nested-loop operator (it is dominated
    /// on all but tiny inputs; disabling it speeds enumeration up slightly).
    pub disable_nest_loop: bool,
}

/// The result of an optimizer invocation: the cheapest plan found, its
/// estimated cost and output cardinality at the injected location.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The plan.
    pub plan: PlanNode,
    /// `Cost(plan, q)` at the injected location.
    pub cost: f64,
    /// Estimated output rows at the injected location.
    pub rows: f64,
}

/// A Selinger-style DP optimizer bound to one query.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    model: CostModel,
    config: OptimizerConfig,
    /// filter predicates per relation index (position in `query.relations`)
    filters: Vec<Vec<PredId>>,
    /// join edges as (predicate, left relation index, right relation index)
    edges: Vec<(PredId, usize, usize)>,
}

#[derive(Clone)]
struct Entry {
    plan: PlanNode,
    cost: f64,
    props: PlanProps,
}

/// A join candidate description, costed before any plan tree is built.
#[derive(Clone, Copy)]
enum Cand {
    Hash {
        build_left: bool,
    },
    Merge,
    NestLoop {
        outer_left: bool,
    },
    /// Index NL with the single-relation side as inner.
    IndexNl {
        outer_left: bool,
        lookup: PredId,
    },
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer for `query` with default configuration.
    pub fn new(catalog: &'a Catalog, query: &'a Query, model: CostModel) -> Self {
        Self::with_config(catalog, query, model, OptimizerConfig::default())
    }

    /// Create an optimizer with an explicit configuration.
    pub fn with_config(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: OptimizerConfig,
    ) -> Self {
        // Width is enforced with a structured error at Query build/validate
        // time (rqp_catalog::MAX_RELATIONS); by the time an Optimizer is
        // constructed the count fits comfortably in a u32 subset mask. The
        // release-mode clamp keeps an invariant breach from ever sizing the
        // 2^n DP table off an unvalidated count.
        let n = query.relations.len();
        debug_assert!(
            (1..=rqp_catalog::MAX_RELATIONS).contains(&n),
            "query must join 1..={} relations (got {n}); Query::validate enforces this",
            rqp_catalog::MAX_RELATIONS
        );
        let n = n.clamp(1, rqp_catalog::MAX_RELATIONS);
        let rel_index = |r: RelId| {
            query.relations.iter().position(|&x| x == r).unwrap_or_else(|| {
                debug_assert!(false, "join relation {r:?} not in query relation list");
                0
            })
        };
        let filters =
            (0..n).map(|i| query.filters_on(query.relations[i]).map(|f| f.id).collect()).collect();
        let edges = query
            .joins
            .iter()
            .map(|j| (j.id, rel_index(j.left.rel), rel_index(j.right.rel)))
            .collect();
        Optimizer { catalog, query, model, config, filters, edges }
    }

    /// The query this optimizer plans.
    pub fn query(&self) -> &Query {
        self.query
    }

    /// The catalog statistics in use.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The cost model in use.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Cost an arbitrary plan at a location (convenience wrapper).
    pub fn cost_of(&self, plan: &PlanNode, loc: &SelVector) -> f64 {
        let ctx = PlanCtx::new(self.catalog, self.query, loc);
        self.model.cost(plan, &ctx)
    }

    fn bushy(&self) -> bool {
        match self.config.shape {
            JoinShape::Bushy => true,
            JoinShape::LeftDeep => false,
            JoinShape::Auto => self.query.relations.len() <= 9,
        }
    }

    /// The cheapest plan for the query at the injected ESS location.
    pub fn optimize(&self, loc: &SelVector) -> Planned {
        let m = crate::obs::metrics();
        m.calls.inc();
        let _span = rqp_obs::time_histogram(&m.optimize_seconds);

        let ctx = PlanCtx::new(self.catalog, self.query, loc);
        // Query::validate caps the relation count at MAX_RELATIONS (20), so
        // the subset mask always fits a u32 and the DP table tops out at
        // 2^20 + 1 entries; the clamp mirrors `with_config` so a validation
        // bypass degrades instead of attempting a 4-billion-entry table.
        let n = self.query.relations.len().clamp(1, rqp_catalog::MAX_RELATIONS);
        let full: u32 = (1u32 << n) - 1;
        let mut dp: Vec<Option<Entry>> = vec![None; (full as usize) + 1];

        for i in 0..n {
            dp[1usize << i] = Some(self.best_access_path(i, &ctx));
        }

        for mask in 1..=full {
            if mask.count_ones() < 2 {
                continue;
            }
            dp[mask as usize] = self.best_join(mask, &dp, &ctx);
        }

        m.dp_entries.add(dp.iter().filter(|e| e.is_some()).count() as u64);

        let entry = match dp[full as usize].clone() {
            Some(e) => e,
            None => {
                // A disconnected join graph is a programmer error upstream;
                // degrade to a deterministic left-deep cross-product plan
                // (never cheaper than any connected optimum, so PCM-safe).
                debug_assert!(false, "no connected plan for query {}", self.query.name);
                self.fallback_plan(&ctx)
            }
        };
        let entry = self.finalize_aggregate(entry, &ctx);
        Planned { plan: entry.plan, cost: entry.cost, rows: entry.props.rows }
    }

    /// Wrap the SPJ optimum in the cheaper aggregation strategy when the
    /// query groups its result.
    fn finalize_aggregate(&self, entry: Entry, ctx: &PlanCtx<'_>) -> Entry {
        if self.query.group_by.is_empty() {
            return entry;
        }
        let groups = self.query.group_by.clone();
        let cap: f64 =
            groups.iter().map(|g| self.catalog.relation(g.rel).columns[g.col].ndv as f64).product();
        let _ = ctx;
        let input = (entry.cost, entry.props);
        let (hash_c, hash_p) = self.model.hash_aggregate_cost(input, cap);
        let (sorted_c, sorted_p) = self.model.sort_aggregate_cost(self.model.sort_cost(input), cap);
        if hash_c <= sorted_c {
            Entry {
                plan: PlanNode::HashAggregate { input: Box::new(entry.plan), groups },
                cost: hash_c,
                props: hash_p,
            }
        } else {
            Entry {
                plan: PlanNode::SortAggregate {
                    input: Box::new(PlanNode::Sort { input: Box::new(entry.plan) }),
                    groups,
                },
                cost: sorted_c,
                props: sorted_p,
            }
        }
    }

    /// Deterministic left-deep nested-loop fallback chaining all relations
    /// in query order. Only reached (in release builds) when the join graph
    /// is disconnected; the cross products make it an overestimate, never an
    /// underestimate, of any connected plan's cost.
    fn fallback_plan(&self, ctx: &PlanCtx<'_>) -> Entry {
        let n = self.query.relations.len();
        let mut entry = self.best_access_path(0, ctx);
        for i in 1..n {
            let right = self.best_access_path(i, ctx);
            let preds = self.connecting_preds((1u32 << i) - 1, 1u32 << i);
            let join_sel: f64 = preds.iter().map(|&p| ctx.sel(p)).product();
            let (cost, props) = self.model.nest_loop_cost(
                (entry.cost, entry.props),
                (right.cost, right.props),
                join_sel,
            );
            entry = Entry {
                plan: PlanNode::NestLoop {
                    outer: Box::new(entry.plan),
                    inner: Box::new(right.plan),
                    preds,
                },
                cost,
                props,
            };
        }
        entry
    }

    /// Best access path for relation index `i`.
    fn best_access_path(&self, i: usize, ctx: &PlanCtx<'_>) -> Entry {
        let rel_id = self.query.relations[i];
        let rel = self.catalog.relation(rel_id);
        let fs = &self.filters[i];
        let filter_sel: f64 = fs.iter().map(|&p| ctx.sel(p)).product();

        let (c, props) = self.model.seq_scan_cost(rel, filter_sel, fs.len());
        let mut best =
            Entry { plan: PlanNode::SeqScan { rel: rel_id, filters: fs.clone() }, cost: c, props };

        // index scans driven by each indexed sargable filter
        for (k, &sarg) in fs.iter().enumerate() {
            let Some(f) = self.query.filter(sarg) else {
                debug_assert!(false, "filter predicate {sarg} not in query");
                continue;
            };
            let col = f.col;
            if !self.catalog.relation(col.rel).columns[col.col].indexed {
                continue;
            }
            let residual: Vec<PredId> =
                fs.iter().enumerate().filter(|&(j, _)| j != k).map(|(_, &p)| p).collect();
            let residual_sel: f64 = residual.iter().map(|&p| ctx.sel(p)).product();
            let (c, props) =
                self.model.index_scan_cost(rel, ctx.sel(sarg), residual_sel, residual.len());
            if c < best.cost {
                best = Entry {
                    plan: PlanNode::IndexScan { rel: rel_id, sarg, filters: residual },
                    cost: c,
                    props,
                };
            }
        }
        best
    }

    /// Join predicates crossing between two disjoint relation-index masks.
    fn connecting_preds(&self, lmask: u32, rmask: u32) -> Vec<PredId> {
        self.edges
            .iter()
            .filter(|&&(_, a, b)| {
                (lmask >> a) & 1 == 1 && (rmask >> b) & 1 == 1
                    || (lmask >> b) & 1 == 1 && (rmask >> a) & 1 == 1
            })
            .map(|&(p, _, _)| p)
            .collect()
    }

    /// Best join plan for `mask`, combining DP entries of its partitions.
    fn best_join(&self, mask: u32, dp: &[Option<Entry>], ctx: &PlanCtx<'_>) -> Option<Entry> {
        let mut best: Option<(f64, PlanProps, u32, u32, Cand, Vec<PredId>)> = None;
        let mut candidates: u64 = 0;

        let mut consider = |lmask: u32, rmask: u32| {
            let (Some(le), Some(re)) = (&dp[lmask as usize], &dp[rmask as usize]) else {
                return;
            };
            let preds = self.connecting_preds(lmask, rmask);
            if preds.is_empty() {
                return; // no cross products
            }
            let join_sel: f64 = preds.iter().map(|&p| ctx.sel(p)).product();
            let l = (le.cost, le.props);
            let r = (re.cost, re.props);

            let mut push = |cost: f64, props: PlanProps, cand: Cand| {
                candidates += 1;
                if best.as_ref().is_none_or(|b| cost < b.0) {
                    best = Some((cost, props, lmask, rmask, cand, preds.clone()));
                }
            };

            // hash join, both build orientations
            let (c, p) = self.model.hash_join_cost(l, r, join_sel);
            push(c, p, Cand::Hash { build_left: true });
            let (c, p) = self.model.hash_join_cost(r, l, join_sel);
            push(c, p, Cand::Hash { build_left: false });

            // sort-merge
            let (c, p) = self.model.merge_join_cost(
                self.model.sort_cost(l),
                self.model.sort_cost(r),
                join_sel,
            );
            push(c, p, Cand::Merge);

            // materialized-inner nested loop, both orientations
            if !self.config.disable_nest_loop {
                let (c, p) = self.model.nest_loop_cost(l, r, join_sel);
                push(c, p, Cand::NestLoop { outer_left: true });
                let (c, p) = self.model.nest_loop_cost(r, l, join_sel);
                push(c, p, Cand::NestLoop { outer_left: false });
            }

            // index nested loop: single-relation side as indexed inner
            for (inner_mask, outer_left) in [(rmask, true), (lmask, false)] {
                if inner_mask.count_ones() != 1 {
                    continue;
                }
                let i = inner_mask.trailing_zeros() as usize;
                let inner_rel_id = self.query.relations[i];
                let inner_rel = self.catalog.relation(inner_rel_id);
                let outer = if outer_left { l } else { r };
                for &pid in &preds {
                    let Some(j) = self.query.join(pid) else {
                        debug_assert!(false, "join predicate {pid} not in query");
                        continue;
                    };
                    let inner_col = if j.left.rel == inner_rel_id { j.left } else { j.right };
                    if !self.catalog.relation(inner_col.rel).columns[inner_col.col].indexed {
                        continue;
                    }
                    let lookup_sel = ctx.sel(pid);
                    let others: f64 =
                        preds.iter().filter(|&&p| p != pid).map(|&p| ctx.sel(p)).product();
                    let fsel: f64 = self.filters[i].iter().map(|&p| ctx.sel(p)).product();
                    let n_res = preds.len() - 1 + self.filters[i].len();
                    let (c, p) = self.model.index_nest_loop_cost(
                        outer,
                        inner_rel,
                        lookup_sel,
                        others * fsel,
                        n_res,
                    );
                    push(c, p, Cand::IndexNl { outer_left, lookup: pid });
                }
            }
        };

        if self.bushy() {
            // enumerate partitions; fix the lowest bit on the left side to
            // halve the enumeration (orientation handled per candidate)
            let low = mask & mask.wrapping_neg();
            let mut s = (mask - 1) & mask;
            while s > 0 {
                if s & low != 0 {
                    consider(s, mask ^ s);
                }
                s = (s - 1) & mask;
            }
        } else {
            let mut bits = mask;
            while bits != 0 {
                let r = bits & bits.wrapping_neg();
                bits ^= r;
                consider(mask ^ r, r);
            }
        }

        if candidates > 0 {
            crate::obs::metrics().join_candidates.add(candidates);
        }

        let (cost, props, lmask, rmask, cand, preds) = best?;
        let plan = self.build_candidate(lmask, rmask, cand, preds, dp);
        Some(Entry { plan, cost, props })
    }

    fn build_candidate(
        &self,
        lmask: u32,
        rmask: u32,
        cand: Cand,
        preds: Vec<PredId>,
        dp: &[Option<Entry>],
    ) -> PlanNode {
        let take = |m: u32| -> Box<PlanNode> {
            match dp[m as usize].as_ref() {
                Some(e) => Box::new(e.plan.clone()),
                None => {
                    // unreachable: best_join only selects masks with entries
                    debug_assert!(false, "dp entry for chosen mask {m:#b} must exist");
                    let i = (m.trailing_zeros() as usize).min(self.query.relations.len() - 1);
                    Box::new(PlanNode::SeqScan {
                        rel: self.query.relations[i],
                        filters: Vec::new(),
                    })
                }
            }
        };
        let l = || take(lmask);
        let r = || take(rmask);
        match cand {
            Cand::Hash { build_left: true } => PlanNode::HashJoin { build: l(), probe: r(), preds },
            Cand::Hash { build_left: false } => {
                PlanNode::HashJoin { build: r(), probe: l(), preds }
            }
            Cand::Merge => PlanNode::MergeJoin {
                left: Box::new(PlanNode::Sort { input: l() }),
                right: Box::new(PlanNode::Sort { input: r() }),
                preds,
            },
            Cand::NestLoop { outer_left: true } => {
                PlanNode::NestLoop { outer: l(), inner: r(), preds }
            }
            Cand::NestLoop { outer_left: false } => {
                PlanNode::NestLoop { outer: r(), inner: l(), preds }
            }
            Cand::IndexNl { outer_left, lookup } => {
                let inner_mask = if outer_left { rmask } else { lmask };
                let i = inner_mask.trailing_zeros() as usize;
                PlanNode::IndexNestLoop {
                    outer: if outer_left { l() } else { r() },
                    inner_rel: self.query.relations[i],
                    lookup,
                    preds: preds.into_iter().filter(|&p| p != lookup).collect(),
                    inner_filters: self.filters[i].clone(),
                }
            }
        }
    }

    /// The cheapest plan *that spills on `target`* (first unlearnt epp in
    /// its pipeline total-order), or `None` if no such plan is found.
    ///
    /// Mirrors the engine extension of §6.1: first the unconstrained optimum
    /// is checked; failing that, a plan is constructed that evaluates the
    /// target epp's predicate in its bottom-most join (greedy cheapest
    /// extension thereafter) so the target comes first in spill order.
    pub fn optimize_spilling_on(
        &self,
        loc: &SelVector,
        target: EppId,
        unlearnt: &BTreeSet<EppId>,
    ) -> Option<Planned> {
        crate::obs::metrics().spill_constrained_calls.inc();
        let unconstrained = self.optimize(loc);
        if spill_target(&unconstrained.plan, self.query, unlearnt) == Some(target) {
            return Some(unconstrained);
        }
        let forced = self.force_spill_plan(loc, target)?;
        if spill_target(&forced.plan, self.query, unlearnt) == Some(target) {
            return Some(forced);
        }
        None
    }

    /// Greedily build a plan whose bottom-most node evaluates the target
    /// epp's predicate.
    fn force_spill_plan(&self, loc: &SelVector, target: EppId) -> Option<Planned> {
        let ctx = PlanCtx::new(self.catalog, self.query, loc);
        let pred = self.query.epp_pred(target);
        let n = self.query.relations.len();
        let rel_index = |r: RelId| {
            self.query.relations.iter().position(|&x| x == r).unwrap_or_else(|| {
                debug_assert!(false, "epp relation {r:?} not in query relation list");
                0
            })
        };

        // seed: the epp's own relations (join) or relation (filter)
        let (mut mask, mut current): (u32, Entry) = if let Some(j) = self.query.join(pred) {
            let a = rel_index(j.left.rel);
            let b = rel_index(j.right.rel);
            let ea = self.best_access_path(a, &ctx);
            let eb = self.best_access_path(b, &ctx);
            let mask = (1u32 << a) | (1u32 << b);
            let mut dp: Vec<Option<Entry>> = vec![None; (mask as usize) + 1];
            dp[1usize << a] = Some(ea);
            dp[1usize << b] = Some(eb);
            let joined = self.best_join(mask, &dp, &ctx)?;
            (mask, joined)
        } else {
            // epp filter: scan the relation with the target filter first so
            // it leads the intra-pipeline order
            let f = self.query.filter(pred)?;
            let i = rel_index(f.col.rel);
            let mut fs = vec![pred];
            fs.extend(self.filters[i].iter().copied().filter(|&p| p != pred));
            let rel = self.catalog.relation(f.col.rel);
            let filter_sel: f64 = fs.iter().map(|&p| ctx.sel(p)).product();
            let (c, props) = self.model.seq_scan_cost(rel, filter_sel, fs.len());
            let plan = PlanNode::SeqScan { rel: f.col.rel, filters: fs };
            (1u32 << i, Entry { plan, cost: c, props })
        };

        // greedy cheapest extension by one relation at a time
        while mask.count_ones() < n as u32 {
            let mut best: Option<(f64, Entry, u32)> = None;
            for i in 0..n {
                let bit = 1u32 << i;
                if mask & bit != 0 {
                    continue;
                }
                if self.connecting_preds(mask, bit).is_empty() {
                    continue;
                }
                // cost the extension via a tiny DP over {mask, bit}
                let joined_mask = mask | bit;
                let mut dp: Vec<Option<Entry>> = vec![None; (joined_mask as usize) + 1];
                dp[mask as usize] = Some(current.clone());
                dp[bit as usize] = Some(self.best_access_path(i, &ctx));
                // consider only partitions (mask, bit): emulate via best_join
                // on the union; partitions through other splits are absent
                // because dp holds no other entries.
                if let Some(e) = self.best_join(joined_mask, &dp, &ctx) {
                    if best.as_ref().is_none_or(|b| e.cost < b.0) {
                        best = Some((e.cost, e, joined_mask));
                    }
                }
            }
            let (_, e, new_mask) = best?;
            current = e;
            mask = new_mask;
        }
        Some(Planned { plan: current.plan, cost: current.cost, rows: current.props.rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn returned_cost_matches_full_plan_costing() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        for loc in [
            SelVector::from_values(&[1e-7, 1e-7]),
            SelVector::from_values(&[1e-4, 1e-2]),
            SelVector::from_values(&[1.0, 1.0]),
        ] {
            let planned = opt.optimize(&loc);
            let recosted = opt.cost_of(&planned.plan, &loc);
            assert!(
                (planned.cost - recosted).abs() <= 1e-9 * planned.cost.max(1.0),
                "DP cost {} != recosted {}",
                planned.cost,
                recosted
            );
        }
    }

    #[test]
    fn optimal_plan_changes_across_the_ess() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let lo = opt.optimize(&SelVector::from_values(&[1e-8, 1e-8]));
        let hi = opt.optimize(&SelVector::from_values(&[1.0, 1.0]));
        assert_ne!(
            rqp_qplan::Fingerprint::of(&lo.plan),
            rqp_qplan::Fingerprint::of(&hi.plan),
            "expected different optimal plans at opposite ESS corners"
        );
        assert!(hi.cost > lo.cost, "terminus must cost more than origin (PCM)");
    }

    #[test]
    fn bushy_never_worse_than_left_deep() {
        let (catalog, query) = fixture();
        let model = CostModel::default();
        let bushy = Optimizer::with_config(
            &catalog,
            &query,
            model,
            OptimizerConfig { shape: JoinShape::Bushy, ..Default::default() },
        );
        let ld = Optimizer::with_config(
            &catalog,
            &query,
            model,
            OptimizerConfig { shape: JoinShape::LeftDeep, ..Default::default() },
        );
        for loc in [
            SelVector::from_values(&[1e-6, 1e-3]),
            SelVector::from_values(&[1e-2, 1e-5]),
            SelVector::from_values(&[0.3, 0.7]),
        ] {
            assert!(bushy.optimize(&loc).cost <= ld.optimize(&loc).cost * (1.0 + 1e-12));
        }
    }

    #[test]
    fn optimum_is_no_worse_than_handcrafted_plans() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let loc = SelVector::from_values(&[1e-5, 1e-5]);
        let planned = opt.optimize(&loc);
        // handcrafted: hash join everything, part as innermost build
        let filter = query.filters[0].id;
        let hand = PlanNode::HashJoin {
            build: Box::new(PlanNode::HashJoin {
                build: Box::new(PlanNode::SeqScan {
                    rel: catalog.find_relation("part").unwrap(),
                    filters: vec![filter],
                }),
                probe: Box::new(PlanNode::SeqScan {
                    rel: catalog.find_relation("lineitem").unwrap(),
                    filters: vec![],
                }),
                preds: vec![query.epps[0]],
            }),
            probe: Box::new(PlanNode::SeqScan {
                rel: catalog.find_relation("orders").unwrap(),
                filters: vec![],
            }),
            preds: vec![query.epps[1]],
        };
        assert!(planned.cost <= opt.cost_of(&hand, &loc) * (1.0 + 1e-12));
    }

    #[test]
    fn spill_constrained_optimization_spills_on_request() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let loc = SelVector::from_values(&[1e-4, 1e-4]);
        let all: BTreeSet<EppId> = [EppId(0), EppId(1)].into();
        for target in [EppId(0), EppId(1)] {
            let planned = opt
                .optimize_spilling_on(&loc, target, &all)
                .unwrap_or_else(|| panic!("no spill plan for {target}"));
            assert_eq!(
                spill_target(&planned.plan, &query, &all),
                Some(target),
                "plan must spill on {target}"
            );
            // the constrained plan can't beat the unconstrained optimum
            assert!(planned.cost >= opt.optimize(&loc).cost * (1.0 - 1e-12));
        }
    }

    #[test]
    fn single_relation_query_plans_a_scan() {
        let catalog = CatalogBuilder::new()
            .relation(RelationBuilder::new("t", 1000).indexed_column("a", 100, 8).build())
            .build();
        let query = QueryBuilder::new(&catalog, "single")
            .table("t")
            .epp_filter("t", "a", 0.1)
            .build()
            .unwrap();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let lo = opt.optimize(&SelVector::from_values(&[1e-6]));
        let hi = opt.optimize(&SelVector::from_values(&[1.0]));
        assert_eq!(lo.plan.op_name(), "IndexScan", "tiny selectivity should use the index");
        assert_eq!(hi.plan.op_name(), "SeqScan", "full selectivity should scan");
    }

    #[test]
    fn pcm_holds_for_the_optimal_cost_surface() {
        // optimal cost (min over plans) inherits monotonicity from PCM
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let mut prev = 0.0;
        for i in 0..8 {
            let s = 10f64.powf(-7.0 + 7.0 * i as f64 / 7.0);
            let c = opt.optimize(&SelVector::from_values(&[s, s])).cost;
            assert!(c >= prev);
            prev = c;
        }
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};

    fn grouped_fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("sales", 5_000_000)
                    .indexed_column("item_sk", 100_000, 8)
                    .column("qty", 100, 4)
                    .build(),
            )
            .relation(
                RelationBuilder::new("item", 100_000)
                    .indexed_column("i_item_sk", 100_000, 8)
                    .column("i_category", 10, 16)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "grouped")
            .table("sales")
            .table("item")
            .epp_join("sales", "item_sk", "item", "i_item_sk")
            .group_by("item", "i_category")
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn grouped_query_plans_an_aggregate_root() {
        let (catalog, query) = grouped_fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        for s in [1e-6, 1e-3, 1.0] {
            let planned = opt.optimize(&SelVector::from_values(&[s]));
            assert!(
                matches!(
                    planned.plan,
                    PlanNode::HashAggregate { .. } | PlanNode::SortAggregate { .. }
                ),
                "root must aggregate, got {}",
                planned.plan.op_name()
            );
            // DP cost still equals full re-costing
            let recost = opt.cost_of(&planned.plan, &SelVector::from_values(&[s]));
            assert!((planned.cost - recost).abs() < 1e-9 * planned.cost.max(1.0));
            // output rows capped by the grouping column's NDV
            assert!(planned.rows <= 10.0 + 1e-9, "at most 10 categories, got {}", planned.rows);
        }
    }

    #[test]
    fn aggregate_cost_is_monotone_in_selectivity() {
        let (catalog, query) = grouped_fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let mut prev = 0.0;
        for i in 0..10 {
            let s = 10f64.powf(-6.0 + 6.0 * i as f64 / 9.0);
            let c = opt.optimize(&SelVector::from_values(&[s])).cost;
            assert!(c >= prev, "PCM violated through the aggregate");
            prev = c;
        }
    }

    #[test]
    fn spill_machinery_sees_through_the_aggregate() {
        use rqp_qplan::pipeline::{epp_spill_order, spill_subtree};
        let (catalog, query) = grouped_fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let loc = SelVector::from_values(&[1e-4]);
        let planned = opt.optimize(&loc);
        let order = epp_spill_order(&planned.plan, &query);
        assert_eq!(order.len(), 1, "the epp is visible below the aggregate");
        let sub = spill_subtree(&planned.plan, &query, order[0]).unwrap();
        assert!(
            !matches!(sub, PlanNode::HashAggregate { .. } | PlanNode::SortAggregate { .. }),
            "spill subtree excludes the aggregate root"
        );
        assert!(opt.cost_of(&sub, &loc) <= planned.cost);
    }
}
