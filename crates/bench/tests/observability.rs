//! End-to-end observability checks: the acceptance criteria of the rqp-obs
//! work — metrics JSON with optimizer/ESS/discovery series, one JSONL
//! event per budgeted execution, and both artifacts parsing back through
//! the self-contained `rqp_obs::json` codec.

use rqp_bench::ObsOptions;
use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
use rqp_core::{Discovery, PlanBouquet, RobustRuntime, SpillBound};
use rqp_ess::EssConfig;
use rqp_obs::MetricsSnapshot;
use rqp_qplan::CostModel;
use std::process::Command;

fn fixture() -> (Catalog, Query) {
    let catalog = CatalogBuilder::new()
        .relation(
            RelationBuilder::new("part", 2_000_000)
                .indexed_column("p_partkey", 2_000_000, 8)
                .column("p_price", 50_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("lineitem", 60_000_000)
                .indexed_column("l_partkey", 2_000_000, 8)
                .indexed_column("l_orderkey", 15_000_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("orders", 15_000_000)
                .indexed_column("o_orderkey", 15_000_000, 8)
                .build(),
        )
        .build();
    let query = QueryBuilder::new(&catalog, "EQ")
        .table("part")
        .table("lineitem")
        .table("orders")
        .epp_join("part", "p_partkey", "lineitem", "l_partkey")
        .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
        .filter("part", "p_price", 0.05)
        .build()
        .unwrap();
    (catalog, query)
}

fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("rqp_obs_test_{}_{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The whole pipeline in one test: the event sink is process-global, so
/// every assertion about it lives here to avoid cross-test interference.
#[test]
fn metrics_and_events_round_trip_through_json_codec() {
    let metrics_path = temp_path("m.json");
    let events_path = temp_path("e.jsonl");
    let prom_path = temp_path("prom.txt");
    let opts = ObsOptions {
        metrics_path: Some(metrics_path.clone()),
        events_path: Some(events_path.clone()),
        prometheus_path: Some(prom_path.clone()),
    };
    rqp_bench::obs::init(&opts).expect("init obs outputs");

    // a tiny 2D compile + discovery sweep exercises every layer
    let (catalog, query) = fixture();
    let rt = RobustRuntime::compile(
        &catalog,
        &query,
        CostModel::default(),
        EssConfig { resolution: 7, min_sel: 1e-6, ..Default::default() },
    )
    .unwrap();
    let pb = PlanBouquet::new();
    let sb = SpillBound::new();
    let mut budgeted_steps = 0usize;
    for qa in [0, rt.grid().num_cells() / 2, rt.grid().terminus()] {
        budgeted_steps += pb.discover(&rt, qa).steps.len();
        let _ = sb.discover(&rt, qa);
    }
    assert!(budgeted_steps > 0, "PB must have executed something");

    rqp_bench::obs::finish(&opts).expect("write obs outputs");

    // --- metrics JSON parses and contains the advertised series ---
    let metrics_text = std::fs::read_to_string(&metrics_path).unwrap();
    let snap = MetricsSnapshot::from_json(&metrics_text).unwrap();
    assert!(
        snap.counters["rqp_optimizer_calls_total"] > 0,
        "optimizer call count missing from snapshot"
    );
    let compile = &snap.histograms["rqp_ess_compile_seconds"];
    assert!(compile.count >= 1, "ESS compile timing missing");
    assert!(compile.sum > 0.0);
    assert!(
        snap.counters.contains_key("rqp_discovery_runs_total{algo=\"PB-raw\"}"),
        "per-algorithm execution counters missing"
    );
    assert!(snap.counters["rqp_discovery_runs_total{algo=\"SB\"}"] >= 3);
    assert!(snap.counters["rqp_exec_budgeted_total"] >= budgeted_steps as u64);
    // pre-registered series appear even when untouched this run
    assert!(snap.counters.contains_key("rqp_discovery_runs_total{algo=\"ReOpt\"}"));

    // --- events JSONL: every line parses; one event per budgeted execution ---
    let events_text = std::fs::read_to_string(&events_path).unwrap();
    let mut budgeted_events = 0usize;
    let mut ess_compiles = 0usize;
    let mut lines = 0usize;
    for line in events_text.lines() {
        let v = rqp_obs::json::parse(line).unwrap();
        lines += 1;
        match v["event"].as_str().unwrap() {
            "budgeted_execution" => budgeted_events += 1,
            "ess_compile" => ess_compiles += 1,
            _ => {}
        }
    }
    assert!(lines > 0, "event stream is empty");
    assert_eq!(ess_compiles, 1, "exactly one compile happened under the sink");
    assert!(
        budgeted_events >= budgeted_steps,
        "expected >= {budgeted_steps} budgeted_execution events, got {budgeted_events}"
    );

    // --- prometheus text includes typed series ---
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    assert!(prom.contains("# TYPE rqp_optimizer_calls_total counter"));
    assert!(prom.contains("rqp_ess_compile_seconds_bucket"));

    for p in [metrics_path, events_path, prom_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn reproduce_lists_experiments() {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("--list")
        .output()
        .expect("run reproduce --list");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in rqp_bench::EXPERIMENTS {
        assert!(stdout.lines().any(|l| l == *name), "--list is missing {name}");
    }
}

#[test]
fn reproduce_rejects_unknown_experiments_and_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("fig14")
        .output()
        .expect("run reproduce fig14");
    assert!(!out.status.success(), "a typo must not silently run nothing");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment: fig14"));
    assert!(stderr.contains("fig8"), "the error must list valid names");

    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("--bogus")
        .output()
        .expect("run reproduce --bogus");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag: --bogus"));

    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["fig8", "--metrics"])
        .output()
        .expect("run reproduce with dangling flag");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--metrics requires a file path"));
}
