//! Compile-acceleration benchmarks (ISSUE 4): `Ess::compile` across 2D–4D
//! under the brute-force and recosting modes, plus the persistent snapshot
//! cache's warm path. Also takes manual median timings of the 3D coarse
//! fixture — brute force vs recosting vs warm cache — and records them in
//! `BENCH_4.json` at the repo root to start the perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_ess::{CompileCache, CompileMode, Ess, EssConfig};
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;
use rqp_workloads::Workload;
use std::hint::black_box;
use std::time::Instant;

fn config(dims: usize, mode: CompileMode) -> EssConfig {
    EssConfig { mode, ..EssConfig::coarse(dims) }
}

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let recost = CompileMode::Recost { seed_stride: 3 };

    for dims in [2usize, 3, 4] {
        let w = Workload::q91(dims).expect("workload builds");
        let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
        for (label, mode) in [("exact", CompileMode::Exact), ("recost", recost)] {
            c.bench_function(&format!("compile/{dims}d_{label}"), |b| {
                b.iter(|| {
                    let ess = Ess::compile_cached(&opt, config(dims, mode), None).unwrap();
                    black_box(ess.posp.num_plans())
                })
            });
        }
    }

    // warm-cache criterion smoke: every iteration is a disk hit
    let dir = std::env::temp_dir().join(format!("rqp-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CompileCache::new(&dir).expect("cache dir");
    let w3 = Workload::q91(3).expect("workload builds");
    let opt3 = Optimizer::new(&w3.catalog, &w3.query, CostModel::default());
    Ess::compile_cached(&opt3, config(3, recost), Some(&cache)).expect("cold compile");
    c.bench_function("compile/3d_warm_cache", |b| {
        b.iter(|| {
            let ess = Ess::compile_cached(&opt3, config(3, recost), Some(&cache)).unwrap();
            black_box(ess.contours.num_bands())
        })
    });

    // manual medians on the 3D coarse fixture for the perf trajectory
    let reps = 5;
    let exact_s = median_secs(reps, || {
        Ess::compile_cached(&opt3, config(3, CompileMode::Exact), None).unwrap();
    });
    let recost_s = median_secs(reps, || {
        Ess::compile_cached(&opt3, config(3, recost), None).unwrap();
    });
    let warm_s = median_secs(reps, || {
        Ess::compile_cached(&opt3, config(3, recost), Some(&cache)).unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);

    // hand-rolled JSON: the workspace serde_json may be a stub (see
    // crates/ess/src/cache.rs), so the report is written directly
    let json = format!(
        "{{\n  \"bench\": \"compile_cache\",\n  \"fixture\": \"q91 3D, EssConfig::coarse(3)\",\n  \
         \"reps\": {reps},\n  \"exact_seconds\": {exact_s:.6},\n  \
         \"recost_seconds\": {recost_s:.6},\n  \"warm_cache_seconds\": {warm_s:.6},\n  \
         \"recost_speedup\": {:.2},\n  \"warm_cache_speedup\": {:.2}\n}}\n",
        exact_s / recost_s.max(1e-12),
        exact_s / warm_s.max(1e-12),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}\n{json}"),
        Err(e) => eprintln!("could not write {out}: {e}\n{json}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
