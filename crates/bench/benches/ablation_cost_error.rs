//! Ablation (§7): robustness to bounded cost-model error — SpillBound's
//! empirical MSO under a δ-perturbed execution engine vs the inflated
//! guarantee (1+δ)²(D²+3D). Prints the sweep, then times one perturbed
//! discovery.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{ablation_cost_error, render_cost_error, runtime_for, Scale};
use rqp_core::{Discovery, SpillBound};
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_cost_error(Scale::Quick);
    println!("{}", render_cost_error(&rows));

    let w = Workload::q91(3).expect("workload builds");
    let mut rt = runtime_for(&w, Scale::Quick);
    rt.set_cost_error(0.3);
    let qa = rt.grid().num_cells() / 2;
    let sb = SpillBound::new();
    sb.discover(&rt, qa);
    c.bench_function("ablation/sb_discover_delta03_3d_q91", |b| {
        b.iter(|| black_box(sb.discover(&rt, qa).total_cost))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
