//! Tracing-overhead benchmark. Two views:
//!
//! * criterion micro: a bare discovery run (no compile) with the tracer
//!   off vs. on — the worst case for tracing, since a simulated discovery
//!   run is microseconds long and every span's fixed cost shows;
//! * the recorded number: a full serve run (single-flight ESS compile +
//!   8 discovery sessions, the paths sessions actually pay) off vs. on,
//!   where the ≤5% overhead acceptance bar applies. Median timings and
//!   the measured ratio go to `BENCH_6.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_core::{Discovery, SpillBound};
use rqp_ess::EssConfig;
use rqp_obs::{install, SpanKind, Tracer};
use rqp_serve::{serve_workload, ServeConfig};
use rqp_workloads::{parse_session_file, Workload};
use std::hint::black_box;
use std::time::Instant;

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    let w = Workload::q91(3).expect("workload builds");
    let rt = w.runtime(EssConfig::coarse(3)).expect("ESS compiles");
    let qa = rt.grid().num_cells() / 2;
    let algo = SpillBound::with_refined_bounds();

    c.bench_function("trace_overhead/discover_off", |b| {
        b.iter(|| {
            let _scope = install(Tracer::disabled());
            black_box(algo.discover(&rt, qa).total_cost)
        })
    });
    c.bench_function("trace_overhead/discover_on", |b| {
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let tracer = Tracer::new(id, 0);
            let _scope = install(tracer.clone());
            let mut root = tracer.span(rqp_obs::names::SPAN_SESSION, SpanKind::Session);
            root.attr("session", id);
            let cost = algo.discover(&rt, qa).total_cost;
            drop(root);
            black_box((cost, tracer.spans().len()))
        })
    });

    // bare-discovery medians: the worst case, reported for context
    let reps = 15;
    let discover_off_s = median_secs(reps, || {
        let _scope = install(Tracer::disabled());
        black_box(algo.discover(&rt, qa).total_cost);
    });
    let mut id = 1_000_000u64;
    let discover_on_s = median_secs(reps, || {
        id += 1;
        let tracer = Tracer::new(id, 0);
        let _scope = install(tracer.clone());
        let _root = tracer.span(rqp_obs::names::SPAN_SESSION, SpanKind::Session);
        black_box(algo.discover(&rt, qa).total_cost);
    });

    // the acceptance measure: a full serve run (compile + 8 sessions),
    // i.e. what a traced deployment actually pays per unit of service
    let entries = parse_session_file("3D_Q91 sb x8\n").expect("session file parses");
    let serve_reps = 9;
    let run = |tracing: bool| {
        let report = serve_workload(
            ServeConfig { workers: 4, queue_cap: 16, tracing, ..ServeConfig::default() },
            &entries,
        )
        .expect("serve run succeeds");
        assert_eq!(report.completed(), 8);
        black_box(report.results.len());
    };
    let off_s = median_secs(serve_reps, || run(false));
    let on_s = median_secs(serve_reps, || run(true));
    let overhead = on_s / off_s.max(1e-12) - 1.0;

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \
         \"fixture\": \"q91 3D coarse; serve: 1 compile + 8 SpillBound sessions, 4 workers\",\n  \
         \"serve_reps\": {serve_reps},\n  \"serve_off_seconds\": {off_s:.6},\n  \
         \"serve_on_seconds\": {on_s:.6},\n  \"overhead_ratio\": {overhead:.4},\n  \
         \"budget_ratio\": 0.05,\n  \"discover_reps\": {reps},\n  \
         \"bare_discover_off_seconds\": {discover_off_s:.6},\n  \
         \"bare_discover_on_seconds\": {discover_on_s:.6}\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}\n{json}"),
        Err(e) => eprintln!("could not write {out}: {e}\n{json}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
