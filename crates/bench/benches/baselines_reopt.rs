//! §8 comparison: the POP/Rio-style mid-query reoptimization heuristic vs
//! SpillBound — decent averages, unbounded worst case. Prints the
//! comparison, then times one ReOpt discovery (plan + up to D
//! reoptimizations).

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{baselines_comparison, render_baselines, runtime_for, Scale};
use rqp_core::{Discovery, ReOptimizer};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = baselines_comparison(Scale::Quick);
    println!("{}", render_baselines(&rows));

    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let qa = rt.grid().terminus();
    c.bench_function("baselines/reopt_discover_4d_q91", |b| {
        b.iter(|| black_box(ReOptimizer::default().discover(&rt, qa).total_cost))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
