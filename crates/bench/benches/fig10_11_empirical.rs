//! Figs. 10 & 11: empirical MSO and ASO of PlanBouquet vs SpillBound by
//! exhaustive ESS enumeration over the query suite. Prints both series,
//! then times one full-grid SpillBound evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig10_11_empirical, render_empirical, runtime_for, Scale};
use rqp_core::{evaluate, SpillBound};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig10_11_empirical(Scale::Quick);
    println!("{}", render_empirical(&rows));

    let w = Workload::tpcds(BenchQuery::Q15_3D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    c.bench_function("fig10/evaluate_sb_full_grid_3d_q15", |b| {
        b.iter(|| black_box(evaluate(&rt, &SpillBound::new()).mso))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
