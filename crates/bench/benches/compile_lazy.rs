//! Lazy anytime compilation benchmarks (ISSUE 9): cold
//! compile-to-first-execution. An eager server pays the full `Ess::compile`
//! before any session can execute; a lazy server pays `LazyEss::begin`
//! (ladder anchors only) plus the flood of the first contour band. On 4D+
//! fixtures the gap is the point of the whole tier — the manual medians go
//! to `BENCH_7.json` at the repo root (target: ≥10×).

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_ess::{Ess, EssConfig, LazyEss};
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;
use rqp_workloads::Workload;
use std::hint::black_box;
use std::time::Instant;

fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    for dims in [3usize, 4] {
        let w = Workload::q91(dims).expect("workload builds");
        let cfg = EssConfig::coarse(dims);
        let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());

        c.bench_function(&format!("compile_lazy/{dims}d_eager_full"), |b| {
            b.iter(|| {
                let ess = Ess::compile(&opt, cfg).unwrap();
                black_box(ess.posp.num_plans())
            })
        });
        c.bench_function(&format!("compile_lazy/{dims}d_lazy_first_band"), |b| {
            b.iter(|| {
                let lazy = LazyEss::begin(&w.catalog, &w.query, CostModel::default(), cfg).unwrap();
                lazy.compile_through(0);
                black_box(lazy.band_cells(0).len())
            })
        });
    }

    // manual medians on the 4D fixture for the perf trajectory
    let w4 = Workload::q91(4).expect("workload builds");
    let cfg4 = EssConfig::coarse(4);
    let opt4 = Optimizer::new(&w4.catalog, &w4.query, CostModel::default());
    let reps = 5;
    let eager_s = median_secs(reps, || {
        Ess::compile(&opt4, cfg4).unwrap();
    });
    let lazy_s = median_secs(reps, || {
        let lazy = LazyEss::begin(&w4.catalog, &w4.query, CostModel::default(), cfg4).unwrap();
        lazy.compile_through(0);
    });
    let probe = LazyEss::begin(&w4.catalog, &w4.query, CostModel::default(), cfg4).unwrap();
    probe.compile_through(0);
    let (bands_first, bands_total) = (probe.bands_compiled(), probe.num_bands());

    // hand-rolled JSON: the workspace serde_json may be a stub (see
    // crates/ess/src/cache.rs), so the report is written directly
    let json = format!(
        "{{\n  \"bench\": \"compile_lazy\",\n  \"fixture\": \"q91 4D, EssConfig::coarse(4)\",\n  \
         \"reps\": {reps},\n  \"eager_full_seconds\": {eager_s:.6},\n  \
         \"lazy_first_band_seconds\": {lazy_s:.6},\n  \
         \"first_execution_speedup\": {:.2},\n  \
         \"bands_compiled_at_first_execution\": {bands_first},\n  \
         \"total_bands\": {bands_total}\n}}\n",
        eager_s / lazy_s.max(1e-12),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    match std::fs::write(out, &json) {
        Ok(()) => println!("wrote {out}\n{json}"),
        Err(e) => eprintln!("could not write {out}: {e}\n{json}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
