//! Table 2: the cost of enforcing contour alignment — percentage of
//! aligned contours at replacement-penalty thresholds. Prints the table,
//! then times the per-query alignment analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{render_alignment, runtime_for, table2_alignment, Scale};
use rqp_core::alignment_stats;
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = table2_alignment(Scale::Quick);
    println!("{}", render_alignment(&rows));

    let w = Workload::tpcds(BenchQuery::Q96_3D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    c.bench_function("table2/alignment_stats_3d_q96", |b| {
        b.iter(|| black_box(alignment_stats(&rt).max_penalty()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
