//! Micro-benchmarks of the substrate: optimizer invocations, plan costing,
//! spill-mode execution and contour machinery. These are the units whose
//! throughput determines how fast an ESS compiles and how fast exhaustive
//! MSO evaluation runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{runtime_for, Scale};
use rqp_catalog::SelVector;
use rqp_executor::Engine;
use rqp_optimizer::Optimizer;
use rqp_qplan::pipeline::{epp_spill_order, spill_target};
use rqp_qplan::{CostModel, PlanCtx};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("workload builds");
    let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
    let model = CostModel::default();
    let loc = SelVector::from_values(&[1e-3, 1e-4, 1e-2, 1e-3]);

    c.bench_function("micro/optimize_7rel_4epp", |b| b.iter(|| black_box(opt.optimize(&loc).cost)));

    let planned = opt.optimize(&loc);
    c.bench_function("micro/cost_plan_at_location", |b| {
        b.iter(|| {
            let ctx = PlanCtx::new(&w.catalog, &w.query, &loc);
            black_box(model.cost(&planned.plan, &ctx))
        })
    });

    c.bench_function("micro/spill_order_extraction", |b| {
        b.iter(|| black_box(epp_spill_order(&planned.plan, &w.query).len()))
    });

    let engine = Engine::new(&w.catalog, &w.query, model);
    let unlearnt = (0..4).map(rqp_catalog::EppId).collect();
    let target = spill_target(&planned.plan, &w.query, &unlearnt).unwrap();
    let qa = SelVector::from_values(&[0.1, 0.1, 0.1, 0.1]);
    c.bench_function("micro/spill_execution_coarse", |b| {
        b.iter(|| {
            black_box(
                engine.execute_spill_coarse(&planned.plan, target, &loc, &qa, planned.cost).spent,
            )
        })
    });

    let rt = runtime_for(&w, Scale::Quick);
    let qa_cell = rt.grid().num_cells() / 2;
    let sb = rqp_core::SpillBound::new();
    use rqp_core::Discovery;
    sb.discover(&rt, qa_cell); // warm the per-contour cache
    c.bench_function("micro/sb_discover_warm_4d_q91", |b| {
        b.iter(|| black_box(sb.discover(&rt, qa_cell).total_cost))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
