//! Fig. 7: the SpillBound execution trace on 2D_Q91. Prints the
//! Manhattan-profile drill-down, then times one full refined-bounds
//! discovery.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig7_trace, runtime_for, Scale};
use rqp_core::{Discovery, SpillBound};
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig7_trace(Scale::Quick));

    let w = Workload::q91(2).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let grid = rt.grid();
    let qa = grid.index(&[grid.snap_ceil(0, 0.04), grid.snap_ceil(1, 0.1)]);
    c.bench_function("fig07/sb_refined_discover_2d_q91", |b| {
        b.iter(|| {
            let sb = SpillBound::with_refined_bounds();
            black_box(sb.discover(&rt, qa).total_cost)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
