//! Ablation: the anorexic-reduction threshold λ — how the plan-diagram
//! cardinality ρ, PlanBouquet's guarantee and its empirical MSO respond.
//! Prints the sweep, then times one reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{ablation_anorexic, render_anorexic, runtime_for, Scale};
use rqp_ess::anorexic_reduce;
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_anorexic(Scale::Quick);
    println!("{}", render_anorexic(&rows));

    let w = Workload::tpcds(BenchQuery::Q96_3D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let ess = rt.ess().expect("surface materializes");
    c.bench_function("ablation/anorexic_reduce_lambda02", |b| {
        b.iter(|| black_box(anorexic_reduce(&ess.posp, &rt.optimizer, 0.2).num_plans))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
