//! Ablation: grid-resolution stability of the empirical MSO — evidence
//! that the discretization substitution (DESIGN.md) preserves the paper's
//! comparisons. Prints the sweep, then times a full SB evaluation at the
//! middle resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{ablation_resolution, render_resolution, Scale};
use rqp_core::{evaluate, SpillBound};
use rqp_ess::EssConfig;
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_resolution(Scale::Quick);
    println!("{}", render_resolution(&rows));

    let w = Workload::q91(2).expect("workload builds");
    let rt = w.runtime(EssConfig { resolution: 16, ..Default::default() }).expect("ESS compiles");
    c.bench_function("ablation/evaluate_sb_res16_2d_q91", |b| {
        b.iter(|| black_box(evaluate(&rt, &SpillBound::new()).mso))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
