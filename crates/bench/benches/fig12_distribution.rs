//! Fig. 12: the sub-optimality distribution over the ESS for 4D_Q91.
//! Prints the PB/SB histograms (bin width 5), then times histogram
//! extraction from a precomputed evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig12_distribution, render_histogram, runtime_for, Scale};
use rqp_core::{evaluate, SpillBound};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let h = fig12_distribution(Scale::Quick);
    println!("{}", render_histogram(&h));

    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let ev = evaluate(&rt, &SpillBound::new());
    c.bench_function("fig12/histogram_from_evaluation", |b| {
        b.iter(|| black_box(ev.histogram(5.0, 10)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
