//! Robustness sweep: SpillBound's structural guarantee on seeded random
//! workloads (chain/star/branch geometries, with and without aggregation).
//! Prints the sweep, then times one random-workload ESS compile + eval.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{random_workload_sweep, render_random, Scale};
use rqp_core::{evaluate, SpillBound};
use rqp_ess::EssConfig;
use rqp_workloads::{synth_workload, SynthConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = random_workload_sweep(Scale::Quick, 9);
    println!("{}", render_random(&rows));
    assert!(rows.iter().all(|r| r.sb_mso <= r.bound), "bound violated on a random workload");

    let w = synth_workload(SynthConfig::chain(4, 7)).expect("workload builds");
    c.bench_function("random/compile_and_evaluate_chain4", |b| {
        b.iter(|| {
            let rt =
                w.runtime(EssConfig { resolution: 6, ..Default::default() }).expect("ESS compiles");
            black_box(evaluate(&rt, &SpillBound::new()).mso)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
