//! Fig. 13 & Table 4: AlignedBound vs SpillBound empirical MSO (with the
//! 2D+2 reference) and AB's maximum replacement penalty. Prints both, then
//! times one AlignedBound discovery including its partition search.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig13_table4_aligned, render_aligned, runtime_for, Scale};
use rqp_core::{AlignedBound, Discovery};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig13_table4_aligned(Scale::Quick);
    println!("{}", render_aligned(&rows));

    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let qa = rt.grid().num_cells() / 2;
    c.bench_function("fig13/ab_discover_cold_4d_q91", |b| {
        b.iter(|| {
            let ab = AlignedBound::new(); // cold cache: full partition search
            black_box(ab.discover(&rt, qa).total_cost)
        })
    });
    let ab = AlignedBound::new();
    ab.discover(&rt, qa);
    c.bench_function("fig13/ab_discover_warm_4d_q91", |b| {
        b.iter(|| black_box(ab.discover(&rt, qa).total_cost))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
