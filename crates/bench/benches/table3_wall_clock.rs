//! Table 3 / §6.3: the wall-clock drill-down on 4D_Q91 — native vs SB vs
//! AB with cost units anchored to the paper's 44 s oracle time. Prints the
//! trace, then times the native baseline's single planning+costing step.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{render_wall_clock, runtime_for, table3_wall_clock, Scale};
use rqp_core::{Discovery, NativeOptimizer};
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let r = table3_wall_clock(Scale::Quick);
    println!("{}", render_wall_clock(&r));

    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let qa = rt.grid().terminus();
    c.bench_function("table3/native_discover_4d_q91", |b| {
        b.iter(|| black_box(NativeOptimizer.discover(&rt, qa).total_cost))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
