//! Fig. 9: MSO-guarantee variation with ESS dimensionality for TPC-DS Q91
//! (D = 2..6). Prints the sweep, then times the dominating cost of the
//! pipeline: ESS compilation (parallel POSP construction) for the 2-D
//! variant.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig9_dimensionality, render_guarantees, Scale};
use rqp_ess::Ess;
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig9_dimensionality(Scale::Quick);
    println!("{}", render_guarantees("Fig 9: MSOg vs dimensionality (Q91)", &rows));

    let w = Workload::q91(2).expect("workload builds");
    let opt = Optimizer::new(&w.catalog, &w.query, CostModel::default());
    let cfg = Scale::Quick.ess_config(2);
    c.bench_function("fig09/ess_compile_2d_q91", |b| {
        b.iter(|| black_box(Ess::compile(&opt, cfg).expect("ESS compiles").posp.num_plans()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
