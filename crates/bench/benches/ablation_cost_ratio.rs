//! Ablation (§4.2 remark): SpillBound under different geometric contour
//! ratios — cost doubling is the paper's default but not quite ideal.
//! Prints the sweep, then times contour construction at ratio 2.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{ablation_cost_ratio, render_ratio, runtime_for, Scale};
use rqp_ess::ContourSet;
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_cost_ratio(Scale::Quick);
    println!("{}", render_ratio(&rows));

    let w = Workload::q91(2).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    let ess = rt.ess().expect("surface materializes");
    c.bench_function("ablation/contour_build_ratio2", |b| {
        b.iter(|| black_box(ContourSet::build(&ess.posp, 2.0).map(|c| c.num_bands()).unwrap_or(0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
