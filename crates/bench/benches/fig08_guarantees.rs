//! Fig. 8: MSO guarantees of PlanBouquet (4(1+λ)ρ_red) vs SpillBound
//! (D²+3D) across the benchmark suite. Prints the full comparison, then
//! times the ρ_red computation (anorexic reduction + contour densities).

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{fig8_mso_guarantees, render_guarantees, runtime_for, Scale};
use rqp_core::PlanBouquet;
use rqp_workloads::{BenchQuery, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig8_mso_guarantees(Scale::Quick);
    println!("{}", render_guarantees("Fig 8: MSO guarantees (PB vs SB)", &rows));

    let w = Workload::tpcds(BenchQuery::Q15_3D).expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    c.bench_function("fig08/anorexic_rho_red_3d_q15", |b| {
        b.iter(|| black_box(PlanBouquet::anorexic(&rt, 0.2).expect("reduces").rho(&rt)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
