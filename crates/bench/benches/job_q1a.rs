//! §6.5: the Join Order Benchmark's Q1a — the native optimizer's
//! thousands-scale MSO collapses to single digits under SB/AB. Prints the
//! comparison, then times the worst-estimate native MSO computation.

use criterion::{criterion_group, criterion_main, Criterion};
use rqp_bench::{job_q1a, render_job, runtime_for, Scale};
use rqp_core::native::native_mso_worst_estimate;
use rqp_workloads::Workload;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let r = job_q1a(Scale::Quick);
    println!("{}", render_job(&r));

    let w = Workload::job_q1a().expect("workload builds");
    let rt = runtime_for(&w, Scale::Quick);
    c.bench_function("job/native_worst_estimate_mso", |b| {
        b.iter(|| black_box(native_mso_worst_estimate(&rt)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
