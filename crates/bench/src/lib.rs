// Bench-harness exemption: experiment drivers abort loudly on setup
// failure by design (rqp-lint likewise exempts crates/bench).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

//! The experiment harness: one function per table/figure of the paper's
//! evaluation (§6), shared by the Criterion benches and the `reproduce`
//! binary.
//!
//! Every function returns structured rows and can run at two scales:
//! [`Scale::Quick`] (coarse grids, used inside `cargo bench` so the whole
//! suite stays in CI budgets) and [`Scale::Full`] (the DESIGN.md resolution
//! schedule, used by `reproduce --full` to regenerate EXPERIMENTS.md).

pub mod experiments;
pub mod obs;
pub mod render;

pub use experiments::*;
pub use obs::{register_all_metrics, ObsOptions};
pub use render::*;

/// Every experiment name `reproduce` accepts, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "table3",
    "table4",
    "job",
    "ratio",
    "anorexic",
    "baselines",
    "random",
    "cost_error",
    "resolution",
    "chaos",
    "serve",
];

use rqp_core::RobustRuntime;
use rqp_ess::EssConfig;
use rqp_workloads::Workload;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Coarse grids and sampled evaluation — seconds per experiment.
    Quick,
    /// The DESIGN.md resolution schedule — minutes for the full suite.
    Full,
}

impl Scale {
    /// ESS configuration for a query of the given dimensionality.
    pub fn ess_config(self, dims: usize) -> EssConfig {
        match self {
            Scale::Quick => EssConfig::coarse(dims),
            Scale::Full => EssConfig::for_dims(dims),
        }
    }

    /// Evaluation stride: sample every `stride`-th grid cell when the grid
    /// is large (exhaustive when 1).
    pub fn eval_stride(self, num_cells: usize) -> usize {
        let target = match self {
            Scale::Quick => 4_000,
            Scale::Full => 40_000,
        };
        (num_cells / target).max(1)
    }
}

/// Compile a workload's runtime at the given scale.
///
/// # Panics
/// Panics if ESS compilation fails (harness-only convenience; the curated
/// workloads always compile).
pub fn runtime_for(w: &Workload, scale: Scale) -> RobustRuntime<'_> {
    w.runtime(scale.ess_config(w.query.dims())).expect("curated workload compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_coarser() {
        assert!(Scale::Quick.ess_config(4).resolution < Scale::Full.ess_config(4).resolution);
        assert!(Scale::Quick.eval_stride(1_000_000) > 1);
        assert_eq!(Scale::Full.eval_stride(1_000), 1);
    }
}
