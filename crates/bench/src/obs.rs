//! Observability wiring for the reproduction harness: pre-register every
//! metric series, optionally stream JSONL events, and dump the registry as
//! JSON and/or Prometheus text when a run finishes.

use std::io;
use std::sync::Arc;

/// Where a `reproduce` run should leave its machine-readable record.
#[derive(Debug, Clone, Default)]
pub struct ObsOptions {
    /// Write the final metrics registry snapshot as JSON here.
    pub metrics_path: Option<String>,
    /// Stream structured events as JSONL here while running.
    pub events_path: Option<String>,
    /// Write the final registry in Prometheus text exposition format here.
    pub prometheus_path: Option<String>,
}

impl ObsOptions {
    /// True when any output was requested.
    pub fn any(&self) -> bool {
        self.metrics_path.is_some() || self.events_path.is_some() || self.prometheus_path.is_some()
    }
}

/// Pre-register every workspace metric series at zero, so a snapshot taken
/// after a run that exercised only part of the stack (e.g. `fig8`, which
/// computes guarantees without any budgeted executions) still lists all
/// standard names.
pub fn register_all_metrics() {
    rqp_optimizer::register_metrics();
    rqp_ess::register_metrics();
    rqp_executor::register_metrics();
    rqp_core::register_metrics();
    rqp_serve::register_metrics();
}

/// Set up observability for a run: register all series and, when an events
/// path is given, install the JSONL sink.
pub fn init(opts: &ObsOptions) -> io::Result<()> {
    register_all_metrics();
    if let Some(path) = &opts.events_path {
        let sink = rqp_obs::JsonlSink::create(path)?;
        rqp_obs::set_sink(Arc::new(sink));
    }
    Ok(())
}

/// Tear down observability after a run: flush and remove the event sink,
/// then write the requested metric dumps.
pub fn finish(opts: &ObsOptions) -> io::Result<()> {
    if opts.events_path.is_some() {
        rqp_obs::flush_sink();
        rqp_obs::clear_sink();
    }
    if let Some(path) = &opts.metrics_path {
        let json = rqp_obs::global()
            .to_json_pretty()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)?;
    }
    if let Some(path) = &opts.prometheus_path {
        std::fs::write(path, rqp_obs::global().render_prometheus())?;
    }
    Ok(())
}
