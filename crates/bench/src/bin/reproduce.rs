//! Regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!   reproduce [--full] [--list] [--metrics PATH] [--events PATH]
//!             [--prometheus PATH] [--cache-dir DIR] [EXPERIMENT ...]
//!
//! Without experiment names every experiment runs; `--full` switches from
//! the Quick scale to the DESIGN.md resolution schedule. `--list` prints
//! the experiment names and exits. `--metrics` dumps the final metrics
//! registry as JSON, `--events` streams structured JSONL events during the
//! run, and `--prometheus` writes the registry in Prometheus text format.
//! `--cache-dir` routes every ESS compile through a persistent snapshot
//! cache, so repeated reproduction runs skip the optimizer sweeps.
//! Unknown experiment names or flags are rejected.

use rqp_bench::*;
use std::time::Instant;

struct Cli {
    scale: Scale,
    wanted: Vec<String>,
    obs: ObsOptions,
}

fn usage() -> String {
    format!(
        "usage: reproduce [--full] [--list] [--metrics PATH] [--events PATH] \
         [--prometheus PATH] [--cache-dir DIR] [EXPERIMENT ...]\nexperiments: {}",
        EXPERIMENTS.join(" ")
    )
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut scale = Scale::Quick;
    let mut wanted = Vec::new();
    let mut obs = ObsOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            "--metrics" | "--events" | "--prometheus" => {
                let path = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a file path argument"))?
                    .clone();
                match arg.as_str() {
                    "--metrics" => obs.metrics_path = Some(path),
                    "--events" => obs.events_path = Some(path),
                    _ => obs.prometheus_path = Some(path),
                }
            }
            "--cache-dir" => {
                let dir = it
                    .next()
                    .ok_or_else(|| format!("{arg} requires a directory argument"))?
                    .clone();
                rqp_ess::set_global_cache_dir(&dir)
                    .map_err(|e| format!("cannot enable compile cache: {e}"))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag: {flag}\n{}", usage()));
            }
            name => {
                if !EXPERIMENTS.contains(&name) {
                    return Err(format!(
                        "unknown experiment: {name}\nvalid experiments: {}",
                        EXPERIMENTS.join(" ")
                    ));
                }
                wanted.push(name.to_string());
            }
        }
    }
    Ok(Some(Cli { scale, wanted, obs }))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => return,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    if let Err(e) = rqp_bench::obs::init(&cli.obs) {
        eprintln!("error: failed to set up observability outputs: {e}");
        std::process::exit(1);
    }

    let scale = cli.scale;
    let want = |name: &str| cli.wanted.is_empty() || cli.wanted.iter().any(|w| w == name);

    println!("robust-qp reproduction harness (scale: {:?})\n", scale);

    let t0 = Instant::now();
    if want("fig7") {
        section("Fig 7: SpillBound execution trace (2D_Q91)");
        println!("{}", fig7_trace(scale));
    }
    if want("fig8") {
        section("Fig 8: MSO guarantees");
        println!(
            "{}",
            render_guarantees("Fig 8: MSO guarantees (PB vs SB)", &fig8_mso_guarantees(scale))
        );
    }
    if want("fig9") {
        section("Fig 9: guarantee vs dimensionality (Q91)");
        println!(
            "{}",
            render_guarantees(
                "Fig 9: MSOg vs dimensionality (Q91, D=2..6)",
                &fig9_dimensionality(scale)
            )
        );
    }
    if want("fig10") || want("fig11") {
        section("Fig 10 & 11: empirical MSO and ASO");
        println!("{}", render_empirical(&fig10_11_empirical(scale)));
    }
    if want("fig12") {
        section("Fig 12: sub-optimality distribution");
        println!("{}", render_histogram(&fig12_distribution(scale)));
    }
    if want("fig13") || want("table4") {
        section("Fig 13 & Table 4: AlignedBound");
        println!("{}", render_aligned(&fig13_table4_aligned(scale)));
    }
    if want("table2") {
        section("Table 2: contour alignment cost");
        println!("{}", render_alignment(&table2_alignment(scale)));
    }
    if want("table3") {
        section("Table 3 / §6.3: wall-clock drill-down");
        println!("{}", render_wall_clock(&table3_wall_clock(scale)));
    }
    if want("job") {
        section("§6.5: JOB benchmark");
        println!("{}", render_job(&job_q1a(scale)));
    }
    if want("ratio") {
        section("Ablation: contour cost ratio");
        println!("{}", render_ratio(&ablation_cost_ratio(scale)));
    }
    if want("anorexic") {
        section("Ablation: anorexic reduction");
        println!("{}", render_anorexic(&ablation_anorexic(scale)));
    }
    if want("baselines") {
        section("§8 comparison: reoptimization heuristics");
        println!("{}", render_baselines(&baselines_comparison(scale)));
    }
    if want("random") {
        section("Robustness sweep: random workloads");
        println!("{}", render_random(&random_workload_sweep(scale, 9)));
    }
    if want("cost_error") {
        section("Ablation: cost-model error (§7)");
        println!("{}", render_cost_error(&ablation_cost_error(scale)));
    }
    if want("resolution") {
        section("Ablation: grid resolution");
        println!("{}", render_resolution(&ablation_resolution(scale)));
    }
    if want("chaos") {
        section("Robustness: deterministic fault-injection sweep (2D_Q91)");
        println!("{}", chaos_sweep_experiment(scale));
    }
    if want("serve") {
        section("Serving: concurrent sessions over a shared POSP registry");
        println!("{}", serve_experiment(scale));
    }
    println!("total: {:.1?}", t0.elapsed());

    if let Err(e) = rqp_bench::obs::finish(&cli.obs) {
        eprintln!("error: failed to write observability outputs: {e}");
        std::process::exit(1);
    }
    if cli.obs.any() {
        for (label, path) in [
            ("metrics", &cli.obs.metrics_path),
            ("events", &cli.obs.events_path),
            ("prometheus", &cli.obs.prometheus_path),
        ] {
            if let Some(p) = path {
                println!("{label}: {p}");
            }
        }
    }
}

fn section(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}
