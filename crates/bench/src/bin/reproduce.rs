//! Regenerate every table and figure of the paper's evaluation.
//!
//! Usage:
//!   reproduce [--full] [EXPERIMENT ...]
//!
//! Without arguments all experiments run at Quick scale; `--full` switches
//! to the DESIGN.md resolution schedule. Experiments: fig7 fig8 fig9 fig10
//! fig12 fig13 table2 table3 job baselines random ratio anorexic cost_error resolution.

use rqp_bench::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let wanted: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    println!(
        "robust-qp reproduction harness (scale: {:?})\n",
        scale
    );

    let t0 = Instant::now();
    if want("fig7") {
        section("Fig 7: SpillBound execution trace (2D_Q91)");
        println!("{}", fig7_trace(scale));
    }
    if want("fig8") {
        section("Fig 8: MSO guarantees");
        println!("{}", render_guarantees("Fig 8: MSO guarantees (PB vs SB)", &fig8_mso_guarantees(scale)));
    }
    if want("fig9") {
        section("Fig 9: guarantee vs dimensionality (Q91)");
        println!(
            "{}",
            render_guarantees("Fig 9: MSOg vs dimensionality (Q91, D=2..6)", &fig9_dimensionality(scale))
        );
    }
    if want("fig10") || want("fig11") {
        section("Fig 10 & 11: empirical MSO and ASO");
        println!("{}", render_empirical(&fig10_11_empirical(scale)));
    }
    if want("fig12") {
        section("Fig 12: sub-optimality distribution");
        println!("{}", render_histogram(&fig12_distribution(scale)));
    }
    if want("fig13") || want("table4") {
        section("Fig 13 & Table 4: AlignedBound");
        println!("{}", render_aligned(&fig13_table4_aligned(scale)));
    }
    if want("table2") {
        section("Table 2: contour alignment cost");
        println!("{}", render_alignment(&table2_alignment(scale)));
    }
    if want("table3") {
        section("Table 3 / §6.3: wall-clock drill-down");
        println!("{}", render_wall_clock(&table3_wall_clock(scale)));
    }
    if want("job") {
        section("§6.5: JOB benchmark");
        println!("{}", render_job(&job_q1a(scale)));
    }
    if want("ratio") {
        section("Ablation: contour cost ratio");
        println!("{}", render_ratio(&ablation_cost_ratio(scale)));
    }
    if want("anorexic") {
        section("Ablation: anorexic reduction");
        println!("{}", render_anorexic(&ablation_anorexic(scale)));
    }
    if want("baselines") {
        section("§8 comparison: reoptimization heuristics");
        println!("{}", render_baselines(&baselines_comparison(scale)));
    }
    if want("random") {
        section("Robustness sweep: random workloads");
        println!("{}", render_random(&random_workload_sweep(scale, 9)));
    }
    if want("cost_error") {
        section("Ablation: cost-model error (§7)");
        println!("{}", render_cost_error(&ablation_cost_error(scale)));
    }
    if want("resolution") {
        section("Ablation: grid resolution");
        println!("{}", render_resolution(&ablation_resolution(scale)));
    }
    println!("total: {:.1?}", t0.elapsed());
}

fn section(title: &str) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}
