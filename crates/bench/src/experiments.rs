//! The per-figure/per-table experiment implementations.

use crate::Scale;
use rqp_core::{
    alignment_stats, evaluate, evaluate_sampled, native::native_mso_worst_estimate, pb_guarantee,
    sb_guarantee, AlignedBound, Discovery, Evaluation, NativeOptimizer, PlanBouquet, RobustRuntime,
    SpillBound,
};
use rqp_workloads::{BenchQuery, Workload};
use serde::Serialize;

/// λ used for anorexic reduction throughout (the paper's default, §6.2).
pub const LAMBDA: f64 = 0.2;

fn eval_at_scale(rt: &RobustRuntime<'_>, algo: &dyn Discovery, scale: Scale) -> Evaluation {
    let stride = scale.eval_stride(rt.grid().num_cells());
    if stride <= 1 {
        evaluate(rt, algo)
    } else {
        evaluate_sampled(rt, algo, stride)
    }
}

// ---------------------------------------------------------------------
// Fig. 7 — SpillBound execution trace on 2D_Q91
// ---------------------------------------------------------------------

/// The Fig. 7 experiment: a refined-bounds SpillBound trace for 2D_Q91 with
/// the query instance in the upper-middle of the ESS, rendered as the
/// Manhattan-profile execution listing.
pub fn fig7_trace(scale: Scale) -> String {
    let w = Workload::q91(2).expect("Q91 builds");
    let rt = runtime(&w, scale);
    let grid = rt.grid();
    // qa ≈ (0.04, 0.1), as in the paper's trace
    let qa = grid.index(&[grid.snap_ceil(0, 0.04), grid.snap_ceil(1, 0.1)]);
    let sb = SpillBound::with_refined_bounds();
    let trace = sb.discover(&rt, qa);
    let mut out = String::new();
    out.push_str(&format!(
        "2D_Q91, qa = {} (cell {qa}), {} contours\n",
        grid.location(qa),
        rt.num_bands()
    ));
    out.push_str(&trace.render());
    out
}

fn runtime<'a>(w: &'a Workload, scale: Scale) -> RobustRuntime<'a> {
    crate::runtime_for(w, scale)
}

// ---------------------------------------------------------------------
// Fig. 8 / Fig. 9 — MSO guarantees
// ---------------------------------------------------------------------

/// One row of the guarantee comparison.
#[derive(Debug, Clone, Serialize)]
pub struct GuaranteeRow {
    /// Query name (`xD_Qz`).
    pub query: String,
    /// ESS dimensionality.
    pub dims: usize,
    /// ρ_red: max contour density after anorexic reduction.
    pub rho_red: usize,
    /// PlanBouquet guarantee `4(1+λ)ρ_red`.
    pub pb_guarantee: f64,
    /// SpillBound guarantee `D²+3D`.
    pub sb_guarantee: f64,
}

/// Fig. 8: MSO guarantees of PB vs SB across the query suite.
pub fn fig8_mso_guarantees(scale: Scale) -> Vec<GuaranteeRow> {
    BenchQuery::all()
        .iter()
        .map(|&bq| {
            let w = Workload::tpcds(bq).expect("suite query builds");
            let rt = runtime(&w, scale);
            guarantee_row(&rt, bq.name())
        })
        .collect()
}

fn guarantee_row(rt: &RobustRuntime<'_>, name: &str) -> GuaranteeRow {
    let pb = PlanBouquet::anorexic(rt, LAMBDA).expect("anorexic reduction");
    let rho_red = pb.rho(rt);
    GuaranteeRow {
        query: name.to_string(),
        dims: rt.dims(),
        rho_red,
        pb_guarantee: pb_guarantee(rho_red, LAMBDA),
        sb_guarantee: sb_guarantee(rt.dims()),
    }
}

/// Fig. 9: guarantee variation with dimensionality for Q91 (D = 2..6).
pub fn fig9_dimensionality(scale: Scale) -> Vec<GuaranteeRow> {
    (2..=6)
        .map(|d| {
            let w = Workload::q91(d).expect("Q91 builds");
            let rt = runtime(&w, scale);
            guarantee_row(&rt, &w.query.name)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 10 / Fig. 11 — empirical MSO and ASO
// ---------------------------------------------------------------------

/// One row of the empirical comparison (Figs. 10 & 11 share the runs).
#[derive(Debug, Clone, Serialize)]
pub struct EmpiricalRow {
    /// Query name.
    pub query: String,
    /// ESS dimensionality.
    pub dims: usize,
    /// PlanBouquet empirical MSO.
    pub pb_mso: f64,
    /// SpillBound empirical MSO.
    pub sb_mso: f64,
    /// PlanBouquet ASO.
    pub pb_aso: f64,
    /// SpillBound ASO.
    pub sb_aso: f64,
}

/// Figs. 10 & 11: empirical MSO and ASO of PB (anorexic, λ=0.2) vs SB over
/// the query suite, by exhaustive (or stride-sampled at high D) enumeration
/// of the ESS.
pub fn fig10_11_empirical(scale: Scale) -> Vec<EmpiricalRow> {
    BenchQuery::all()
        .iter()
        .map(|&bq| {
            let w = Workload::tpcds(bq).expect("suite query builds");
            let rt = runtime(&w, scale);
            let pb = PlanBouquet::anorexic(&rt, LAMBDA).expect("anorexic reduction");
            let sb = SpillBound::new();
            let pb_ev = eval_at_scale(&rt, &pb, scale);
            let sb_ev = eval_at_scale(&rt, &sb, scale);
            EmpiricalRow {
                query: bq.name().to_string(),
                dims: rt.dims(),
                pb_mso: pb_ev.mso,
                sb_mso: sb_ev.mso,
                pb_aso: pb_ev.aso,
                sb_aso: sb_ev.aso,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 12 — sub-optimality distribution for 4D_Q91
// ---------------------------------------------------------------------

/// The Fig. 12 histogram: fraction of ESS locations per sub-optimality bin
/// (width 5) for PB and SB on 4D_Q91.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramResult {
    /// Bin lower edges.
    pub bins: Vec<f64>,
    /// PB fraction per bin.
    pub pb: Vec<f64>,
    /// SB fraction per bin.
    pub sb: Vec<f64>,
}

/// Fig. 12: sub-optimality distribution over the ESS for 4D_Q91.
pub fn fig12_distribution(scale: Scale) -> HistogramResult {
    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("suite query builds");
    let rt = runtime(&w, scale);
    let pb_ev =
        eval_at_scale(&rt, &PlanBouquet::anorexic(&rt, LAMBDA).expect("anorexic reduction"), scale);
    let sb_ev = eval_at_scale(&rt, &SpillBound::new(), scale);
    let pb_h = pb_ev.histogram(5.0, 10);
    let sb_h = sb_ev.histogram(5.0, 10);
    HistogramResult {
        bins: pb_h.iter().map(|&(b, _)| b).collect(),
        pb: pb_h.iter().map(|&(_, f)| f).collect(),
        sb: sb_h.iter().map(|&(_, f)| f).collect(),
    }
}

// ---------------------------------------------------------------------
// Fig. 13 / Table 4 — AlignedBound vs SpillBound
// ---------------------------------------------------------------------

/// One row of the AB-vs-SB comparison (Fig. 13 + Table 4 share the runs).
#[derive(Debug, Clone, Serialize)]
pub struct AlignedRow {
    /// Query name.
    pub query: String,
    /// ESS dimensionality.
    pub dims: usize,
    /// SpillBound empirical MSO.
    pub sb_mso: f64,
    /// AlignedBound empirical MSO.
    pub ab_mso: f64,
    /// The `2D+2` reference line of Fig. 13.
    pub linear_bound: f64,
    /// Max part-replacement penalty AB paid (Table 4).
    pub ab_max_penalty: f64,
}

/// Fig. 13 and Table 4: empirical MSO of SB vs AB with the `2D+2`
/// reference, plus the maximum replacement penalty AB incurred.
pub fn fig13_table4_aligned(scale: Scale) -> Vec<AlignedRow> {
    BenchQuery::all()
        .iter()
        .map(|&bq| {
            let w = Workload::tpcds(bq).expect("suite query builds");
            let rt = runtime(&w, scale);
            let sb_ev = eval_at_scale(&rt, &SpillBound::new(), scale);
            let ab = AlignedBound::new();
            let ab_ev = eval_at_scale(&rt, &ab, scale);
            AlignedRow {
                query: bq.name().to_string(),
                dims: rt.dims(),
                sb_mso: sb_ev.mso,
                ab_mso: ab_ev.mso,
                linear_bound: (2 * rt.dims() + 2) as f64,
                ab_max_penalty: ab.max_part_penalty_seen(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 2 — cost of enforcing contour alignment
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct AlignmentRow {
    /// Query name.
    pub query: String,
    /// % contours natively aligned.
    pub original_pct: f64,
    /// % aligned with replacement penalty ≤ 1.2.
    pub pct_1_2: f64,
    /// % aligned with replacement penalty ≤ 1.5.
    pub pct_1_5: f64,
    /// % aligned with replacement penalty ≤ 2.0.
    pub pct_2_0: f64,
    /// Minimum penalty making all contours aligned.
    pub max_penalty: f64,
}

/// Table 2: percentage of aligned contours at increasing replacement
/// penalty thresholds, for the paper's six featured queries.
pub fn table2_alignment(scale: Scale) -> Vec<AlignmentRow> {
    [
        BenchQuery::Q96_3D,
        BenchQuery::Q7_4D,
        BenchQuery::Q26_4D,
        BenchQuery::Q91_4D,
        BenchQuery::Q29_5D,
        BenchQuery::Q84_5D,
    ]
    .iter()
    .map(|&bq| {
        let w = Workload::tpcds(bq).expect("suite query builds");
        let rt = runtime(&w, scale);
        let stats = alignment_stats(&rt);
        AlignmentRow {
            query: bq.name().to_string(),
            original_pct: stats.pct_within(1.0),
            pct_1_2: stats.pct_within(1.2),
            pct_1_5: stats.pct_within(1.5),
            pct_2_0: stats.pct_within(2.0),
            max_penalty: stats.max_penalty(),
        }
    })
    .collect()
}

// ---------------------------------------------------------------------
// Table 3 / §6.3 — wall-clock drill-down on 4D_Q91
// ---------------------------------------------------------------------

/// The wall-clock experiment result (§6.3): simulated seconds for the
/// oracle, the native optimizer, SB and AB on one 4D_Q91 instance, plus
/// SB's full drill-down trace.
#[derive(Debug, Clone, Serialize)]
pub struct WallClockResult {
    /// Oracle (optimal-plan) seconds — calibrated to the paper's 44 s.
    pub oracle_secs: f64,
    /// Native optimizer seconds.
    pub native_secs: f64,
    /// SpillBound seconds.
    pub sb_secs: f64,
    /// AlignedBound seconds.
    pub ab_secs: f64,
    /// SB sub-optimality.
    pub sb_subopt: f64,
    /// AB sub-optimality.
    pub ab_subopt: f64,
    /// Native sub-optimality.
    pub native_subopt: f64,
    /// Number of SB plan executions (partial + final).
    pub sb_executions: usize,
    /// Number of AB plan executions.
    pub ab_executions: usize,
    /// Rendered SB drill-down (Table 3).
    pub sb_trace: String,
}

/// Table 3 + §6.3: simulated wall-clock comparison on 4D_Q91. Cost units
/// are mapped to seconds by anchoring the oracle execution at 44 s, the
/// paper's measured optimal time.
pub fn table3_wall_clock(scale: Scale) -> WallClockResult {
    let w = Workload::tpcds(BenchQuery::Q91_4D).expect("suite query builds");
    let rt = runtime(&w, scale);
    let grid = rt.grid();
    // a challenging instance in the upper-middle region of the ESS
    let coords: Vec<usize> = (0..grid.dims()).map(|d| grid.res(d) * 3 / 4).collect();
    let qa = grid.index(&coords);
    let oracle = rt.oracle_cost(qa);
    let secs_per_cost = 44.0 / oracle;

    let native = NativeOptimizer.discover(&rt, qa);
    let sb = SpillBound::with_refined_bounds().discover(&rt, qa);
    let ab = AlignedBound::new().discover(&rt, qa);

    WallClockResult {
        oracle_secs: 44.0,
        native_secs: native.total_cost * secs_per_cost,
        sb_secs: sb.total_cost * secs_per_cost,
        ab_secs: ab.total_cost * secs_per_cost,
        sb_subopt: sb.subopt(),
        ab_subopt: ab.subopt(),
        native_subopt: native.subopt(),
        sb_executions: sb.num_executions(),
        ab_executions: ab.num_executions(),
        sb_trace: sb.render(),
    }
}

// ---------------------------------------------------------------------
// §6.5 — JOB Q1a
// ---------------------------------------------------------------------

/// The JOB Q1a results (§6.5).
#[derive(Debug, Clone, Serialize)]
pub struct JobResult {
    /// Native MSO with estimation errors over the whole ESS.
    pub native_mso: f64,
    /// SpillBound empirical MSO.
    pub sb_mso: f64,
    /// AlignedBound empirical MSO.
    pub ab_mso: f64,
}

/// §6.5: JOB Q1a — the native optimizer's MSO collapses from thousands to
/// around `2D+2` under SB/AB.
pub fn job_q1a(scale: Scale) -> JobResult {
    let w = Workload::job_q1a().expect("JOB Q1a builds");
    let rt = runtime(&w, scale);
    JobResult {
        native_mso: native_mso_worst_estimate(&rt),
        sb_mso: eval_at_scale(&rt, &SpillBound::new(), scale).mso,
        ab_mso: eval_at_scale(&rt, &AlignedBound::new(), scale).mso,
    }
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// One row of the contour cost-ratio ablation (§4.2 remark).
#[derive(Debug, Clone, Serialize)]
pub struct RatioRow {
    /// Geometric contour ratio.
    pub ratio: f64,
    /// Number of contours induced.
    pub bands: usize,
    /// SB empirical MSO at this ratio.
    pub sb_mso: f64,
}

/// Ablation: SpillBound's empirical MSO as the contour cost ratio varies
/// (the paper notes doubling is not quite ideal — e.g. 1.8 gives 9.9
/// instead of 10 in 2D).
pub fn ablation_cost_ratio(scale: Scale) -> Vec<RatioRow> {
    let w = Workload::q91(2).expect("Q91 builds");
    let mut cfg = scale.ess_config(2);
    [1.5, 1.8, 2.0, 2.5, 3.0]
        .iter()
        .map(|&ratio| {
            cfg.contour_ratio = ratio;
            let rt = w.runtime(cfg).expect("ESS compiles");
            let ev = eval_at_scale(&rt, &SpillBound::new(), scale);
            RatioRow { ratio, bands: rt.num_bands(), sb_mso: ev.mso }
        })
        .collect()
}

/// One row of the anorexic-reduction ablation.
#[derive(Debug, Clone, Serialize)]
pub struct AnorexicRow {
    /// Swallowing threshold λ.
    pub lambda: f64,
    /// ρ (max contour density) after reduction.
    pub rho: usize,
    /// PB guarantee `4(1+λ)ρ`.
    pub pb_guarantee: f64,
    /// PB empirical MSO at this λ.
    pub pb_mso: f64,
}

/// Ablation: PlanBouquet's guarantee and empirical MSO as the anorexic
/// threshold λ varies (λ = 0 is the raw diagram).
pub fn ablation_anorexic(scale: Scale) -> Vec<AnorexicRow> {
    let w = Workload::tpcds(BenchQuery::Q96_3D).expect("suite query builds");
    let rt = runtime(&w, scale);
    [0.0, 0.1, 0.2, 0.5, 1.0]
        .iter()
        .map(|&lambda| {
            let pb = if lambda <= 0.0 {
                PlanBouquet::new()
            } else {
                PlanBouquet::anorexic(&rt, lambda).expect("anorexic reduction")
            };
            let rho = pb.rho(&rt);
            let ev = eval_at_scale(&rt, &pb, scale);
            AnorexicRow { lambda, rho, pb_guarantee: pb_guarantee(rho, lambda), pb_mso: ev.mso }
        })
        .collect()
}

/// One row of the random-workload robustness sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RandomWorkloadRow {
    /// Workload seed.
    pub seed: u64,
    /// Join-graph shape.
    pub shape: String,
    /// Whether the query aggregates.
    pub grouped: bool,
    /// ESS dimensionality.
    pub dims: usize,
    /// SB empirical MSO.
    pub sb_mso: f64,
    /// The band-adjusted structural bound `2(D²+3D)`.
    pub bound: f64,
}

/// Robustness sweep over seeded random workloads: the structural guarantee
/// must hold on arbitrary schemas and join geometries, not just the curated
/// TPC-DS suite.
pub fn random_workload_sweep(scale: Scale, count: usize) -> Vec<RandomWorkloadRow> {
    use rqp_workloads::{synth_workload, Shape, SynthConfig};
    (0..count as u64)
        .map(|seed| {
            let shape = [Shape::Chain, Shape::Star, Shape::Branch][(seed % 3) as usize];
            let grouped = seed % 2 == 1;
            let dims = 2 + (seed % 2) as usize;
            let w = synth_workload(SynthConfig {
                relations: 4 + (seed % 2) as usize,
                epps: dims,
                shape,
                grouped,
                seed,
            })
            .expect("generated workload builds");
            let rt = runtime(&w, scale);
            let ev = eval_at_scale(&rt, &SpillBound::new(), scale);
            RandomWorkloadRow {
                seed,
                shape: format!("{shape:?}"),
                grouped,
                dims,
                sb_mso: ev.mso,
                bound: 2.0 * sb_guarantee(dims),
            }
        })
        .collect()
}

/// One row of the heuristic-baseline comparison (§8).
#[derive(Debug, Clone, Serialize)]
pub struct BaselineRow {
    /// Query name.
    pub query: String,
    /// ESS dimensionality.
    pub dims: usize,
    /// Mid-query reoptimization (POP/Rio-class) empirical MSO.
    pub reopt_mso: f64,
    /// ReOpt ASO.
    pub reopt_aso: f64,
    /// SpillBound empirical MSO.
    pub sb_mso: f64,
    /// SpillBound ASO.
    pub sb_aso: f64,
    /// SB's structural guarantee (ReOpt has none).
    pub sb_guarantee: f64,
}

/// §8 comparison: the POP/Rio-style mid-query reoptimization heuristic vs
/// SpillBound. ReOpt is often decent on average but carries no MSO bound;
/// SB bounds the worst case structurally.
pub fn baselines_comparison(scale: Scale) -> Vec<BaselineRow> {
    [BenchQuery::Q15_3D, BenchQuery::Q96_3D, BenchQuery::Q91_4D, BenchQuery::Q19_5D]
        .iter()
        .map(|&bq| {
            let w = Workload::tpcds(bq).expect("suite query builds");
            let rt = runtime(&w, scale);
            let reopt_ev = eval_at_scale(&rt, &rqp_core::ReOptimizer::default(), scale);
            let sb_ev = eval_at_scale(&rt, &SpillBound::new(), scale);
            BaselineRow {
                query: bq.name().to_string(),
                dims: rt.dims(),
                reopt_mso: reopt_ev.mso,
                reopt_aso: reopt_ev.aso,
                sb_mso: sb_ev.mso,
                sb_aso: sb_ev.aso,
                sb_guarantee: sb_guarantee(rt.dims()),
            }
        })
        .collect()
}

/// One row of the cost-model-error ablation (§7).
#[derive(Debug, Clone, Serialize)]
pub struct CostErrorRow {
    /// Cost-model error factor δ.
    pub delta: f64,
    /// SB empirical MSO under the δ-perturbed engine.
    pub sb_mso: f64,
    /// The inflated guarantee `(1+δ)²(D²+3D)`.
    pub inflated_guarantee: f64,
}

/// Ablation (§7): SpillBound under a δ-perturbed execution engine — actual
/// costs deviate from the model by up to `(1+δ)` either way, budgets stay
/// model-based. The paper argues the guarantee inflates by at most
/// `(1+δ)²`; this experiment measures the empirical inflation
/// (δ = 0.3 is the realistic modelling error the paper cites).
pub fn ablation_cost_error(scale: Scale) -> Vec<CostErrorRow> {
    let w = Workload::q91(3).expect("Q91 builds");
    [0.0, 0.1, 0.3, 0.5, 1.0]
        .iter()
        .map(|&delta| {
            let mut rt = runtime(&w, scale);
            rt.set_cost_error(delta);
            let ev = eval_at_scale(&rt, &SpillBound::new(), scale);
            CostErrorRow {
                delta,
                sb_mso: ev.mso,
                inflated_guarantee: (1.0 + delta) * (1.0 + delta) * sb_guarantee(rt.dims()),
            }
        })
        .collect()
}

/// One row of the grid-resolution ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ResolutionRow {
    /// Grid points per dimension.
    pub resolution: usize,
    /// SB empirical MSO.
    pub sb_mso: f64,
    /// AB empirical MSO.
    pub ab_mso: f64,
}

/// Ablation: stability of the empirical MSO under grid resolution
/// (validates that the discretization substitution preserves the paper's
/// comparisons).
pub fn ablation_resolution(scale: Scale) -> Vec<ResolutionRow> {
    let w = Workload::q91(2).expect("Q91 builds");
    let resolutions: &[usize] = match scale {
        Scale::Quick => &[8, 16, 24],
        Scale::Full => &[12, 24, 48, 64],
    };
    resolutions
        .iter()
        .map(|&resolution| {
            let mut cfg = scale.ess_config(2);
            cfg.resolution = resolution;
            let rt = w.runtime(cfg).expect("ESS compiles");
            ResolutionRow {
                resolution,
                sb_mso: evaluate(&rt, &SpillBound::new()).mso,
                ab_mso: evaluate(&rt, &AlignedBound::new()).mso,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Chaos — fault-injection sweep over every discovery algorithm
// ---------------------------------------------------------------------

/// The chaos experiment: sweep every discovery algorithm on 2D_Q91 over
/// seeded fault schedules (one per fault class plus a mixed storm) and
/// render the per-class outcome table. Returns the invariant-violation
/// message instead of a table if the supervised runtime breaks one of the
/// harness invariants — a sweep that *renders* is a sweep that passed.
pub fn chaos_sweep_experiment(scale: Scale) -> String {
    use rqp_chaos::{probe_cells, standard_schedules, sweep, ChaosReport, FaultPlan};

    let w = Workload::q91(2).expect("Q91 builds");
    let plan = FaultPlan::idle();
    let mut rt = w.runtime(scale.ess_config(2)).expect("ESS compiles");
    rt.set_fault_injector(&plan);
    let cells = probe_cells(&rt);
    let rounds: u64 = match scale {
        Scale::Quick => 2,
        Scale::Full => 8,
    };
    let mut all = ChaosReport::default();
    for k in 0..rounds {
        let schedules = standard_schedules(0xC0FF_EE00 + k, 0.35);
        match sweep(&rt, &plan, &cells, &schedules) {
            Ok(mut r) => all.runs.append(&mut r.runs),
            Err(e) => return format!("CHAOS INVARIANT VIOLATED: {e}"),
        }
    }
    format!(
        "{}all invariants held (degraded charge factor {:.1}x per logical execution)\n",
        all.render(),
        rt.retry_policy().degraded_factor()
    )
}

// ---------------------------------------------------------------------

/// The serving experiment: push a mixed multi-session workload through
/// the concurrent `rqp-serve` scheduler and report session-level MSO/ASO
/// over the shared POSP registry, plus throughput and latency
/// percentiles. Sessions repeating a fingerprint must ride the registry
/// (exactly one compile per distinct fingerprint); any violation is
/// rendered as a SERVE VIOLATION line instead of a table.
pub fn serve_experiment(scale: Scale) -> String {
    use rqp_serve::{serve_workload, ServeConfig};
    use rqp_workloads::parse_session_file;

    let (spec, distinct) = match scale {
        Scale::Quick => ("2D_Q91 sb x4\n2D_Q91 ab x4\n3D_Q15 sb x4\nJOB_Q1a sb x4\n", 3),
        Scale::Full => (
            "2D_Q91 sb x8\n2D_Q91 ab x8\n2D_Q91 pb x8\n3D_Q15 sb x8\n3D_Q15 ab x8\n\
             4D_Q91 sb x8\nJOB_Q1a sb x8\nJOB_Q1a ab x8\n",
            4,
        ),
    };
    let entries = parse_session_file(spec).expect("experiment session file parses");
    let total: usize = entries.iter().map(|e| e.count).sum();
    let config = ServeConfig { workers: 8, queue_cap: total, ..ServeConfig::default() };
    let report = match serve_workload(config, &entries) {
        Ok(r) => r,
        Err(e) => return format!("SERVE VIOLATION: {e}\n"),
    };
    let mut violations = Vec::new();
    if report.completed() != total as u64 {
        violations.push(format!("{} of {total} sessions completed", report.completed()));
    }
    if report.registry.compiles != distinct {
        violations.push(format!(
            "{} compiles for {distinct} distinct fingerprints",
            report.registry.compiles
        ));
    }
    if report.non_finite_subopts() > 0 {
        violations.push(format!("{} non-finite subopt(s)", report.non_finite_subopts()));
    }
    if violations.is_empty() {
        format!("{}every session completed; one compile per fingerprint\n", report.render())
    } else {
        format!("{}SERVE VIOLATION: {}\n", report.render(), violations.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_experiment_shares_compiles_at_quick_scale() {
        let out = serve_experiment(Scale::Quick);
        assert!(out.contains("one compile per fingerprint"), "{out}");
        assert!(out.contains("MSO"), "{out}");
    }

    #[test]
    fn chaos_sweep_holds_its_invariants_at_quick_scale() {
        let out = chaos_sweep_experiment(Scale::Quick);
        assert!(out.contains("all invariants held"), "chaos sweep reported a violation:\n{out}");
        assert!(out.contains("storm"));
    }

    #[test]
    fn fig9_rows_cover_dimensionalities_two_to_six() {
        let rows = fig9_dimensionality(Scale::Quick);
        assert_eq!(rows.len(), 5);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.dims, i + 2);
            assert_eq!(r.sb_guarantee, sb_guarantee(r.dims));
            assert!(r.rho_red >= 1);
        }
        // SB guarantee grows quadratically; PB with ρ_red
        assert!(rows[4].sb_guarantee > rows[0].sb_guarantee);
    }

    #[test]
    fn fig7_trace_mentions_spills_and_completion() {
        let t = fig7_trace(Scale::Quick);
        assert!(t.contains("spill["), "trace should include spill executions:\n{t}");
        assert!(t.contains("done"), "trace should complete:\n{t}");
    }

    #[test]
    fn job_result_shows_the_collapse() {
        let r = job_q1a(Scale::Quick);
        assert!(
            r.native_mso > 10.0 * r.sb_mso,
            "native {} should dwarf SB {}",
            r.native_mso,
            r.sb_mso
        );
        assert!(r.sb_mso >= 1.0 && r.ab_mso >= 1.0);
    }

    #[test]
    fn cost_ratio_ablation_band_counts_decrease_with_ratio() {
        let rows = ablation_cost_ratio(Scale::Quick);
        for w in rows.windows(2) {
            assert!(w[0].bands >= w[1].bands);
            assert!(w[0].sb_mso >= 1.0);
        }
    }
}
