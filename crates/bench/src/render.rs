//! Plain-text rendering of experiment results, in the row/series format of
//! the paper's tables and figures.

use crate::experiments::*;

/// Render Fig. 8 / Fig. 9 guarantee rows.
pub fn render_guarantees(title: &str, rows: &[GuaranteeRow]) -> String {
    let mut s = format!("== {title} ==\n");
    s.push_str(&format!(
        "{:<8} {:>4} {:>8} {:>12} {:>12}\n",
        "query", "D", "rho_red", "PB MSOg", "SB MSOg"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>4} {:>8} {:>12.1} {:>12.1}\n",
            r.query, r.dims, r.rho_red, r.pb_guarantee, r.sb_guarantee
        ));
    }
    s
}

/// Render Fig. 10 / Fig. 11 empirical rows.
pub fn render_empirical(rows: &[EmpiricalRow]) -> String {
    let mut s = String::from("== Fig 10 (MSOe) & Fig 11 (ASO): PB vs SB ==\n");
    s.push_str(&format!(
        "{:<8} {:>4} {:>10} {:>10} {:>10} {:>10}\n",
        "query", "D", "PB MSOe", "SB MSOe", "PB ASO", "SB ASO"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>4} {:>10.1} {:>10.1} {:>10.2} {:>10.2}\n",
            r.query, r.dims, r.pb_mso, r.sb_mso, r.pb_aso, r.sb_aso
        ));
    }
    s
}

/// Render the Fig. 12 histogram.
pub fn render_histogram(h: &HistogramResult) -> String {
    let mut s = String::from("== Fig 12: sub-optimality distribution, 4D_Q91 ==\n");
    s.push_str(&format!("{:<12} {:>8} {:>8}\n", "bin", "PB %", "SB %"));
    for i in 0..h.bins.len() {
        let hi =
            if i + 1 == h.bins.len() { "+".to_string() } else { format!("-{}", h.bins[i] + 5.0) };
        s.push_str(&format!(
            "[{:>3}{:<5}] {:>9.1} {:>8.1}\n",
            h.bins[i],
            hi,
            100.0 * h.pb[i],
            100.0 * h.sb[i]
        ));
    }
    s
}

/// Render the Fig. 13 / Table 4 rows.
pub fn render_aligned(rows: &[AlignedRow]) -> String {
    let mut s =
        String::from("== Fig 13: SB vs AB MSOe (with 2D+2 line) & Table 4: AB max penalty ==\n");
    s.push_str(&format!(
        "{:<8} {:>4} {:>10} {:>10} {:>8} {:>12}\n",
        "query", "D", "SB MSOe", "AB MSOe", "2D+2", "max penalty"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>4} {:>10.1} {:>10.1} {:>8.0} {:>12.2}\n",
            r.query, r.dims, r.sb_mso, r.ab_mso, r.linear_bound, r.ab_max_penalty
        ));
    }
    s
}

/// Render Table 2.
pub fn render_alignment(rows: &[AlignmentRow]) -> String {
    let mut s = String::from("== Table 2: cost of enforcing contour alignment (% contours) ==\n");
    s.push_str(&format!(
        "{:<8} {:>9} {:>8} {:>8} {:>8} {:>8}\n",
        "query", "original", "λ=1.2", "λ=1.5", "λ=2.0", "max λ"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>9.0} {:>8.0} {:>8.0} {:>8.0} {:>8.2}\n",
            r.query, r.original_pct, r.pct_1_2, r.pct_1_5, r.pct_2_0, r.max_penalty
        ));
    }
    s
}

/// Render the wall-clock result.
pub fn render_wall_clock(r: &WallClockResult) -> String {
    format!(
        "== Table 3 / §6.3: wall-clock on 4D_Q91 (oracle anchored at 44 s) ==\n\
         optimal  {:>8.1} s (subopt 1.0)\n\
         native   {:>8.1} s (subopt {:.1})\n\
         SB       {:>8.1} s (subopt {:.1}, {} executions)\n\
         AB       {:>8.1} s (subopt {:.1}, {} executions)\n\n\
         SB drill-down:\n{}",
        r.oracle_secs,
        r.native_secs,
        r.native_subopt,
        r.sb_secs,
        r.sb_subopt,
        r.sb_executions,
        r.ab_secs,
        r.ab_subopt,
        r.ab_executions,
        r.sb_trace
    )
}

/// Render the JOB result.
pub fn render_job(r: &JobResult) -> String {
    format!(
        "== §6.5: JOB Q1a ==\nnative MSO {:>10.0}\nSB MSOe    {:>10.1}\nAB MSOe    {:>10.1}\n",
        r.native_mso, r.sb_mso, r.ab_mso
    )
}

/// Render the cost-ratio ablation.
pub fn render_ratio(rows: &[RatioRow]) -> String {
    let mut s = String::from("== Ablation: contour cost ratio (2D_Q91) ==\n");
    s.push_str(&format!("{:>6} {:>7} {:>9}\n", "ratio", "bands", "SB MSOe"));
    for r in rows {
        s.push_str(&format!("{:>6.1} {:>7} {:>9.1}\n", r.ratio, r.bands, r.sb_mso));
    }
    s
}

/// Render the anorexic ablation.
pub fn render_anorexic(rows: &[AnorexicRow]) -> String {
    let mut s = String::from("== Ablation: anorexic reduction λ (3D_Q96) ==\n");
    s.push_str(&format!("{:>6} {:>5} {:>9} {:>9}\n", "λ", "ρ", "PB MSOg", "PB MSOe"));
    for r in rows {
        s.push_str(&format!(
            "{:>6.1} {:>5} {:>9.1} {:>9.1}\n",
            r.lambda, r.rho, r.pb_guarantee, r.pb_mso
        ));
    }
    s
}

/// Render the random-workload sweep.
pub fn render_random(rows: &[RandomWorkloadRow]) -> String {
    let mut s = String::from("== Robustness sweep: random workloads (SB bound must hold) ==\n");
    s.push_str(&format!(
        "{:>5} {:>7} {:>8} {:>3} {:>9} {:>7}\n",
        "seed", "shape", "grouped", "D", "SB MSOe", "bound"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>7} {:>8} {:>3} {:>9.1} {:>7.0}\n",
            r.seed, r.shape, r.grouped, r.dims, r.sb_mso, r.bound
        ));
    }
    s
}

/// Render the baseline comparison.
pub fn render_baselines(rows: &[BaselineRow]) -> String {
    let mut s = String::from(
        "== §8 comparison: mid-query reoptimization (POP/Rio-class) vs SpillBound ==\n",
    );
    s.push_str(&format!(
        "{:<8} {:>4} {:>11} {:>10} {:>9} {:>8} {:>10}\n",
        "query", "D", "ReOpt MSOe", "ReOpt ASO", "SB MSOe", "SB ASO", "SB bound"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:>4} {:>11.1} {:>10.2} {:>9.1} {:>8.2} {:>10.0}\n",
            r.query, r.dims, r.reopt_mso, r.reopt_aso, r.sb_mso, r.sb_aso, r.sb_guarantee
        ));
    }
    s.push_str("(ReOpt carries no worst-case bound; SB's bound is D²+3D by inspection)\n");
    s
}

/// Render the cost-error ablation.
pub fn render_cost_error(rows: &[CostErrorRow]) -> String {
    let mut s = String::from("== Ablation: cost-model error δ (3D_Q91, §7) ==\n");
    s.push_str(&format!("{:>6} {:>9} {:>18}\n", "δ", "SB MSOe", "(1+δ)²(D²+3D)"));
    for r in rows {
        s.push_str(&format!("{:>6.1} {:>9.1} {:>18.1}\n", r.delta, r.sb_mso, r.inflated_guarantee));
    }
    s
}

/// Render the resolution ablation.
pub fn render_resolution(rows: &[ResolutionRow]) -> String {
    let mut s = String::from("== Ablation: grid resolution (2D_Q91) ==\n");
    s.push_str(&format!("{:>6} {:>9} {:>9}\n", "res", "SB MSOe", "AB MSOe"));
    for r in rows {
        s.push_str(&format!("{:>6} {:>9.1} {:>9.1}\n", r.resolution, r.sb_mso, r.ab_mso));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_rendering_includes_rows() {
        let rows = vec![GuaranteeRow {
            query: "4D_Q91".into(),
            dims: 4,
            rho_red: 11,
            pb_guarantee: 52.8,
            sb_guarantee: 28.0,
        }];
        let s = render_guarantees("Fig 8", &rows);
        assert!(s.contains("4D_Q91"));
        assert!(s.contains("52.8"));
        assert!(s.contains("28.0"));
    }

    #[test]
    fn histogram_rendering_has_open_last_bin() {
        let h = HistogramResult { bins: vec![0.0, 5.0], pb: vec![0.5, 0.5], sb: vec![1.0, 0.0] };
        let s = render_histogram(&h);
        assert!(s.contains("5+"));
        assert!(s.contains("100.0"));
    }
}
