//! Instrumentation handles for the execution engine: budgeted-execution
//! accounting and spill observations (the run-time monitoring of §6.1).

use rqp_obs::{global, labeled, names, Counter};
use std::sync::{Arc, OnceLock};

pub(crate) struct ExecMetrics {
    /// `rqp_exec_budgeted_total`
    pub budgeted: Arc<Counter>,
    /// `rqp_exec_budgeted_completed_total`
    pub completed: Arc<Counter>,
    /// `rqp_exec_budget_expired_total`
    pub expired: Arc<Counter>,
    /// `rqp_exec_spill_total`
    pub spill: Arc<Counter>,
    /// `rqp_exec_spill_exact_total`
    pub spill_exact: Arc<Counter>,
    /// `rqp_exec_spill_bound_total`
    pub spill_bound: Arc<Counter>,
    /// `rqp_exec_failed_total`
    pub exec_failed: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        ExecMetrics {
            budgeted: g.counter(names::EXEC_BUDGETED),
            completed: g.counter(names::EXEC_BUDGETED_COMPLETED),
            expired: g.counter(names::EXEC_BUDGET_EXPIRED),
            spill: g.counter(names::EXEC_SPILL),
            spill_exact: g.counter(names::EXEC_SPILL_EXACT),
            spill_bound: g.counter(names::EXEC_SPILL_BOUND),
            exec_failed: g.counter(names::EXEC_FAILED),
        }
    })
}

/// Bump the per-class injected-fault series,
/// `rqp_chaos_faults_injected_total{class="<class>"}`. Looked up per call —
/// faults are rare by construction.
pub(crate) fn fault_injected(class: &str) {
    global().counter(&labeled(names::FAULTS_INJECTED, &[("class", class)])).inc();
}

/// Bump the per-epp spill-observation series,
/// `rqp_exec_spill_observations_total{epp="<id>"}`. The labelled handle is
/// looked up per call — spills are rare next to optimizer invocations, and
/// the lookup is one `RwLock` read on the registry.
pub(crate) fn spill_observation(epp: usize) {
    global().counter(&labeled(names::EXEC_SPILL_OBSERVATIONS, &[("epp", &epp.to_string())])).inc();
}

/// Pre-register the engine's metric series (at zero) in the global
/// registry, so snapshots taken before any execution still list them.
pub fn register_metrics() {
    let _ = metrics();
    for class in ["fail", "spurious_exhaust", "perturb_cost", "corrupt_observation"] {
        let _ = global().counter(&labeled(names::FAULTS_INJECTED, &[("class", class)]));
    }
}
