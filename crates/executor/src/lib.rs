#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Simulated budgeted and spill-mode plan execution with run-time
//! selectivity monitoring.
//!
//! The paper's prototype modifies PostgreSQL to support (1) time-limited
//! execution of a chosen plan, (2) *spilling* — executing only the subtree
//! rooted at a chosen epp node, discarding its output — and (3) monitoring
//! of operator selectivities during execution (§6.1). This crate provides
//! the cost-model-driven simulation of those three facilities:
//!
//! * a budgeted execution *completes* iff the plan's true cost at the actual
//!   location `qa` is within the budget (costs are the paper's currency: its
//!   MSO evaluation is entirely in optimizer cost units);
//! * a spill-mode execution of epp `e_j` either completes within budget —
//!   the exact selectivity `qa.j` is learnt — or exhausts the budget having
//!   observed the largest selectivity consistent with the work done: the
//!   maximal `x` with `Cost(subtree, x) ≤ budget`, which is strictly below
//!   `qa.j`. This realizes the guarantee of Lemma 3.1: the execution of plan
//!   `P` with budget `Cost(P, q)` either learns the exact selectivity of
//!   `e_j` or learns `qa.j > q.j`.

pub mod data;
pub mod fault;
pub mod obs;
pub mod rowexec;

pub use data::{DataSet, Table};
pub use fault::{FaultInjector, InjectedFault, Seam};
pub use obs::register_metrics;
pub use rowexec::{QuotaExhausted, RowExecutor, Rows, Schema, SpillObservation};

use rqp_catalog::{Catalog, EppId, Query, SelVector};
use rqp_qplan::cost::{cost_cmp, CostModel, PlanCtx};
use rqp_qplan::ops::PlanNode;
use rqp_qplan::pipeline::spill_subtree;

/// Result of a full (non-spill) budgeted execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecOutcome {
    /// The plan finished; `cost` is the work actually expended (≤ budget).
    Completed {
        /// Actual cost expended.
        cost: f64,
    },
    /// The budget expired before completion; the full budget was expended
    /// and all partial results are discarded.
    BudgetExhausted {
        /// The expended budget.
        spent: f64,
    },
    /// The execution died from an injected (or substrate) fault before
    /// either finishing or exhausting its budget. The work sunk before the
    /// failure is still charged — wasted work is never hidden from the MSO
    /// accounting — but nothing was learnt and no result exists.
    Failed {
        /// Work sunk before the failure.
        spent: f64,
    },
}

impl ExecOutcome {
    /// Cost charged to the discovery process for this execution.
    pub fn spent(&self) -> f64 {
        match *self {
            ExecOutcome::Completed { cost } => cost,
            ExecOutcome::BudgetExhausted { spent } | ExecOutcome::Failed { spent } => spent,
        }
    }

    /// Whether the execution completed.
    pub fn completed(&self) -> bool {
        matches!(self, ExecOutcome::Completed { .. })
    }

    /// Whether the execution died from a fault (neither completion nor a
    /// legitimate budget expiry).
    pub fn failed(&self) -> bool {
        matches!(self, ExecOutcome::Failed { .. })
    }
}

/// What a spill-mode execution learnt about the spilled epp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Learned {
    /// The subtree completed: the exact selectivity.
    Exact(f64),
    /// Budget expired: the selectivity is strictly greater than this bound.
    LowerBound(f64),
}

impl Learned {
    /// The selectivity value carried (exact or bound).
    pub fn value(&self) -> f64 {
        match *self {
            Learned::Exact(v) | Learned::LowerBound(v) => v,
        }
    }

    /// Whether the selectivity was learnt exactly.
    pub fn is_exact(&self) -> bool {
        matches!(self, Learned::Exact(_))
    }
}

/// Result of a spill-mode execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillOutcome {
    /// Selectivity knowledge gained for the spilled epp.
    pub learned: Learned,
    /// Cost charged to the discovery process.
    pub spent: f64,
    /// The execution died from an injected fault; `learned` carries no
    /// usable knowledge (it may even be NaN for a corrupted observation)
    /// and must not enter the discovery state. `spent` is still real,
    /// charged work.
    pub failed: bool,
}

/// The simulated execution engine, bound to one query.
#[derive(Clone, Copy)]
pub struct Engine<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    model: CostModel,
    /// Cost-model error factor δ (§7): the *actual* execution cost of a
    /// plan deviates from the model by a deterministic per-plan factor in
    /// `[1/(1+δ), 1+δ]`, while budgets are still set from the unperturbed
    /// model. δ = 0 is the perfect-cost-model assumption.
    delta: f64,
    /// Optional fault source consulted once per execution (chaos testing).
    injector: Option<&'a dyn fault::FaultInjector>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("query", &self.query.name)
            .field("delta", &self.delta)
            .field("injector", &self.injector.map(|_| "dyn FaultInjector"))
            .finish()
    }
}

impl<'a> Engine<'a> {
    /// Create an engine with a perfect cost model (δ = 0).
    pub fn new(catalog: &'a Catalog, query: &'a Query, model: CostModel) -> Self {
        Engine { catalog, query, model, delta: 0.0, injector: None }
    }

    /// Create an engine whose actual execution costs deviate from the
    /// model by up to a `(1+delta)` factor either way (§7's bounded
    /// cost-modelling error; the MSO guarantees then inflate by at most
    /// `(1+delta)²`).
    pub fn with_cost_error(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        delta: f64,
    ) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        Engine { catalog, query, model, delta, injector: None }
    }

    /// This engine with a fault injector attached: every subsequent
    /// execution consults `injector` once and applies whatever fault it
    /// returns.
    pub fn with_injector(self, injector: &'a dyn fault::FaultInjector) -> Self {
        Engine { injector: Some(injector), ..self }
    }

    /// This engine with any fault injector detached — the clean engine the
    /// supervision layer uses for last-resort executions that must not be
    /// struck again.
    pub fn without_injector(self) -> Self {
        Engine { injector: None, ..self }
    }

    /// Whether a fault injector is attached.
    pub fn has_injector(&self) -> bool {
        self.injector.is_some()
    }

    /// The attached fault injector, if any (so a caller rebuilding the
    /// engine — e.g. to change δ — can carry the injector over).
    pub fn injector(&self) -> Option<&'a dyn fault::FaultInjector> {
        self.injector
    }

    /// Ask the injector (if any) about the execution entering `seam`,
    /// accounting whatever it returns.
    fn draw_fault(&self, seam: fault::Seam) -> Option<fault::InjectedFault> {
        let f = self.injector?.inject(seam)?;
        obs::fault_injected(f.class());
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_FAULT_INJECTED)
                    .with("query", self.query.name.as_str())
                    .with("seam", seam.name())
                    .with("class", f.class()),
            );
        }
        Some(f)
    }

    /// The deterministic per-plan perturbation factor in
    /// `[1/(1+δ), 1+δ]`, derived from the plan's structural fingerprint so
    /// that re-executions of the same plan misbehave consistently.
    fn perturbation(&self, plan: &PlanNode) -> f64 {
        if self.delta <= 0.0 {
            return 1.0;
        }
        let fp = rqp_qplan::Fingerprint::of(plan).0;
        // map the fingerprint to [-1, 1], then to [1/(1+δ), (1+δ)]
        let t = (fp % 10_007) as f64 / 10_006.0 * 2.0 - 1.0;
        (1.0 + self.delta).powf(t)
    }

    /// Account one spill-mode execution (shared by the refined and coarse
    /// variants).
    fn record_spill(&self, epp: EppId, out: &SpillOutcome, budget: f64) {
        let m = obs::metrics();
        m.spill.inc();
        if out.failed {
            // no usable observation; already counted in `exec_failed`
        } else if out.learned.is_exact() {
            m.spill_exact.inc();
        } else {
            m.spill_bound.inc();
        }
        obs::spill_observation(epp.0);
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_SPILL_EXECUTION)
                    .with("query", self.query.name.as_str())
                    .with("epp", epp.0 as u64)
                    .with("budget", budget)
                    .with("exact", out.learned.is_exact())
                    .with("learned", out.learned.value())
                    .with("spent", out.spent)
                    .with("failed", out.failed),
            );
        }
    }

    /// True cost of running `plan` to completion at the actual location
    /// (including any cost-model error).
    pub fn true_cost(&self, plan: &PlanNode, qa: &SelVector) -> f64 {
        let ctx = PlanCtx::new(self.catalog, self.query, qa);
        self.model.cost(plan, &ctx) * self.perturbation(plan)
    }

    /// Execute `plan` with a cost budget at actual location `qa`.
    pub fn execute_budgeted(&self, plan: &PlanNode, qa: &SelVector, budget: f64) -> ExecOutcome {
        let m = obs::metrics();
        m.budgeted.inc();
        let cost = self.true_cost(plan, qa);
        // the work an uninterrupted run would sink: the true cost, capped
        // by the budget (infinite budgets cap nothing)
        let clean_spend = cost.min(budget);
        let outcome = match self.draw_fault(fault::Seam::Budgeted) {
            Some(fault::InjectedFault::Fail { spent_frac }) => {
                m.exec_failed.inc();
                ExecOutcome::Failed { spent: spent_frac * clean_spend }
            }
            Some(fault::InjectedFault::CorruptObservation) => {
                // the run finished but its completion status is garbage:
                // all the work is sunk and nothing can be trusted
                m.exec_failed.inc();
                ExecOutcome::Failed { spent: clean_spend }
            }
            Some(fault::InjectedFault::SpuriousExhaust) => {
                m.expired.inc();
                ExecOutcome::BudgetExhausted {
                    spent: if budget.is_finite() { budget } else { cost },
                }
            }
            Some(fault::InjectedFault::PerturbCost { factor }) => {
                let observed = cost * factor;
                if cost_cmp(observed, budget) != std::cmp::Ordering::Greater {
                    m.completed.inc();
                    ExecOutcome::Completed { cost: observed }
                } else {
                    m.expired.inc();
                    ExecOutcome::BudgetExhausted { spent: budget }
                }
            }
            None => {
                if cost_cmp(cost, budget) != std::cmp::Ordering::Greater {
                    m.completed.inc();
                    ExecOutcome::Completed { cost }
                } else {
                    m.expired.inc();
                    ExecOutcome::BudgetExhausted { spent: budget }
                }
            }
        };
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_BUDGETED_EXECUTION)
                    .with("query", self.query.name.as_str())
                    .with("budget", budget)
                    .with("true_cost", cost)
                    .with("completed", outcome.completed())
                    .with("failed", outcome.failed())
                    .with("spent", outcome.spent()),
            );
        }
        outcome
    }

    /// Execute `plan` in spill-mode on `epp` with a cost budget.
    ///
    /// `reference` supplies the selectivities of every dimension other than
    /// `epp` for costing the spilled subtree; the caller must have exact
    /// values there for all epps *upstream* of the spill node (guaranteed by
    /// the spill-node identification rules), and `qa` supplies the truth.
    ///
    /// Spilling on an epp the plan does not evaluate is a programmer error:
    /// debug builds assert, release builds conservatively charge the whole
    /// plan as the spilled subtree.
    pub fn execute_spill(
        &self,
        plan: &PlanNode,
        epp: EppId,
        reference: &SelVector,
        qa: &SelVector,
        budget: f64,
    ) -> SpillOutcome {
        let out = match self.draw_fault(fault::Seam::Spill) {
            Some(f) => {
                let clean = self.spill_refined(plan, epp, reference, qa, budget, 1.0);
                self.corrupt_spill(f, clean, budget, |factor| {
                    self.spill_refined(plan, epp, reference, qa, budget, factor)
                })
            }
            None => self.spill_refined(plan, epp, reference, qa, budget, 1.0),
        };
        self.record_spill(epp, &out, budget);
        out
    }

    /// Apply an injected fault to a spill-mode execution. Fault semantics
    /// are chosen so that no *unsound* knowledge can ever be produced: a
    /// failed or spuriously-cut execution reports the trivially-true
    /// minimum lower bound (nothing learnt) rather than a fabricated
    /// value, and a corrupted observation is flagged `failed` so callers
    /// discard it before it reaches the discovery state.
    fn corrupt_spill(
        &self,
        f: fault::InjectedFault,
        clean: SpillOutcome,
        budget: f64,
        rerun: impl Fn(f64) -> SpillOutcome,
    ) -> SpillOutcome {
        let nothing = Learned::LowerBound(rqp_catalog::Selectivity::MIN.value());
        let full_charge = if budget.is_finite() { budget } else { clean.spent };
        match f {
            fault::InjectedFault::Fail { spent_frac } => {
                self.spill_failed_metric();
                SpillOutcome { learned: nothing, spent: spent_frac * clean.spent, failed: true }
            }
            fault::InjectedFault::SpuriousExhaust => {
                // reported as a budget expiry with the partial observation
                // discarded: the full budget is charged, nothing is learnt
                SpillOutcome { learned: nothing, spent: full_charge, failed: false }
            }
            fault::InjectedFault::PerturbCost { factor } => rerun(factor),
            fault::InjectedFault::CorruptObservation => {
                self.spill_failed_metric();
                SpillOutcome {
                    learned: Learned::LowerBound(f64::NAN),
                    spent: full_charge,
                    failed: true,
                }
            }
        }
    }

    fn spill_failed_metric(&self) {
        obs::metrics().exec_failed.inc();
    }

    fn spill_refined(
        &self,
        plan: &PlanNode,
        epp: EppId,
        reference: &SelVector,
        qa: &SelVector,
        budget: f64,
        fault_factor: f64,
    ) -> SpillOutcome {
        let subtree = spill_subtree(plan, self.query, epp).unwrap_or_else(|| {
            debug_assert!(false, "plan does not evaluate epp {epp}");
            plan.clone()
        });
        let truth = qa.get(epp.0).value();
        let perturb = self.perturbation(&subtree) * fault_factor;

        // cost of the spilled subtree as a function of the epp selectivity
        let sub_cost = |x: f64| -> f64 {
            let mut loc = reference.clone();
            loc.set(epp.0, rqp_catalog::Selectivity::new(x));
            let ctx = PlanCtx::new(self.catalog, self.query, &loc);
            self.model.cost(&subtree, &ctx) * perturb
        };

        let at_truth = sub_cost(truth);
        if at_truth <= budget {
            return SpillOutcome { learned: Learned::Exact(truth), spent: at_truth, failed: false };
        }

        // Budget expired: the monitor observed progress equivalent to the
        // largest selectivity whose subtree cost fits the budget. sub_cost
        // is non-decreasing in x (PCM), so bisect.
        let lo0 = rqp_catalog::Selectivity::MIN.value();
        let mut lo = lo0;
        let mut hi = truth;
        if sub_cost(lo0) > budget {
            // not even the minimum fits: nothing new was learnt
            return SpillOutcome {
                learned: Learned::LowerBound(lo0),
                spent: budget,
                failed: false,
            };
        }
        for _ in 0..64 {
            let mid = (lo * hi).sqrt(); // log-scale bisection
            if sub_cost(mid) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        debug_assert!(lo < truth);
        SpillOutcome { learned: Learned::LowerBound(lo), spent: budget, failed: false }
    }

    /// Like [`Engine::execute_spill`] but without refining the lower bound
    /// on budget expiry: the bound reported is the reference location's own
    /// coordinate — exactly the guaranteed learning of Lemma 3.1(b)
    /// (`qa.j > q.j`) — which is all the discovery algorithms need. This
    /// skips the bisection and keeps exhaustive MSO evaluation cheap.
    pub fn execute_spill_coarse(
        &self,
        plan: &PlanNode,
        epp: EppId,
        reference: &SelVector,
        qa: &SelVector,
        budget: f64,
    ) -> SpillOutcome {
        let out = match self.draw_fault(fault::Seam::SpillCoarse) {
            Some(f) => {
                let clean = self.spill_coarse(plan, epp, reference, qa, budget, 1.0);
                self.corrupt_spill(f, clean, budget, |factor| {
                    self.spill_coarse(plan, epp, reference, qa, budget, factor)
                })
            }
            None => self.spill_coarse(plan, epp, reference, qa, budget, 1.0),
        };
        self.record_spill(epp, &out, budget);
        out
    }

    fn spill_coarse(
        &self,
        plan: &PlanNode,
        epp: EppId,
        reference: &SelVector,
        qa: &SelVector,
        budget: f64,
        fault_factor: f64,
    ) -> SpillOutcome {
        let subtree = spill_subtree(plan, self.query, epp).unwrap_or_else(|| {
            debug_assert!(false, "plan does not evaluate epp {epp}");
            plan.clone()
        });
        let truth = qa.get(epp.0).value();
        let perturb = self.perturbation(&subtree) * fault_factor;
        let mut loc = reference.clone();
        loc.set(epp.0, rqp_catalog::Selectivity::new(truth));
        let ctx = PlanCtx::new(self.catalog, self.query, &loc);
        let at_truth = self.model.cost(&subtree, &ctx) * perturb;
        if at_truth <= budget {
            return SpillOutcome { learned: Learned::Exact(truth), spent: at_truth, failed: false };
        }
        // guaranteed learning: qa's coordinate strictly exceeds the
        // reference coordinate, provided the reference itself fits the
        // budget (always true when the budget is the full plan's cost at
        // the reference location)
        let mut ref_loc = reference.clone();
        ref_loc.set(epp.0, reference.get(epp.0));
        let ref_ctx = PlanCtx::new(self.catalog, self.query, &ref_loc);
        let bound = if self.model.cost(&subtree, &ref_ctx) * perturb <= budget {
            reference.get(epp.0).value()
        } else {
            rqp_catalog::Selectivity::MIN.value()
        };
        SpillOutcome { learned: Learned::LowerBound(bound), spent: budget, failed: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn budgeted_execution_completes_iff_cost_fits() {
        let (catalog, query) = fixture();
        let engine = Engine::new(&catalog, &query, CostModel::default());
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let qa = SelVector::from_values(&[1e-4, 1e-4]);
        let planned = opt.optimize(&qa);
        let cost = planned.cost;

        let ok = engine.execute_budgeted(&planned.plan, &qa, cost * 1.01);
        assert!(ok.completed());
        assert!((ok.spent() - cost).abs() < 1e-9 * cost);

        let fail = engine.execute_budgeted(&planned.plan, &qa, cost * 0.99);
        assert!(!fail.completed());
        assert!((fail.spent() - cost * 0.99).abs() < 1e-9 * cost);
    }

    #[test]
    fn spill_completes_and_learns_exact_when_budget_suffices() {
        let (catalog, query) = fixture();
        let engine = Engine::new(&catalog, &query, CostModel::default());
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let qa = SelVector::from_values(&[3e-5, 2e-3]);
        // budget from a hypothetical location dominating qa in dim 0
        let q = SelVector::from_values(&[1e-4, 2e-3]);
        let planned = opt.optimize(&q);
        let target = rqp_qplan::pipeline::spill_target(
            &planned.plan,
            &query,
            &[rqp_catalog::EppId(0), rqp_catalog::EppId(1)].into(),
        )
        .unwrap();
        let out = engine.execute_spill(&planned.plan, target, &q, &qa, planned.cost);
        // qa's coordinate on the spilled dim is below q's, so the spill
        // completes and learns it exactly (Lemma 3.1 case (a))
        if qa.get(target.0).value() <= q.get(target.0).value() {
            assert!(out.learned.is_exact());
            assert_eq!(out.learned.value(), qa.get(target.0).value());
            assert!(out.spent <= planned.cost);
        }
    }

    #[test]
    fn spill_lower_bound_never_overshoots_truth() {
        let (catalog, query) = fixture();
        let engine = Engine::new(&catalog, &query, CostModel::default());
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        // budget location has dim0 below the truth → cannot complete
        let q = SelVector::from_values(&[1e-6, 1e-3]);
        let qa = SelVector::from_values(&[1e-2, 1e-3]);
        let planned = opt.optimize(&q);
        let unlearnt: std::collections::BTreeSet<_> =
            [rqp_catalog::EppId(0), rqp_catalog::EppId(1)].into();
        let target = rqp_qplan::pipeline::spill_target(&planned.plan, &query, &unlearnt).unwrap();
        let out = engine.execute_spill(&planned.plan, target, &q, &qa, planned.cost);
        match out.learned {
            Learned::Exact(v) => assert_eq!(v, qa.get(target.0).value()),
            Learned::LowerBound(lb) => {
                assert!(lb < qa.get(target.0).value(), "bound {lb} overshot truth");
                assert!(
                    lb >= q.get(target.0).value() * 0.5,
                    "guaranteed learning should reach roughly the budget location; got {lb}"
                );
                assert_eq!(out.spent, planned.cost);
            }
        }
    }

    #[test]
    fn spill_with_tiny_budget_learns_nothing_but_charges_budget() {
        let (catalog, query) = fixture();
        let engine = Engine::new(&catalog, &query, CostModel::default());
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let q = SelVector::from_values(&[1e-6, 1e-6]);
        let qa = SelVector::from_values(&[0.5, 0.5]);
        let planned = opt.optimize(&q);
        let unlearnt: std::collections::BTreeSet<_> =
            [rqp_catalog::EppId(0), rqp_catalog::EppId(1)].into();
        let target = rqp_qplan::pipeline::spill_target(&planned.plan, &query, &unlearnt).unwrap();
        let out = engine.execute_spill(&planned.plan, target, &q, &qa, 1e-9);
        assert!(!out.learned.is_exact());
        assert_eq!(out.spent, 1e-9);
    }
}

#[cfg(test)]
mod coarse_vs_refined_tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 3_000_000)
                    .indexed_column("k", 3_000_000, 8)
                    .column("v", 1_000, 4)
                    .build(),
            )
            .relation(
                RelationBuilder::new("b", 40_000_000).indexed_column("k", 3_000_000, 8).build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .epp_join("a", "k", "b", "k")
            .filter("a", "v", 0.2)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn coarse_and_refined_spills_agree_on_completion() {
        let (catalog, query) = fixture();
        let engine = Engine::new(&catalog, &query, CostModel::default());
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let unlearnt: std::collections::BTreeSet<_> = [EppId(0)].into();
        for (ref_sel, truth_sel) in [(1e-4, 1e-5), (1e-4, 1e-2), (0.3, 0.3)] {
            let reference = SelVector::from_values(&[ref_sel]);
            let qa = SelVector::from_values(&[truth_sel]);
            let planned = opt.optimize(&reference);
            let target =
                rqp_qplan::pipeline::spill_target(&planned.plan, &query, &unlearnt).unwrap();
            let refined =
                engine.execute_spill(&planned.plan, target, &reference, &qa, planned.cost);
            let coarse =
                engine.execute_spill_coarse(&planned.plan, target, &reference, &qa, planned.cost);
            assert_eq!(
                refined.learned.is_exact(),
                coarse.learned.is_exact(),
                "completion must not depend on bound refinement"
            );
            assert_eq!(refined.spent, coarse.spent);
            if !refined.learned.is_exact() {
                // the refined bound dominates the guaranteed (coarse) one
                assert!(
                    refined.learned.value() >= coarse.learned.value() * (1.0 - 1e-9),
                    "refined {} < coarse {}",
                    refined.learned.value(),
                    coarse.learned.value()
                );
            }
        }
    }

    #[test]
    fn perturbed_engine_is_deterministic_per_plan() {
        let (catalog, query) = fixture();
        let engine = Engine::with_cost_error(&catalog, &query, CostModel::default(), 0.3);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let qa = SelVector::from_values(&[1e-3]);
        let planned = opt.optimize(&qa);
        let c1 = engine.true_cost(&planned.plan, &qa);
        let c2 = engine.true_cost(&planned.plan, &qa);
        assert_eq!(c1, c2, "same plan must misbehave identically");
        // the perturbation stays within the declared envelope
        let unperturbed =
            Engine::new(&catalog, &query, CostModel::default()).true_cost(&planned.plan, &qa);
        assert!(c1 <= unperturbed * 1.3 * (1.0 + 1e-12));
        assert!(c1 >= unperturbed / 1.3 * (1.0 - 1e-12));
    }
}
