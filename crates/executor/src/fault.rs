//! Deterministic fault injection at the engine's execution seams.
//!
//! The discovery algorithms assume a well-behaved substrate: a budgeted
//! execution either completes or cleanly exhausts its budget, and a
//! spill-mode execution always reports a sound observation. Real engines
//! break those assumptions — executors die mid-pipeline, admission
//! controllers kill queries spuriously, monitors mis-measure. This module
//! defines the *seam* through which a fault source (see the `rqp-chaos`
//! crate) can perturb each execution, so the supervision machinery in
//! `rqp-core` can be tested against a precise, replayable fault model.
//!
//! The engine itself stays passive: it asks an optional [`FaultInjector`]
//! whether the current execution is struck, and applies the returned
//! [`InjectedFault`] to the clean outcome. Injection never changes the
//! *truth* (the actual location `qa` or the plan's true cost) — only what
//! the caller observes and what work gets charged.

/// Which engine entry point an execution is passing through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Seam {
    /// [`crate::Engine::execute_budgeted`] — a full plan under a budget.
    Budgeted,
    /// [`crate::Engine::execute_spill`] — bisection-refined spill mode.
    Spill,
    /// [`crate::Engine::execute_spill_coarse`] — coarse (Lemma 3.1(b))
    /// spill mode.
    SpillCoarse,
}

impl Seam {
    /// Stable display name (used as a metric label).
    pub fn name(&self) -> &'static str {
        match self {
            Seam::Budgeted => "budgeted",
            Seam::Spill => "spill",
            Seam::SpillCoarse => "spill_coarse",
        }
    }
}

/// The four fault classes of the chaos model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// The executor dies mid-execution: all partial work is wasted. The
    /// fraction (in `(0, 1]`) of the would-be expenditure that was sunk
    /// before the crash.
    Fail {
        /// Fraction of the clean expenditure sunk before the crash.
        spent_frac: f64,
    },
    /// A spurious `QuotaExhausted`: the execution would have completed (or
    /// learnt more), but the engine reports a budget expiry and discards
    /// the partial result. Indistinguishable from a legitimate expiry to
    /// the caller — the discovery loops absorb it as one.
    SpuriousExhaust,
    /// The cost monitor mis-measures: the observed execution cost is the
    /// true cost times `factor` (in `[1/(1+γ), 1+γ]`), shifting both the
    /// completion decision and the charge.
    PerturbCost {
        /// Multiplicative observation error.
        factor: f64,
    },
    /// The selectivity/cost observation comes back as NaN garbage. The
    /// engine flags the outcome as failed so no corrupted value can ever
    /// enter the discovery state.
    CorruptObservation,
}

impl InjectedFault {
    /// Stable class name (used as a metric label and in events).
    pub fn class(&self) -> &'static str {
        match self {
            InjectedFault::Fail { .. } => "fail",
            InjectedFault::SpuriousExhaust => "spurious_exhaust",
            InjectedFault::PerturbCost { .. } => "perturb_cost",
            InjectedFault::CorruptObservation => "corrupt_observation",
        }
    }
}

/// A source of injected faults, asked once per execution.
///
/// Implementations must be deterministic given their construction seed:
/// the chaos harness replays fault schedules and asserts byte-identical
/// traces, so two walks of the same schedule must return the same
/// sequence of answers. `Sync` because discovery runs under rayon during
/// exhaustive evaluation.
pub trait FaultInjector: Sync {
    /// Whether (and how) the execution entering `seam` is struck.
    fn inject(&self, seam: Seam) -> Option<InjectedFault>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_stable() {
        assert_eq!(InjectedFault::Fail { spent_frac: 0.5 }.class(), "fail");
        assert_eq!(InjectedFault::SpuriousExhaust.class(), "spurious_exhaust");
        assert_eq!(InjectedFault::PerturbCost { factor: 1.1 }.class(), "perturb_cost");
        assert_eq!(InjectedFault::CorruptObservation.class(), "corrupt_observation");
        assert_eq!(Seam::Budgeted.name(), "budgeted");
        assert_eq!(Seam::Spill.name(), "spill");
        assert_eq!(Seam::SpillCoarse.name(), "spill_coarse");
    }
}
