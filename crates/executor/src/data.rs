//! Synthetic table generation with controlled join selectivities.
//!
//! The cost-model simulation is the paper's own evaluation currency, but a
//! credible engine must also *run*: this module generates miniature table
//! instances whose actual predicate selectivities equal an injected ESS
//! location, so the row-level executor in [`crate::rowexec`] can validate
//! plan semantics, cardinality propagation and spill-mode selectivity
//! monitoring against real tuples.
//!
//! Generation model: every column is uniform over a per-column integer
//! domain. Two uniform columns sharing a domain of size `N` join with
//! selectivity `1/N` (the System-R rule holds exactly in expectation), so
//! an epp's target selectivity `s` is induced by giving both its endpoint
//! columns the domain `round(1/s)`. A filter of selectivity `s` on a column
//! with domain `N` becomes the predicate `value < s·N`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rqp_catalog::{Catalog, ColRef, Query, RelId, SelVector};
use std::collections::HashMap;

/// A generated table: column-major `u64` data plus per-column domains.
#[derive(Debug, Clone)]
pub struct Table {
    /// Column values, `columns[c][r]` = row `r` of column `c`.
    pub columns: Vec<Vec<u64>>,
    /// Per-column domain size (values are uniform in `0..domain`).
    pub domains: Vec<u64>,
}

impl Table {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

/// A generated database instance for one query: tables for every query
/// relation, scaled down to at most `max_rows` rows each, with actual epp
/// selectivities equal to `target` (in expectation).
#[derive(Debug, Clone)]
pub struct DataSet {
    tables: HashMap<RelId, Table>,
    /// Scaled row count per relation.
    scaled_rows: HashMap<RelId, usize>,
    /// The *true* selectivity of every filter predicate on this instance
    /// (the injected target for epp filters, the recorded estimate
    /// otherwise).
    filter_sels: HashMap<rqp_catalog::PredId, f64>,
}

impl DataSet {
    /// Generate an instance for `query` with the epp selectivities of
    /// `target`. Tables are scaled so the largest has `max_rows` rows
    /// (relative sizes are preserved on a log scale).
    pub fn generate(
        catalog: &Catalog,
        query: &Query,
        target: &SelVector,
        max_rows: usize,
        seed: u64,
    ) -> DataSet {
        assert_eq!(target.dims(), query.dims());
        assert!(max_rows >= 16, "need at least 16 rows");
        let mut rng = StdRng::seed_from_u64(seed);

        // scale factor: preserve size ratios on a log scale so dimension
        // tables stay smaller than fact tables without exploding row counts
        let max_real =
            query.relations.iter().map(|&r| catalog.relation(r).rows).max().unwrap_or(1).max(1);
        let scale = |rows: u64| -> usize {
            let frac = ((rows.max(1) as f64).ln() / (max_real as f64).ln()).clamp(0.0, 1.0);
            ((max_rows as f64).powf(frac).round() as usize).clamp(4, max_rows)
        };

        // per-column domain: epp join endpoints get round(1/s); non-epp join
        // endpoints share the estimator's implied domain; everything else
        // keeps its catalog NDV (capped by the scaled row count)
        let mut domains: HashMap<ColRef, u64> = HashMap::new();
        for j in &query.joins {
            let d = match query.epp_dim(j.id) {
                Some(dim) => (1.0 / target.get(dim.0).value()).round().max(1.0) as u64,
                None => {
                    let ndv_l = catalog.relation(j.left.rel).columns[j.left.col].ndv;
                    let ndv_r = catalog.relation(j.right.rel).columns[j.right.col].ndv;
                    // cap so scaled tables still produce matches
                    ndv_l.max(ndv_r).min(scale(max_real) as u64 * 4).max(1)
                }
            };
            domains.insert(j.left, d);
            domains.insert(j.right, d);
        }

        let mut filter_sels = HashMap::new();
        for f in &query.filters {
            let s = match query.epp_dim(f.id) {
                Some(dim) => target.get(dim.0).value(),
                None => f.selectivity,
            };
            filter_sels.insert(f.id, s);
        }

        let mut tables = HashMap::new();
        let mut scaled_rows = HashMap::new();
        for &rel_id in &query.relations {
            let rel = catalog.relation(rel_id);
            let n = scale(rel.rows);
            scaled_rows.insert(rel_id, n);
            let mut columns = Vec::with_capacity(rel.columns.len());
            let mut col_domains = Vec::with_capacity(rel.columns.len());
            for (c, col) in rel.columns.iter().enumerate() {
                let domain = domains
                    .get(&ColRef::new(rel_id, c))
                    .copied()
                    .unwrap_or_else(|| col.ndv.min(n as u64 * 4).max(1));
                let data: Vec<u64> = if col.skew > 0.0 {
                    let sampler = ZipfSampler::new(domain, col.skew);
                    (0..n).map(|_| sampler.sample(&mut rng)).collect()
                } else {
                    (0..n).map(|_| rng.gen_range(0..domain)).collect()
                };
                columns.push(data);
                col_domains.push(domain);
            }
            tables.insert(rel_id, Table { columns, domains: col_domains });
        }
        DataSet { tables, scaled_rows, filter_sels }
    }

    /// The table generated for a relation.
    ///
    /// Asking for a relation outside the generated query is a programmer
    /// error: debug builds assert, release builds degrade to an empty table.
    pub fn table(&self, rel: RelId) -> &Table {
        static EMPTY: Table = Table { columns: Vec::new(), domains: Vec::new() };
        self.tables.get(&rel).unwrap_or_else(|| {
            debug_assert!(false, "no table generated for {rel}");
            &EMPTY
        })
    }

    /// The scaled row count of a relation.
    pub fn rows(&self, rel: RelId) -> usize {
        self.scaled_rows[&rel]
    }

    /// The filter threshold realizing a filter predicate's selectivity on
    /// this instance: `value < threshold`.
    pub fn filter_threshold(&self, col: ColRef, selectivity: f64) -> u64 {
        let domain = self.table(col.rel).domains[col.col];
        (selectivity * domain as f64).round() as u64
    }

    /// The true selectivity of a filter predicate on this instance.
    pub fn filter_sel(&self, pred: rqp_catalog::PredId) -> f64 {
        self.filter_sels[&pred]
    }
}

/// Inverse-CDF zipf sampler over `0..domain` (table capped at 65 536
/// entries; larger domains fold the tail into the last bucket, which is
/// immaterial at the scaled instance sizes used here).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(domain: u64, theta: f64) -> ZipfSampler {
        let k = domain.clamp(1, 65_536) as usize;
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for i in 1..=k {
            acc += (i as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 1_000_000)
                    .indexed_column("k", 1_000_000, 8)
                    .column("v", 100, 4)
                    .build(),
            )
            .relation(
                RelationBuilder::new("b", 10_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .epp_join("a", "k", "b", "k")
            .filter("a", "v", 0.3)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.01]);
        let d1 = DataSet::generate(&catalog, &query, &target, 1000, 7);
        let d2 = DataSet::generate(&catalog, &query, &target, 1000, 7);
        let a = catalog.find_relation("a").unwrap();
        let b = catalog.find_relation("b").unwrap();
        assert_eq!(d1.table(a).columns, d2.table(a).columns);
        assert_eq!(d1.rows(b), 1000, "largest table gets max_rows");
        assert!(d1.rows(a) < d1.rows(b), "size order preserved");
        assert!(d1.rows(a) >= 4);
    }

    #[test]
    fn epp_join_selectivity_matches_target() {
        let (catalog, query) = fixture();
        let a = catalog.find_relation("a").unwrap();
        let b = catalog.find_relation("b").unwrap();
        for &s in &[0.05f64, 0.01] {
            let target = SelVector::from_values(&[s]);
            let d = DataSet::generate(&catalog, &query, &target, 2000, 42);
            // count matching pairs by brute force
            let (ta, tb) = (d.table(a), d.table(b));
            let mut matches = 0usize;
            for &x in &ta.columns[0] {
                matches += tb.columns[0].iter().filter(|&&y| y == x).count();
            }
            let actual = matches as f64 / (ta.rows() as f64 * tb.rows() as f64);
            assert!((actual - s).abs() < s * 0.5 + 1e-4, "target {s}, actual {actual}");
        }
    }

    #[test]
    fn filter_threshold_tracks_selectivity() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.01]);
        let d = DataSet::generate(&catalog, &query, &target, 500, 1);
        let a = catalog.find_relation("a").unwrap();
        let col = query.filters[0].col;
        let thr = d.filter_threshold(col, 0.3);
        let t = d.table(a);
        let kept = t.columns[col.col].iter().filter(|&&v| v < thr).count();
        let frac = kept as f64 / t.rows() as f64;
        assert!((frac - 0.3).abs() < 0.15, "filter fraction {frac} far from 0.3");
    }

    #[test]
    fn skewed_columns_match_the_analytic_join_selectivity() {
        // two zipf(1.0) join columns over a shared domain: the measured
        // match rate should track H(2θ)/H(θ)², far above the uniform 1/N
        let catalog = CatalogBuilder::new()
            .relation(RelationBuilder::new("l", 300_000).skewed_column("k", 500, 8, 1.0).build())
            .relation(RelationBuilder::new("r", 300_000).skewed_column("k", 500, 8, 1.0).build())
            .build();
        let query = QueryBuilder::new(&catalog, "skewed")
            .table("l")
            .table("r")
            .join("l", "k", "r", "k")
            .build()
            .unwrap();
        let d = DataSet::generate(&catalog, &query, &SelVector::from_values(&[]), 3000, 99);
        let (tl, tr) = (
            d.table(catalog.find_relation("l").unwrap()),
            d.table(catalog.find_relation("r").unwrap()),
        );
        let mut counts = std::collections::HashMap::new();
        for &v in &tr.columns[0] {
            *counts.entry(v).or_insert(0usize) += 1;
        }
        let matches: usize =
            tl.columns[0].iter().map(|v| counts.get(v).copied().unwrap_or(0)).sum();
        let measured = matches as f64 / (tl.rows() as f64 * tr.rows() as f64);
        let n = tl.domains[0];
        let analytic = rqp_catalog::estimate::zipf_join_selectivity(n, 1.0);
        let uniform = 1.0 / n as f64;
        assert!(measured > uniform * 5.0, "skew must inflate selectivity: {measured}");
        assert!(
            (measured / analytic).ln().abs() < (2.0f64).ln(),
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "no table generated")]
    fn missing_table_panics() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.01]);
        let d = DataSet::generate(&catalog, &query, &target, 100, 1);
        d.table(RelId(99));
    }
}
