//! A row-level plan executor over generated data.
//!
//! This is the validation layer for the cost-model simulation: it actually
//! *runs* the physical plans of `rqp-qplan` over [`crate::data::DataSet`]
//! instances — hash joins build hash tables, index nested-loops probe an
//! index, filters drop tuples — with a work quota standing in for the cost
//! budget and with true spill-mode selectivity monitoring (§6.1's engine
//! facilities, at tuple granularity).
//!
//! Invariants it lets the test suite check on real tuples:
//! * every physical plan of a query computes the same result cardinality;
//! * output cardinalities track the cardinality model's predictions;
//! * spill-mode execution of an epp observes the injected selectivity;
//! * exceeding the quota aborts execution (time-limited execution).

use crate::data::DataSet;
use rqp_catalog::{Catalog, ColRef, EppId, PredId, Query};
use rqp_qplan::ops::PlanNode;
use rqp_qplan::pipeline::spill_subtree;
use std::collections::HashMap;

/// Column layout of an intermediate result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// The base column occupying each row position.
    pub cols: Vec<ColRef>,
}

impl Schema {
    /// Position of a base column in the row, if present.
    pub fn position(&self, col: ColRef) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }
}

/// A materialized intermediate result.
#[derive(Debug, Clone)]
pub struct Rows {
    /// Column layout.
    pub schema: Schema,
    /// Row data.
    pub data: Vec<Vec<u64>>,
}

impl Rows {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Execution aborted because the work quota expired (the row-level analogue
/// of a cost-budget expiry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaExhausted;

/// What a row-level spill-mode execution observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillObservation {
    /// Observed selectivity of the spilled predicate.
    pub selectivity: f64,
    /// Output rows of the spilled subtree.
    pub output_rows: usize,
}

/// The row-level executor for one query over one generated instance.
pub struct RowExecutor<'a> {
    catalog: &'a Catalog,
    query: &'a Query,
    data: &'a DataSet,
    quota: Option<u64>,
    work: u64,
}

impl<'a> RowExecutor<'a> {
    /// An executor without a work quota.
    pub fn new(catalog: &'a Catalog, query: &'a Query, data: &'a DataSet) -> Self {
        RowExecutor { catalog, query, data, quota: None, work: 0 }
    }

    /// An executor that aborts after `quota` units of work (one unit per
    /// tuple scanned, probed, compared or emitted).
    pub fn with_quota(
        catalog: &'a Catalog,
        query: &'a Query,
        data: &'a DataSet,
        quota: u64,
    ) -> Self {
        RowExecutor { catalog, query, data, quota: Some(quota), work: 0 }
    }

    /// Total work expended so far.
    pub fn work(&self) -> u64 {
        self.work
    }

    fn charge(&mut self, units: u64) -> Result<(), QuotaExhausted> {
        self.work += units;
        match self.quota {
            Some(q) if self.work > q => Err(QuotaExhausted),
            _ => Ok(()),
        }
    }

    fn filter_threshold(&self, pred: PredId) -> (ColRef, u64) {
        let Some(f) = self.query.filter(pred) else {
            // unknown predicate: keep every row (threshold above the domain)
            debug_assert!(false, "predicate {pred} is not a filter of the query");
            return (ColRef::new(rqp_catalog::RelId(0), 0), u64::MAX);
        };
        (f.col, self.data.filter_threshold(f.col, self.data.filter_sel(pred)))
    }

    /// Execute a plan (sub)tree to completion, materializing the result.
    pub fn run(&mut self, plan: &PlanNode) -> Result<Rows, QuotaExhausted> {
        match plan {
            PlanNode::SeqScan { rel, filters } => self.scan(*rel, filters, None),
            PlanNode::IndexScan { rel, sarg, filters } => self.scan(*rel, filters, Some(*sarg)),
            PlanNode::Sort { input } => {
                let rows = self.run(input)?;
                self.charge(rows.len() as u64)?; // sorting touches every row
                Ok(rows)
            }
            PlanNode::HashAggregate { input, groups }
            | PlanNode::SortAggregate { input, groups } => {
                let rows = self.run(input)?;
                self.charge(rows.len() as u64)?;
                let positions: Vec<usize> = groups
                    .iter()
                    .filter_map(|&g| {
                        let p = rows.schema.position(g);
                        debug_assert!(p.is_some(), "group column {g:?} missing from input");
                        p
                    })
                    .collect();
                let mut seen: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();
                for row in &rows.data {
                    let key: Vec<u64> = positions.iter().map(|&p| row[p]).collect();
                    seen.entry(key).or_insert_with(|| row.clone());
                }
                let mut data: Vec<Vec<u64>> = seen.into_values().collect();
                data.sort_unstable(); // deterministic output order
                Ok(Rows { schema: rows.schema, data })
            }
            PlanNode::HashJoin { build, probe, preds } => {
                let b = self.run(build)?;
                let p = self.run(probe)?;
                self.equi_join(b, p, preds)
            }
            PlanNode::MergeJoin { left, right, preds } => {
                let l = self.run(left)?;
                let r = self.run(right)?;
                self.equi_join(l, r, preds)
            }
            PlanNode::NestLoop { outer, inner, preds } => {
                let o = self.run(outer)?;
                let i = self.run(inner)?;
                self.charge(o.len() as u64 * i.len() as u64)?;
                self.equi_join(o, i, preds)
            }
            PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters } => {
                let o = self.run(outer)?;
                self.index_nest_loop(o, *inner_rel, *lookup, preds, inner_filters)
            }
        }
    }

    fn scan(
        &mut self,
        rel: rqp_catalog::RelId,
        filters: &[PredId],
        sarg: Option<PredId>,
    ) -> Result<Rows, QuotaExhausted> {
        let table = self.data.table(rel);
        let n = table.rows();
        let ncols = self.catalog.relation(rel).columns.len();
        let schema = Schema { cols: (0..ncols).map(|c| ColRef::new(rel, c)).collect() };

        let mut all: Vec<PredId> = sarg.into_iter().collect();
        all.extend_from_slice(filters);
        let thresholds: Vec<(usize, u64)> = all
            .iter()
            .map(|&p| {
                let (col, thr) = self.filter_threshold(p);
                debug_assert_eq!(col.rel, rel);
                (col.col, thr)
            })
            .collect();

        // an index scan touches only the qualifying fraction; a seq scan
        // reads everything
        let scan_work = match sarg {
            Some(p) => {
                let (col, thr) = self.filter_threshold(p);
                let dom = table.domains[col.col].max(1);
                ((n as f64) * (thr as f64 / dom as f64)).ceil() as u64 + 1
            }
            None => n as u64,
        };
        self.charge(scan_work)?;

        let mut data = Vec::new();
        for r in 0..n {
            if thresholds.iter().all(|&(c, thr)| table.columns[c][r] < thr) {
                data.push((0..ncols).map(|c| table.columns[c][r]).collect());
            }
        }
        Ok(Rows { schema, data })
    }

    /// Hash-based equi-join on all `preds` (each pred has one endpoint in
    /// each input).
    fn equi_join(
        &mut self,
        left: Rows,
        right: Rows,
        preds: &[PredId],
    ) -> Result<Rows, QuotaExhausted> {
        // resolve key positions per side
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        for &p in preds {
            let Some(j) = self.query.join(p) else {
                // skipping an unknown predicate only makes the join wider
                debug_assert!(false, "predicate {p} is not a join of the query");
                continue;
            };
            match (left.schema.position(j.left), right.schema.position(j.right)) {
                (Some(lp), Some(rp)) => {
                    lkeys.push(lp);
                    rkeys.push(rp);
                }
                _ => match (left.schema.position(j.right), right.schema.position(j.left)) {
                    (Some(lp), Some(rp)) => {
                        lkeys.push(lp);
                        rkeys.push(rp);
                    }
                    _ => debug_assert!(false, "join columns of {p} absent from inputs"),
                },
            }
        }

        self.charge(left.len() as u64 + right.len() as u64)?;
        let mut table: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for (i, row) in left.data.iter().enumerate() {
            let key: Vec<u64> = lkeys.iter().map(|&k| row[k]).collect();
            table.entry(key).or_default().push(i);
        }

        let mut schema = left.schema.cols.clone();
        schema.extend_from_slice(&right.schema.cols);
        let mut data = Vec::new();
        for rrow in &right.data {
            let key: Vec<u64> = rkeys.iter().map(|&k| rrow[k]).collect();
            if let Some(ls) = table.get(&key) {
                self.charge(ls.len() as u64)?;
                for &li in ls {
                    let mut out = left.data[li].clone();
                    out.extend_from_slice(rrow);
                    data.push(out);
                }
            }
        }
        Ok(Rows { schema: Schema { cols: schema }, data })
    }

    fn index_nest_loop(
        &mut self,
        outer: Rows,
        inner_rel: rqp_catalog::RelId,
        lookup: PredId,
        preds: &[PredId],
        inner_filters: &[PredId],
    ) -> Result<Rows, QuotaExhausted> {
        let table = self.data.table(inner_rel);
        let Some(j) = self.query.join(lookup) else {
            debug_assert!(false, "lookup {lookup} is not a join predicate");
            return Ok(Rows { schema: outer.schema, data: Vec::new() });
        };
        let (outer_col, inner_col) =
            if j.left.rel == inner_rel { (j.right, j.left) } else { (j.left, j.right) };
        let Some(opos) = outer.schema.position(outer_col) else {
            debug_assert!(false, "lookup column {outer_col:?} missing from outer input");
            return Ok(Rows { schema: outer.schema, data: Vec::new() });
        };

        // build the index (the real engine has it on disk; charge |inner|
        // once as the warm-up equivalent)
        self.charge(table.rows() as u64)?;
        let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
        for (r, &v) in table.columns[inner_col.col].iter().enumerate() {
            index.entry(v).or_default().push(r);
        }

        let filter_thrs: Vec<(usize, u64)> = inner_filters
            .iter()
            .map(|&p| {
                let (col, thr) = self.filter_threshold(p);
                (col.col, thr)
            })
            .collect();
        let residual: Vec<PredId> = preds.to_vec();

        let ncols = self.catalog.relation(inner_rel).columns.len();
        let mut schema = outer.schema.cols.clone();
        schema.extend((0..ncols).map(|c| ColRef::new(inner_rel, c)));
        let out_schema = Schema { cols: schema };

        let mut data = Vec::new();
        for orow in &outer.data {
            self.charge(1)?; // the probe
            let Some(matches) = index.get(&orow[opos]) else { continue };
            self.charge(matches.len() as u64)?;
            'm: for &ri in matches {
                for &(c, thr) in &filter_thrs {
                    if table.columns[c][ri] >= thr {
                        continue 'm;
                    }
                }
                let mut out = orow.clone();
                out.extend((0..ncols).map(|c| table.columns[c][ri]));
                // residual join predicates against columns already present
                let ok = residual.iter().all(|&p| {
                    let Some(jp) = self.query.join(p) else {
                        debug_assert!(false, "residual {p} is not a join predicate");
                        return true;
                    };
                    let a = out_schema.position(jp.left);
                    let b = out_schema.position(jp.right);
                    match (a, b) {
                        (Some(a), Some(b)) => out[a] == out[b],
                        _ => true,
                    }
                });
                if ok {
                    data.push(out);
                }
            }
        }
        Ok(Rows { schema: out_schema, data })
    }

    /// Execute a plan under the work quota and translate the result into
    /// the engine's [`crate::ExecOutcome`] terms.
    ///
    /// On an abort, `BudgetExhausted::spent` carries the work actually
    /// expended when the quota fired — not the full quota. The quota check
    /// runs after each charge, so at abort the executor has sunk slightly
    /// *more* than the quota (the in-flight batch completes before the
    /// check), never an unconditional full-quota charge for a cheap early
    /// abort. The paper-faithful full-budget charge for contour executions
    /// is the discovery layer's accounting decision, made in
    /// `DiscoveryTrace` — see the budget-charging tests in `rqp-core`.
    pub fn run_budgeted(&mut self, plan: &PlanNode) -> crate::ExecOutcome {
        match self.run(plan) {
            Ok(_) => crate::ExecOutcome::Completed { cost: self.work as f64 },
            Err(QuotaExhausted) => crate::ExecOutcome::BudgetExhausted { spent: self.work as f64 },
        }
    }

    /// Spill-mode execution at row level: run only the subtree rooted at
    /// the epp's node and observe the predicate's selectivity from the
    /// tuples that actually flowed (§3.1.2 + selectivity monitoring).
    pub fn run_spill(
        &mut self,
        plan: &PlanNode,
        epp: EppId,
    ) -> Result<SpillObservation, QuotaExhausted> {
        let subtree = spill_subtree(plan, self.query, epp).unwrap_or_else(|| {
            // spilling on an un-evaluated epp is a programmer error; degrade
            // to observing the whole plan
            debug_assert!(false, "plan does not evaluate epp {epp}");
            plan.clone()
        });
        let pred = self.query.epp_pred(epp);

        if let Some(j) = self.query.join(pred) {
            // inputs of the epp's join node
            let (l_in, r_in, out) = match &subtree {
                PlanNode::HashJoin { build, probe, .. } => {
                    let b = self.run(build)?;
                    let p = self.run(probe)?;
                    let (bl, pl) = (b.len(), p.len());
                    (bl, pl, self.equi_join(b, p, subtree.join_preds())?.len())
                }
                PlanNode::MergeJoin { left, right, .. } => {
                    let l = self.run(left)?;
                    let r = self.run(right)?;
                    let (ll, rl) = (l.len(), r.len());
                    (ll, rl, self.equi_join(l, r, subtree.join_preds())?.len())
                }
                PlanNode::NestLoop { outer, inner, .. } => {
                    let o = self.run(outer)?;
                    let i = self.run(inner)?;
                    let (ol, il) = (o.len(), i.len());
                    self.charge(ol as u64 * il as u64)?;
                    (ol, il, self.equi_join(o, i, subtree.join_preds())?.len())
                }
                PlanNode::IndexNestLoop { outer, inner_rel, lookup, .. } => {
                    let o = self.run(outer)?;
                    let ol = o.len();
                    let il = self.data.table(*inner_rel).rows();
                    // count raw matches of the lookup only (selectivity of
                    // the epp itself, before residual filtering)
                    let out = self.index_nest_loop(o, *inner_rel, *lookup, &[], &[])?.len();
                    let _ = lookup;
                    (ol, il, out)
                }
                other => {
                    // conservative: report the PCM-safe worst case
                    debug_assert!(
                        false,
                        "epp {epp} not evaluated at a join node: {}",
                        other.op_name()
                    );
                    let rows = self.run(&subtree)?;
                    return Ok(SpillObservation { selectivity: 1.0, output_rows: rows.len() });
                }
            };
            let pairs = (l_in as f64) * (r_in as f64);
            let selectivity = if pairs <= 0.0 { 0.0 } else { out as f64 / pairs };
            let _ = j;
            Ok(SpillObservation { selectivity, output_rows: out })
        } else {
            // epp filter: selectivity observed at the scan
            let rows = self.run(&subtree)?;
            let Some(f) = self.query.filter(pred) else {
                debug_assert!(false, "epp {epp} predicate is neither join nor filter");
                return Ok(SpillObservation { selectivity: 1.0, output_rows: rows.len() });
            };
            let base = self.data.table(f.col.rel).rows();
            Ok(SpillObservation {
                selectivity: rows.len() as f64 / base.max(1) as f64,
                output_rows: rows.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataSet;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder, SelVector};
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 200_000)
                    .indexed_column("p_partkey", 200_000, 8)
                    .column("p_price", 5_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 6_000_000)
                    .indexed_column("l_partkey", 200_000, 8)
                    .indexed_column("l_orderkey", 1_500_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 1_500_000)
                    .indexed_column("o_orderkey", 1_500_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.5)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn all_physical_plans_agree_on_the_result() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.02, 0.01]);
        let data = DataSet::generate(&catalog, &query, &target, 600, 11);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        // plans optimal at different corners are structurally different …
        let counts: Vec<usize> = [
            SelVector::from_values(&[1e-6, 1e-6]),
            SelVector::from_values(&[0.5, 1e-4]),
            SelVector::from_values(&[1.0, 1.0]),
        ]
        .iter()
        .map(|loc| {
            let planned = opt.optimize(loc);
            let mut exec = RowExecutor::new(&catalog, &query, &data);
            exec.run(&planned.plan).expect("no quota").len()
        })
        .collect();
        // … but all compute the same join
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }

    #[test]
    fn observed_cardinality_tracks_the_cardinality_model() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.05, 0.02]);
        let data = DataSet::generate(&catalog, &query, &target, 500, 3);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&target);
        let mut exec = RowExecutor::new(&catalog, &query, &data);
        let rows = exec.run(&planned.plan).unwrap();
        // model prediction on the *scaled* instance
        let (p, l, o) = (
            data.rows(catalog.find_relation("part").unwrap()) as f64,
            data.rows(catalog.find_relation("lineitem").unwrap()) as f64,
            data.rows(catalog.find_relation("orders").unwrap()) as f64,
        );
        let expect = p * 0.5 * l * o * 0.05 * 0.02;
        let got = rows.len() as f64;
        assert!(
            got <= expect * 4.0 + 20.0 && got + 1.0 >= expect / 8.0,
            "row count {got} far from model {expect}"
        );
    }

    #[test]
    fn spill_observation_matches_injected_selectivity() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.05, 0.01]);
        let data = DataSet::generate(&catalog, &query, &target, 700, 5);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&target);
        let unlearnt = [EppId(0), EppId(1)].into();
        let epp = rqp_qplan::pipeline::spill_target(&planned.plan, &query, &unlearnt).unwrap();
        let mut exec = RowExecutor::new(&catalog, &query, &data);
        let obs = exec.run_spill(&planned.plan, epp).unwrap();
        let injected = target.get(epp.0).value();
        assert!(
            (obs.selectivity - injected).abs() < injected * 0.6 + 1e-3,
            "observed {} vs injected {injected}",
            obs.selectivity
        );
    }

    #[test]
    fn quota_aborts_execution() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.05, 0.05]);
        let data = DataSet::generate(&catalog, &query, &target, 800, 9);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&target);
        let mut tight = RowExecutor::with_quota(&catalog, &query, &data, 10);
        assert!(matches!(tight.run(&planned.plan), Err(QuotaExhausted)));
        let mut ample = RowExecutor::with_quota(&catalog, &query, &data, u64::MAX / 2);
        assert!(ample.run(&planned.plan).is_ok());
        assert!(ample.work() > 0);
    }

    #[test]
    fn abort_reports_actual_work_not_the_full_quota() {
        let (catalog, query) = fixture();
        let target = SelVector::from_values(&[0.05, 0.05]);
        let data = DataSet::generate(&catalog, &query, &target, 800, 9);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&target);
        // measure the full run's work, then abort at a third of it
        let mut free = RowExecutor::new(&catalog, &query, &data);
        free.run(&planned.plan).unwrap();
        let full = free.work();
        assert!(full > 30, "fixture too small to abort mid-run");
        let quota = full / 3;
        let mut tight = RowExecutor::with_quota(&catalog, &query, &data, quota);
        match tight.run_budgeted(&planned.plan) {
            crate::ExecOutcome::BudgetExhausted { spent } => {
                assert_eq!(spent, tight.work() as f64, "spent must be the work at abort");
                assert!(
                    spent >= quota as f64,
                    "the in-flight batch completes before the quota check"
                );
                assert!(
                    spent < full as f64,
                    "an early abort must not be charged the full run: {spent} vs {full}"
                );
            }
            other => panic!("expected an abort, got {other:?}"),
        }
        // a completing run reports its actual work as the cost
        let mut ample = RowExecutor::with_quota(&catalog, &query, &data, full * 2);
        match ample.run_budgeted(&planned.plan) {
            crate::ExecOutcome::Completed { cost } => assert_eq!(cost, full as f64),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn work_grows_with_selectivity() {
        let (catalog, query) = fixture();
        let lo = SelVector::from_values(&[0.01, 0.01]);
        let hi = SelVector::from_values(&[0.2, 0.2]);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&hi);
        let mut works = Vec::new();
        for t in [&lo, &hi] {
            let data = DataSet::generate(&catalog, &query, t, 600, 21);
            let mut exec = RowExecutor::new(&catalog, &query, &data);
            exec.run(&planned.plan).unwrap();
            works.push(exec.work());
        }
        assert!(works[1] > works[0], "more selective instance should need less work: {works:?}");
    }
}

#[cfg(test)]
mod aggregate_tests {
    use super::*;
    use crate::data::DataSet;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder, SelVector};
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn grouped_fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("sales", 500_000)
                    .indexed_column("item_sk", 10_000, 8)
                    .column("qty", 50, 4)
                    .build(),
            )
            .relation(
                RelationBuilder::new("item", 10_000)
                    .indexed_column("i_item_sk", 10_000, 8)
                    .column("i_category", 8, 16)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "grouped")
            .table("sales")
            .table("item")
            .epp_join("sales", "item_sk", "item", "i_item_sk")
            .group_by("item", "i_category")
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn aggregate_output_respects_the_group_cap_on_real_tuples() {
        let (catalog, query) = grouped_fixture();
        let target = SelVector::from_values(&[0.05]);
        let data = DataSet::generate(&catalog, &query, &target, 800, 13);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let planned = opt.optimize(&target);
        let mut exec = RowExecutor::new(&catalog, &query, &data);
        let rows = exec.run(&planned.plan).unwrap();
        assert!(rows.len() <= 8, "at most 8 categories, got {}", rows.len());
    }

    #[test]
    fn aggregates_agree_across_physical_plans() {
        let (catalog, query) = grouped_fixture();
        let target = SelVector::from_values(&[0.02]);
        let data = DataSet::generate(&catalog, &query, &target, 600, 17);
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let counts: Vec<usize> = [1e-6, 0.5]
            .iter()
            .map(|&s| {
                let planned = opt.optimize(&SelVector::from_values(&[s]));
                let mut exec = RowExecutor::new(&catalog, &query, &data);
                exec.run(&planned.plan).unwrap().len()
            })
            .collect();
        assert_eq!(counts[0], counts[1], "group counts must agree across plans");
    }
}
