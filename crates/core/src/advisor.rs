//! The execution-strategy advisor (§9 future work, §1.4.1 caveat).
//!
//! The paper is explicit that the bouquet algorithms "are not a substitute
//! for a conventional query optimizer … when small estimation errors are
//! expected, the native optimizer could be sufficient, but if larger errors
//! are anticipated, our algorithms are likely to be the preferred choice",
//! and lists "automated assistants for guiding users in deciding whether to
//! use the native query optimizer or our algorithms" as future work. This
//! module implements that assistant: given a bound on the anticipated
//! estimation error, it measures the native optimizer's worst case under
//! that error and compares it against SpillBound's measured worst case.

use crate::eval::evaluate_sampled;
use crate::runtime::RobustRuntime;
use crate::spillbound::SpillBound;
use rayon::prelude::*;
use rqp_ess::Cell;
use serde::Serialize;

/// The advisor's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Recommendation {
    /// Anticipated errors are benign: run the native optimizer.
    Native,
    /// Anticipated errors can hurt: run SpillBound (or AlignedBound).
    Robust,
}

/// The advisor's full report.
#[derive(Debug, Clone, Serialize)]
pub struct Advice {
    /// The verdict.
    pub recommendation: Recommendation,
    /// Worst native sub-optimality when every epp estimate is off by at
    /// most the given factor.
    pub native_worst: f64,
    /// SpillBound's measured worst case (sampled).
    pub sb_worst: f64,
    /// The anticipated error factor the analysis assumed.
    pub error_factor: f64,
}

/// Worst native sub-optimality under bounded estimation error: for each
/// actual location `qa`, the estimate `qe` may land anywhere within
/// `[qa_j / factor, qa_j · factor]` per dimension; the native engine then
/// runs `P_qe` at `qa`. The maximum is attained on the corners of the error
/// box (plan choice varies most at the extremes), so corners are what we
/// probe.
pub fn native_worst_under_error(rt: &RobustRuntime<'_>, factor: f64, stride: usize) -> f64 {
    assert!(factor >= 1.0, "error factor must be at least 1");
    let grid = rt.grid();
    let dims = grid.dims();
    let cells: Vec<Cell> = grid.cells().step_by(stride.max(1)).collect();
    cells
        .into_par_iter()
        .map(|qa| {
            let qa_loc = grid.location(qa);
            let oracle = rt.oracle_cost(qa);
            let mut worst: f64 = 1.0;
            // corners of the error box (2^D of them; D ≤ 6 ⇒ ≤ 64)
            for corner in 0u32..(1u32 << dims) {
                let mut qe = qa_loc.clone();
                for d in 0..dims {
                    let v = qa_loc.get(d).value();
                    let scaled = if (corner >> d) & 1 == 1 { v * factor } else { v / factor };
                    qe.set(d, rqp_catalog::Selectivity::new(scaled));
                }
                let planned = rt.optimizer.optimize(&qe);
                let cost = rt.optimizer.cost_of(&planned.plan, &qa_loc);
                worst = worst.max(cost / oracle);
            }
            worst
        })
        .reduce(|| 1.0, f64::max)
}

/// Advise whether to run the query natively or robustly, anticipating epp
/// estimation errors of up to `error_factor` (×/÷) per dimension.
pub fn advise(rt: &RobustRuntime<'_>, error_factor: f64) -> Advice {
    let stride = (rt.grid().num_cells() / 2_000).max(1);
    let native_worst = native_worst_under_error(rt, error_factor, stride);
    let sb_worst = evaluate_sampled(rt, &SpillBound::new(), stride).mso;
    let recommendation =
        if native_worst <= sb_worst { Recommendation::Native } else { Recommendation::Robust };
    Advice { recommendation, native_worst, sb_worst, error_factor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 10, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn tiny_errors_favour_the_native_optimizer() {
        let rt = runtime();
        let advice = advise(&rt, 1.0);
        // with *no* estimation error the native engine is optimal
        assert!(advice.native_worst <= 1.0 + 1e-9);
        assert_eq!(advice.recommendation, Recommendation::Native);
    }

    #[test]
    fn large_errors_favour_the_robust_algorithms() {
        let rt = runtime();
        let advice = advise(&rt, 1e5);
        assert!(
            advice.native_worst > advice.sb_worst,
            "native {} should exceed SB {} under huge errors",
            advice.native_worst,
            advice.sb_worst
        );
        assert_eq!(advice.recommendation, Recommendation::Robust);
    }

    #[test]
    fn native_worst_grows_with_the_error_factor() {
        let rt = runtime();
        let w1 = native_worst_under_error(&rt, 1.0, 3);
        let w2 = native_worst_under_error(&rt, 100.0, 3);
        let w3 = native_worst_under_error(&rt, 1e4, 3);
        assert!(w1 <= w2 + 1e-9);
        assert!(w2 <= w3 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unit_factor_rejected() {
        let rt = runtime();
        native_worst_under_error(&rt, 0.5, 1);
    }
}
