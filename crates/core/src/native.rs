//! The traditional-optimizer baseline.
//!
//! A conventional engine estimates the epp selectivities (`qe`), picks the
//! plan optimal there, and runs it wherever the query actually lives
//! (`qa`). Its sub-optimality is `Cost(P_qe, qa) / Cost(P_qa, qa)`, and its
//! MSO — with estimation errors ranging over the whole ESS, as the paper
//! assumes — is the worst such ratio over all `(qe, qa)` pairs (Eq. 2).

use crate::runtime::RobustRuntime;
use crate::trace::{DiscoveryTrace, PlanRef};
use crate::Discovery;
use rayon::prelude::*;
use rqp_ess::Cell;
use std::sync::Arc;

/// The native-optimizer baseline with the catalog's own estimate for `qe`.
pub struct NativeOptimizer;

impl Discovery for NativeOptimizer {
    fn name(&self) -> &'static str {
        "Native"
    }

    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace {
        let qe = rt.estimated_location();
        let planned = rt.optimizer.optimize(qe);
        let plan = Arc::new(planned.plan);
        let qa_loc = rt.grid().location(qa);
        let band = rt.band_of(qa);
        let mut sup = rt.supervisor(self.name());
        let plan_ref = PlanRef::Bespoke(Arc::clone(&plan));
        let mut steps = Vec::new();
        let mut total = 0.0;
        // the traditional optimizer has exactly one plan and no fallback:
        // if it keeps faulting past the retry budget, the honest outcome is
        // a structured failure (with all sunk work accounted), not an abort
        let completed = sup
            .execute_full(
                &rt.engine,
                &plan,
                &plan_ref,
                band,
                &qa_loc,
                f64::INFINITY,
                &mut total,
                &mut steps,
            )
            .is_some_and(|out| out.completed());
        let failure = if completed {
            None
        } else {
            Some(
                "native plan failed beyond the retry budget; \
                 the traditional optimizer has no fallback plan"
                    .to_string(),
            )
        };
        let trace = DiscoveryTrace {
            algo: self.name(),
            qa,
            steps,
            total_cost: total,
            oracle_cost: rt.oracle_cost(qa),
            failure,
            quarantined: sup.quarantined(),
        };
        crate::obs::record_trace(&trace);
        trace
    }
}

/// Worst-case native MSO with estimation errors spanning the entire ESS:
/// `max_{qa} max_{qe} Cost(P_qe, qa) / Cost(P_qa, qa)`. Every `P_qe` is a
/// POSP plan, so the inner maximum ranges over the plan registry.
pub fn native_mso_worst_estimate(rt: &RobustRuntime<'_>) -> f64 {
    // the sweep ranges over the whole POSP plan pool, so pull every band
    // first (a full compile on a lazy surface — worst-case analysis is a
    // whole-surface consumer by definition)
    rt.band_cells(rt.num_bands() - 1);
    let plan_ids = rt.plan_pool();
    rt.grid()
        .cells()
        .into_par_iter()
        .map(|qa| {
            let oracle = rt.oracle_cost(qa);
            plan_ids.iter().map(|&id| rt.plan_cost_at(id, qa) / oracle).fold(0.0f64, f64::max)
        })
        .reduce(|| 0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 10, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn native_subopt_is_at_least_one_everywhere() {
        let rt = runtime();
        let native = NativeOptimizer;
        for qa in rt.grid().cells() {
            let t = native.discover(&rt, qa);
            assert!(t.subopt() >= 1.0 - 1e-9);
            assert_eq!(t.steps.len(), 1);
        }
    }

    #[test]
    fn worst_estimate_mso_dominates_fixed_estimate_mso() {
        let rt = runtime();
        let native = NativeOptimizer;
        let fixed =
            rt.grid().cells().map(|qa| native.discover(&rt, qa).subopt()).fold(0.0f64, f64::max);
        let worst = native_mso_worst_estimate(&rt);
        assert!(worst >= fixed - 1e-9);
        assert!(worst >= 1.0);
    }
}
