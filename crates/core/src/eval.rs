//! Exhaustive empirical evaluation: MSO_e, ASO and sub-optimality
//! distributions over the full ESS grid (§6.2.3–§6.2.5).
//!
//! "The assessment was accomplished by explicitly and exhaustively
//! considering each and every location in the ESS to be qa, and then
//! evaluating the sub-optimality incurred for this location."

use crate::runtime::RobustRuntime;
use crate::Discovery;
use rayon::prelude::*;
use rqp_ess::Cell;
use serde::Serialize;

/// Empirical evaluation of one algorithm over the full grid.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// Algorithm display name.
    pub name: String,
    /// Empirical maximum sub-optimality (Eq. 4).
    pub mso: f64,
    /// The cell where the maximum occurred.
    pub worst_cell: Cell,
    /// Average sub-optimality over all cells, uniform weighting (Eq. 8).
    pub aso: f64,
    /// Per-cell sub-optimalities (cell-index order).
    pub subopts: Vec<f64>,
}

impl Evaluation {
    /// Histogram of sub-optimalities with the given bin width (Fig. 12 uses
    /// width 5). Returns `(bin lower edge, fraction of cells)` pairs; the
    /// final bin aggregates everything beyond `max_bins` bins.
    pub fn histogram(&self, bin_width: f64, max_bins: usize) -> Vec<(f64, f64)> {
        let mut counts = vec![0usize; max_bins];
        for &s in &self.subopts {
            let bin = ((s / bin_width).floor() as usize).min(max_bins - 1);
            counts[bin] += 1;
        }
        let n = self.subopts.len() as f64;
        counts.into_iter().enumerate().map(|(i, c)| (i as f64 * bin_width, c as f64 / n)).collect()
    }

    /// Fraction of cells with sub-optimality at most `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        let n = self.subopts.iter().filter(|&&s| s <= threshold).count();
        n as f64 / self.subopts.len() as f64
    }
}

/// Evaluate an algorithm exhaustively over every grid cell, in parallel.
pub fn evaluate(rt: &RobustRuntime<'_>, algo: &dyn Discovery) -> Evaluation {
    let subopts: Vec<f64> =
        rt.grid().cells().into_par_iter().map(|qa| algo.discover(rt, qa).subopt()).collect();
    summarize(algo.name(), subopts)
}

/// Evaluate over a deterministic subsample of cells (every `stride`-th
/// cell) — used by the high-dimensional benches where the full grid is
/// large.
pub fn evaluate_sampled(rt: &RobustRuntime<'_>, algo: &dyn Discovery, stride: usize) -> Evaluation {
    let cells: Vec<Cell> = rt.grid().cells().step_by(stride.max(1)).collect();
    let subopts: Vec<f64> =
        cells.into_par_iter().map(|qa| algo.discover(rt, qa).subopt()).collect();
    summarize(algo.name(), subopts)
}

fn summarize(name: &str, subopts: Vec<f64>) -> Evaluation {
    let (mut mso, mut worst) = (0.0f64, 0usize);
    let mut sum = 0.0f64;
    for (i, &s) in subopts.iter().enumerate() {
        sum += s;
        if s > mso {
            mso = s;
            worst = i;
        }
    }
    let aso = sum / subopts.len() as f64;
    crate::obs::record_evaluation(name, mso, aso, subopts.len());
    Evaluation { name: name.to_string(), mso, worst_cell: worst, aso, subopts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bouquet::PlanBouquet;
    use crate::spillbound::SpillBound;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 10, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn mso_bounds_aso_and_every_cell() {
        let rt = runtime();
        let sb = SpillBound::new();
        let ev = evaluate(&rt, &sb);
        assert_eq!(ev.subopts.len(), rt.grid().num_cells());
        assert!(ev.aso <= ev.mso);
        assert!(ev.aso >= 1.0 - 1e-9);
        assert!((ev.subopts[ev.worst_cell] - ev.mso).abs() < 1e-12);
        assert!(ev.subopts.iter().all(|&s| s <= ev.mso + 1e-12));
    }

    #[test]
    fn histogram_sums_to_one() {
        let rt = runtime();
        let ev = evaluate(&rt, &PlanBouquet::new());
        let h = ev.histogram(5.0, 10);
        let total: f64 = h.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(h.len(), 10);
        assert_eq!(h[0].0, 0.0);
        assert_eq!(h[1].0, 5.0);
    }

    #[test]
    fn fraction_below_is_monotone() {
        let rt = runtime();
        let ev = evaluate(&rt, &SpillBound::new());
        let f5 = ev.fraction_below(5.0);
        let f10 = ev.fraction_below(10.0);
        assert!(f5 <= f10);
        assert!(ev.fraction_below(ev.mso + 1.0) == 1.0);
    }

    #[test]
    fn sampled_evaluation_covers_a_subset() {
        let rt = runtime();
        let full = evaluate(&rt, &SpillBound::new());
        let sampled = evaluate_sampled(&rt, &SpillBound::new(), 7);
        assert!(sampled.subopts.len() < full.subopts.len());
        assert!(sampled.mso <= full.mso + 1e-9);
    }
}
