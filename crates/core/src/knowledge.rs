//! The discovery algorithms' knowledge of the actual location `qa`.

use rqp_catalog::{EppId, SelVector, Selectivity};
use rqp_ess::{Cell, Grid};
use std::collections::BTreeSet;

/// What has been learnt about `qa` so far: a running lower-bound location
/// `qrun` (§4: "the running selectivity location, as progressively learnt")
/// plus the set of dimensions whose selectivity is known *exactly*.
#[derive(Debug, Clone, PartialEq)]
pub struct Knowledge {
    qrun: SelVector,
    exact: Vec<Option<f64>>,
}

impl Knowledge {
    /// Fresh knowledge: `qrun` at the grid origin, nothing exact.
    pub fn new(grid: &Grid) -> Self {
        Knowledge { qrun: grid.location(grid.origin()), exact: vec![None; grid.dims()] }
    }

    /// The running location.
    pub fn qrun(&self) -> &SelVector {
        &self.qrun
    }

    /// Exact selectivity of a dimension, if learnt.
    pub fn exact(&self, dim: EppId) -> Option<f64> {
        self.exact[dim.0]
    }

    /// Dimensions not yet learnt exactly, in ascending order — the current
    /// `EPP` set of Algorithm 1.
    pub fn unlearnt(&self) -> BTreeSet<EppId> {
        self.exact.iter().enumerate().filter(|(_, e)| e.is_none()).map(|(d, _)| EppId(d)).collect()
    }

    /// Number of dimensions learnt exactly.
    pub fn num_exact(&self) -> usize {
        self.exact.iter().filter(|e| e.is_some()).count()
    }

    /// Record an exactly-learnt selectivity.
    ///
    /// Either misuse indicates a learner bug, and both degrade instead of
    /// aborting: re-learning a dimension keeps the first value
    /// (`debug_assert!`ing that both agree up to the cost epsilon), and an
    /// "exact" value below the proven running lower bound is clamped up to
    /// that bound — the conservative side for every guarantee, since no
    /// sound learner can overshoot.
    pub fn learn_exact(&mut self, dim: EppId, value: f64) {
        if let Some(prev) = self.exact[dim.0] {
            debug_assert!(
                rqp_qplan::cost_eq(prev, value),
                "dim {dim} re-learnt to a different value ({prev} vs {value})"
            );
            return;
        }
        let bound = self.qrun.get(dim.0).value();
        debug_assert!(
            value >= bound * (1.0 - 1e-9),
            "exact value {value} below running bound {}",
            self.qrun.get(dim.0)
        );
        let value = value.max(bound);
        self.exact[dim.0] = Some(value);
        self.qrun.set(dim.0, Selectivity::new(value));
    }

    /// Raise the lower bound of a dimension (no-op if not an improvement).
    pub fn learn_bound(&mut self, dim: EppId, value: f64) {
        debug_assert!(self.exact[dim.0].is_none(), "bound update on an exact dim");
        if value > self.qrun.get(dim.0).value() {
            self.qrun.set(dim.0, Selectivity::new(value));
        }
    }

    /// Whether a grid cell is consistent with the exactly-learnt
    /// selectivities — i.e. lies in the current *effective search space*
    /// (§4.2: "the subset of locations … whose selectivity along the learnt
    /// dimensions matches the learnt selectivities").
    pub fn matches_exact(&self, grid: &Grid, cell: Cell) -> bool {
        self.exact.iter().enumerate().all(|(d, e)| match e {
            None => true,
            Some(v) => grid.coord(cell, d) == grid.snap_ceil(d, *v),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::uniform(2, 5, 1e-4).unwrap()
    }

    #[test]
    fn starts_at_origin_all_unlearnt() {
        let g = grid();
        let k = Knowledge::new(&g);
        assert_eq!(k.unlearnt().len(), 2);
        assert_eq!(k.num_exact(), 0);
        assert!((k.qrun().get(0).value() - 1e-4).abs() < 1e-15);
    }

    #[test]
    fn exact_learning_pins_dimension() {
        let g = grid();
        let mut k = Knowledge::new(&g);
        let v = g.value(0, 3);
        k.learn_exact(EppId(0), v);
        assert_eq!(k.exact(EppId(0)), Some(v));
        assert_eq!(k.unlearnt().into_iter().collect::<Vec<_>>(), vec![EppId(1)]);
        assert_eq!(k.qrun().get(0).value(), v);
        // matches_exact keeps only the matching column
        for cell in g.cells() {
            let m = k.matches_exact(&g, cell);
            assert_eq!(m, g.coord(cell, 0) == 3, "cell {cell}");
        }
    }

    #[test]
    fn bounds_only_move_up() {
        let g = grid();
        let mut k = Knowledge::new(&g);
        k.learn_bound(EppId(1), 0.01);
        assert_eq!(k.qrun().get(1).value(), 0.01);
        k.learn_bound(EppId(1), 0.001); // worse bound, ignored
        assert_eq!(k.qrun().get(1).value(), 0.01);
        k.learn_bound(EppId(1), 0.5);
        assert_eq!(k.qrun().get(1).value(), 0.5);
    }

    #[test]
    fn relearning_same_exact_value_is_idempotent() {
        let g = grid();
        let mut k = Knowledge::new(&g);
        k.learn_exact(EppId(0), 0.5);
        k.learn_exact(EppId(0), 0.5);
        assert_eq!(k.num_exact(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below running bound")]
    fn exact_below_bound_panics() {
        let g = grid();
        let mut k = Knowledge::new(&g);
        k.learn_bound(EppId(0), 0.5);
        k.learn_exact(EppId(0), 0.01);
    }
}
