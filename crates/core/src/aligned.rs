//! The AlignedBound algorithm (Algorithm 2, §5) and contour-alignment
//! statistics (Table 2).
//!
//! A contour is *aligned* along dimension `j` when the plan at its extreme
//! location along `j` spills on `j`; an aligned contour needs only **one**
//! spill execution to make quantum progress (Lemma 3.3) instead of
//! SpillBound's `|EPP|`. AlignedBound generalizes this through *predicate
//! set alignment* (PSA): the remaining epps are partitioned into groups,
//! each group covered by a single leader-dimension execution, with optimal
//! plans replaced by cheap "aligned substitutes" where alignment must be
//! *induced* (§5.2). The partition with the minimum total replacement
//! penalty is chosen; when even the best partition is costlier than
//! SpillBound's `|EPP|` executions, the algorithm falls back to the
//! SpillBound procedure for that contour, retaining the `D²+3D` guarantee.
//! Overall: `MSO ∈ [2D+2, D²+3D]`.

use crate::bouquet::bouquet_endgame;
use crate::knowledge::Knowledge;
use crate::runtime::RobustRuntime;
use crate::spillbound::{contour_choice, state_key, StateKey};
use crate::trace::{DiscoveryTrace, PlanRef};
use crate::Discovery;
use parking_lot::Mutex;
use rqp_catalog::EppId;
use rqp_ess::{Cell, PlanId};
use rqp_qplan::pipeline::spill_target;
use rqp_qplan::{Fingerprint, PlanNode};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// All set partitions of `items` (Bell number; ≤ 203 for 6 items).
pub(crate) fn partitions<T: Copy>(items: &[T]) -> Vec<Vec<Vec<T>>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let first = items[0];
    let rest = partitions(&items[1..]);
    let mut out = Vec::new();
    for p in rest {
        // put `first` into each existing block
        for k in 0..p.len() {
            let mut q = p.clone();
            q[k].insert(0, first);
            out.push(q);
        }
        // or into a new block
        let mut q = p;
        q.insert(0, vec![first]);
        out.push(q);
    }
    out
}

/// One spill execution chosen for a contour.
#[derive(Clone)]
struct PartExec {
    /// Leader dimension learnt by this execution.
    dim: EppId,
    /// Plan reference for the trace.
    plan_ref: PlanRef,
    /// The plan tree to execute.
    node: Arc<PlanNode>,
    /// Assigned budget (cost of the plan at its reference cell).
    budget: f64,
    /// Reference cell supplying the spill-learning location.
    reference: Cell,
}

/// The per-contour decision: the ordered executions plus bookkeeping.
struct ContourDecision {
    execs: Vec<PartExec>,
    /// Total replacement penalty of the chosen partition (1.0 per natively
    /// aligned part).
    total_penalty: f64,
    /// Largest single-part replacement penalty in the chosen partition
    /// (the quantity Table 4 reports).
    max_part_penalty: f64,
    /// Whether the SpillBound fallback was taken.
    fallback: bool,
}

/// The cheapest plan spilling on `dim` over the candidate cells: searches
/// the POSP pool visible at the discovery band and asks the optimizer for
/// a purpose-built plan (the §6.1 engine extension). Returns
/// `(plan_ref, node, cell, cost)`.
fn cheapest_spilling_plan(
    rt: &RobustRuntime<'_>,
    cells: &[Cell],
    band: usize,
    dim: EppId,
    unlearnt: &BTreeSet<EppId>,
) -> Option<(PlanRef, Arc<PlanNode>, Cell, f64)> {
    if cells.is_empty() {
        return None;
    }
    // deterministic cap on the candidate cells
    let capped: Vec<Cell> = if cells.len() <= 48 {
        cells.to_vec()
    } else {
        let stride = cells.len().div_ceil(48);
        cells.iter().copied().step_by(stride).collect()
    };

    let mut best: Option<(PlanRef, Arc<PlanNode>, Cell, f64)> = None;
    // pool: plans the surface assigns on contours up to the discovery
    // band, ordered by structural fingerprint. Both bounds keep the
    // candidate set surface-independent: a lazy surface has compiled
    // nothing above `band` (peeking higher would force the compile this
    // crate exists to avoid), and plan ids are surface-relative (eager
    // numbers plans in cell-index order, lazy in flood order), so id
    // order would resolve equal-cost ties differently per surface.
    let mut ids: BTreeSet<PlanId> = BTreeSet::new();
    for b in 0..=band.min(rt.num_bands().saturating_sub(1)) {
        for &cell in rt.band_cells(b).iter() {
            ids.insert(rt.plan_id_at(cell));
        }
    }
    let mut pool: Vec<(PlanId, Arc<PlanNode>)> = ids
        .into_iter()
        .map(|id| (id, rt.plan(id)))
        .filter(|(_, p)| spill_target(p, rt.query, unlearnt) == Some(dim))
        .collect();
    pool.sort_by_key(|(_, p)| Fingerprint::of(p));
    for &cell in &capped {
        for (id, node) in &pool {
            let cost = rt.plan_cost_at(*id, cell);
            if best.as_ref().is_none_or(|b| cost < b.3) {
                best = Some((PlanRef::Posp(*id), Arc::clone(node), cell, cost));
            }
        }
    }
    // bespoke candidate from the spill-constrained optimizer at the
    // currently-cheapest cell (or the first candidate cell)
    let probe_cell = best.as_ref().map_or(capped[0], |b| b.2);
    let loc = rt.grid().location(probe_cell);
    if let Some(planned) = rt.optimizer.optimize_spilling_on(&loc, dim, unlearnt) {
        if best.as_ref().is_none_or(|b| planned.cost < b.3) {
            let node = Arc::new(planned.plan);
            best = Some((PlanRef::Bespoke(Arc::clone(&node)), node, probe_cell, planned.cost));
        }
    }
    best
}

/// The AlignedBound algorithm.
pub struct AlignedBound {
    cache: Mutex<HashMap<StateKey, Arc<ContourDecision>>>,
}

impl AlignedBound {
    /// Create the algorithm.
    pub fn new() -> Self {
        AlignedBound { cache: Mutex::new(HashMap::new()) }
    }

    /// Largest single-part replacement penalty across all contour decisions
    /// taken so far (Table 4's "max penalty for AB"). Call after running
    /// [`Discovery::discover`] / `evaluate` with this instance.
    pub fn max_part_penalty_seen(&self) -> f64 {
        self.cache.lock().values().map(|d| d.max_part_penalty).fold(1.0, f64::max)
    }

    /// Largest *partition-total* penalty (sum over parts) across all
    /// contour decisions taken so far — AB's worst per-contour expenditure
    /// in contour-cost units.
    pub fn max_partition_penalty_seen(&self) -> f64 {
        self.cache.lock().values().map(|d| d.total_penalty).fold(0.0, f64::max)
    }

    /// Fraction of contour decisions that fell back to the SpillBound
    /// procedure because inducing alignment was too expensive.
    pub fn fallback_fraction(&self) -> f64 {
        let cache = self.cache.lock();
        if cache.is_empty() {
            return 0.0;
        }
        cache.values().filter(|d| d.fallback).count() as f64 / cache.len() as f64
    }

    /// Compute (or fetch) the contour decision for the current state.
    fn decision(
        &self,
        rt: &RobustRuntime<'_>,
        band: usize,
        know: &Knowledge,
        unlearnt: &BTreeSet<EppId>,
    ) -> Arc<ContourDecision> {
        let key = state_key(rt, band, know);
        if let Some(d) = self.cache.lock().get(&key) {
            return Arc::clone(d);
        }
        let d = Arc::new(compute_decision(rt, band, know, unlearnt));
        self.cache.lock().insert(key, Arc::clone(&d));
        d
    }
}

impl Default for AlignedBound {
    fn default() -> Self {
        AlignedBound::new()
    }
}

/// Build the minimum-penalty partition decision for one contour.
fn compute_decision(
    rt: &RobustRuntime<'_>,
    band: usize,
    know: &Knowledge,
    unlearnt: &BTreeSet<EppId>,
) -> ContourDecision {
    let grid = rt.grid();
    let dims = grid.dims();

    // effective cells with their spill dimensions
    let mut spill_cells: Vec<(Cell, usize)> = Vec::new();
    for &cell in rt.band_cells(band).iter() {
        if !know.matches_exact(grid, cell) {
            continue;
        }
        let plan = rt.plan(rt.plan_id_at(cell));
        if let Some(j) = spill_target(&plan, rt.query, unlearnt) {
            spill_cells.push((cell, j.0));
        }
    }
    if spill_cells.is_empty() {
        return ContourDecision {
            execs: Vec::new(),
            total_penalty: 0.0,
            max_part_penalty: 1.0,
            fallback: false,
        };
    }

    // M[s][j]: max grid coordinate along j among cells spilling on s
    let mut max_coord: Vec<Vec<Option<usize>>> = vec![vec![None; dims]; dims];
    for &(cell, s) in &spill_cells {
        for (j, e) in max_coord[s].iter_mut().enumerate() {
            let c = grid.coord(cell, j);
            if e.is_none_or(|v| c > v) {
                *e = Some(c);
            }
        }
    }
    let present: Vec<EppId> = (0..dims).filter(|&d| max_coord[d][d].is_some()).map(EppId).collect();

    // SpillBound's per-dimension choice, reused for native parts and the
    // fallback
    let sb_choice = contour_choice(rt, band, know, unlearnt);

    // evaluate every partition of the present dimensions
    let mut best: Option<(f64, f64, Vec<PartExec>)> = None;
    for partition in partitions(&present) {
        let mut execs = Vec::new();
        let mut penalty_total = 0.0;
        let mut penalty_max = 1.0f64;
        let mut feasible = true;
        for part in &partition {
            let mut part_best: Option<(f64, PartExec)> = None;
            for &leader in part {
                let j = leader.0;
                // qTj: extreme coordinate along j among cells spilling on
                // any dimension of the part
                let Some(q_t_j) = part.iter().filter_map(|t| max_coord[t.0][j]).max() else {
                    debug_assert!(false, "part dims must be present");
                    continue;
                };
                let Some(native_max) = max_coord[j][j] else {
                    debug_assert!(false, "leader dim {j} must be present");
                    continue;
                };
                let (penalty, exec) = if q_t_j <= native_max {
                    // natively aligned: SpillBound's P^j_max covers the part
                    let Some((cell, plan_id)) = sb_choice.per_dim[j] else {
                        debug_assert!(false, "present dim {j} must have a choice");
                        continue;
                    };
                    let budget = rt.oracle_cost(cell);
                    rt.debug_check_band_budget(band, budget);
                    (
                        1.0,
                        PartExec {
                            dim: leader,
                            plan_ref: PlanRef::Posp(plan_id),
                            node: rt.plan(plan_id),
                            budget,
                            reference: cell,
                        },
                    )
                } else {
                    // induce: replace the optimal plan at a location with
                    // coordinate qTj along j by a j-spilling plan
                    let s_cells: Vec<Cell> = spill_cells
                        .iter()
                        .filter(|&&(c, _)| grid.coord(c, j) == q_t_j)
                        .map(|&(c, _)| c)
                        .collect();
                    match cheapest_spilling_plan(rt, &s_cells, band, leader, unlearnt) {
                        None => continue,
                        Some((plan_ref, node, cell, cost)) => {
                            let penalty = cost / rt.oracle_cost(cell);
                            (
                                penalty.max(1.0),
                                PartExec {
                                    dim: leader,
                                    plan_ref,
                                    node,
                                    budget: cost,
                                    reference: cell,
                                },
                            )
                        }
                    }
                };
                if part_best.as_ref().is_none_or(|b| penalty < b.0) {
                    part_best = Some((penalty, exec));
                }
            }
            match part_best {
                None => {
                    feasible = false;
                    break;
                }
                Some((p, exec)) => {
                    penalty_total += p;
                    penalty_max = penalty_max.max(p);
                    execs.push(exec);
                }
            }
        }
        if feasible && best.as_ref().is_none_or(|b| penalty_total < b.0 - 1e-12) {
            best = Some((penalty_total, penalty_max, execs));
        }
    }

    // SpillBound's own per-dimension procedure: the quadratic-guarantee
    // fallback, and the degradation path should no partition be feasible
    // (debug builds treat the latter as unreachable — the singleton
    // partition is always feasible).
    let spillbound_fallback = || -> ContourDecision {
        let execs = present
            .iter()
            .filter_map(|&j| {
                sb_choice.per_dim[j.0].map(|(cell, plan_id)| PartExec {
                    dim: j,
                    plan_ref: PlanRef::Posp(plan_id),
                    node: rt.plan(plan_id),
                    budget: rt.oracle_cost(cell),
                    reference: cell,
                })
            })
            .collect();
        ContourDecision {
            execs,
            total_penalty: present.len() as f64,
            max_part_penalty: 1.0,
            fallback: true,
        }
    };

    let Some((total_penalty, max_part_penalty, execs)) = best else {
        debug_assert!(false, "singleton partition is always feasible");
        return spillbound_fallback();
    };

    // retain the quadratic guarantee: if inducing alignment costs more than
    // SpillBound's |present| executions would, run SpillBound's procedure
    if total_penalty > present.len() as f64 + 1e-9 {
        return spillbound_fallback();
    }
    ContourDecision { execs, total_penalty, max_part_penalty, fallback: false }
}

impl Discovery for AlignedBound {
    fn name(&self) -> &'static str {
        "AB"
    }

    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace {
        let grid = rt.grid();
        let qa_loc = grid.location(qa);
        let band_hist = crate::obs::band_histogram(self.name());
        let m = rt.num_bands();
        let mut sup = rt.supervisor(self.name());
        let mut know = Knowledge::new(grid);
        let mut steps = Vec::new();
        let mut total = 0.0;
        let mut band = 0usize;
        let tracer = rqp_obs::current();

        loop {
            // keep the next contour flooding while this one executes
            rt.prefetch_band(band + 1);
            let mut band_span = tracer
                .span(rqp_obs::names::SPAN_CONTOUR_BAND, rqp_obs::SpanKind::Contour)
                .with_histogram(&band_hist);
            band_span.attr("band", band as u64);
            let _band_span = band_span;
            let unlearnt = know.unlearnt();
            if unlearnt.len() <= 1 || band >= m {
                bouquet_endgame(
                    rt,
                    &know,
                    band.min(m - 1),
                    qa,
                    &qa_loc,
                    &mut sup,
                    &mut steps,
                    &mut total,
                );
                break;
            }
            let decision = self.decision(rt, band, &know, &unlearnt);
            let mut learnt_exact = false;
            for exec in &decision.execs {
                // graceful degradation: a quarantined aligned (possibly
                // induced) plan is replaced by SpillBound's surrogate
                // choice for the same dimension, retaining the quadratic
                // guarantee's execution shape
                let mut plan_ref = exec.plan_ref.clone();
                let mut node = Arc::clone(&exec.node);
                let mut budget = exec.budget;
                let mut ref_cell = exec.reference;
                if sup.is_quarantined(&node) {
                    let sb = contour_choice(rt, band, &know, &unlearnt);
                    if let Some((cell, plan_id)) = sb.per_dim[exec.dim.0] {
                        let surrogate = rt.plan(plan_id);
                        if !sup.is_quarantined(&surrogate) {
                            plan_ref = PlanRef::Posp(plan_id);
                            node = surrogate;
                            budget = rt.oracle_cost(cell);
                            ref_cell = cell;
                        }
                    }
                }
                let reference = grid.location(ref_cell);
                let out = sup.execute_spill(
                    &rt.engine, &node, &plan_ref, band, exec.dim, &reference, &qa_loc, budget,
                    false, &mut total, &mut steps,
                );
                if out.learned.is_exact() {
                    know.learn_exact(exec.dim, out.learned.value());
                    learnt_exact = true;
                    break;
                } else {
                    know.learn_bound(exec.dim, out.learned.value());
                }
            }
            if !learnt_exact {
                // half-space pruning: qa lies beyond this contour
                crate::obs::half_space_prune(self.name(), band, unlearnt.len());
                band += 1;
            }
        }

        let trace = DiscoveryTrace {
            algo: self.name(),
            qa,
            steps,
            total_cost: total,
            oracle_cost: rt.oracle_cost(qa),
            failure: None,
            quarantined: sup.quarantined(),
        };
        crate::obs::record_trace(&trace);
        trace
    }
}

/// Per-contour full-contour-alignment statistics (the machinery behind
/// Table 2 and Table 4).
#[derive(Debug, Clone)]
pub struct AlignmentStats {
    /// For each non-empty contour: the minimum penalty at which it can be
    /// made aligned along some dimension (1.0 = natively aligned;
    /// `f64::INFINITY` = no replacement plan exists).
    pub per_contour_penalty: Vec<f64>,
}

impl AlignmentStats {
    /// Percentage of contours aligned when replacement penalty is capped at
    /// `threshold` (threshold 1.0 ⇒ native alignment only).
    pub fn pct_within(&self, threshold: f64) -> f64 {
        if self.per_contour_penalty.is_empty() {
            return 0.0;
        }
        let n =
            self.per_contour_penalty.iter().filter(|&&p| p <= threshold * (1.0 + 1e-12)).count();
        100.0 * n as f64 / self.per_contour_penalty.len() as f64
    }

    /// Minimum penalty at which *all* contours satisfy alignment (the
    /// "Max λ" column of Table 2).
    pub fn max_penalty(&self) -> f64 {
        self.per_contour_penalty.iter().copied().fold(1.0, f64::max)
    }
}

/// Compute full-contour-alignment statistics in the initial state (all epps
/// unlearnt), as Table 2 does.
pub fn alignment_stats(rt: &RobustRuntime<'_>) -> AlignmentStats {
    let grid = rt.grid();
    let dims = grid.dims();
    let know = Knowledge::new(grid);
    let unlearnt = know.unlearnt();
    let mut per_contour_penalty = Vec::new();

    for band in 0..rt.num_bands() {
        let cells = rt.band_cells(band);
        if cells.is_empty() {
            continue;
        }
        // spill dimension per cell plus extremes
        let mut ext = vec![0usize; dims];
        let mut spill_max = vec![None::<usize>; dims];
        let mut spill_dim_of: Vec<(Cell, usize)> = Vec::with_capacity(cells.len());
        for &cell in cells.iter() {
            let plan = rt.plan(rt.plan_id_at(cell));
            let sj = spill_target(&plan, rt.query, &unlearnt).map(|e| e.0);
            for (j, e) in ext.iter_mut().enumerate() {
                let c = grid.coord(cell, j);
                if c > *e {
                    *e = c;
                }
            }
            if let Some(s) = sj {
                let c = grid.coord(cell, s);
                let e = &mut spill_max[s];
                if e.is_none_or(|v| c > v) {
                    *e = Some(c);
                }
                spill_dim_of.push((cell, s));
            }
        }
        if spill_dim_of.is_empty() {
            continue;
        }
        let mut penalty = f64::INFINITY;
        for j in 0..dims {
            if spill_max[j] == Some(ext[j]) {
                penalty = 1.0; // natively aligned along j
                break;
            }
            // induction cost along j: replace the optimal plan at an
            // extreme location with a j-spilling plan
            let extreme_cells: Vec<Cell> =
                cells.iter().copied().filter(|&c| grid.coord(c, j) == ext[j]).collect();
            if let Some((_, _, cell, cost)) =
                cheapest_spilling_plan(rt, &extreme_cells, band, EppId(j), &unlearnt)
            {
                penalty = penalty.min((cost / rt.oracle_cost(cell)).max(1.0));
            }
        }
        per_contour_penalty.push(penalty);
    }
    AlignmentStats { per_contour_penalty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::guarantees::sb_guarantee;
    use crate::spillbound::SpillBound;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 12, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn partition_enumeration_matches_bell_numbers() {
        assert_eq!(partitions(&[1]).len(), 1);
        assert_eq!(partitions(&[1, 2]).len(), 2);
        assert_eq!(partitions(&[1, 2, 3]).len(), 5);
        assert_eq!(partitions(&[1, 2, 3, 4]).len(), 15);
        assert_eq!(partitions(&[1, 2, 3, 4, 5]).len(), 52);
        assert_eq!(partitions(&[1, 2, 3, 4, 5, 6]).len(), 203);
        // every partition covers the set exactly
        for p in partitions(&[1, 2, 3, 4]) {
            let mut all: Vec<i32> = p.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn completes_everywhere_within_band_adjusted_guarantee() {
        let rt = runtime();
        let ab = AlignedBound::new();
        let bound = 2.0 * sb_guarantee(rt.dims());
        for qa in rt.grid().cells() {
            let t = ab.discover(&rt, qa);
            assert!(t.subopt() >= 1.0 - 1e-9, "cell {qa}");
            assert!(t.subopt() <= bound + 1e-9, "cell {qa}: subopt {} exceeds {bound}", t.subopt());
            assert!(t.steps.last().unwrap().completed);
        }
    }

    #[test]
    fn ab_no_worse_than_sb_on_mso_here() {
        let rt = runtime();
        let sb = evaluate(&rt, &SpillBound::new());
        let ab = evaluate(&rt, &AlignedBound::new());
        // AB exploits alignment; on this workload it should be at least
        // competitive with SB on empirical MSO
        assert!(
            ab.mso <= sb.mso * 1.25 + 1e-9,
            "AB MSOe {} much worse than SB MSOe {}",
            ab.mso,
            sb.mso
        );
    }

    #[test]
    fn alignment_stats_are_well_formed() {
        let rt = runtime();
        let stats = alignment_stats(&rt);
        assert!(!stats.per_contour_penalty.is_empty());
        for &p in &stats.per_contour_penalty {
            assert!(p >= 1.0, "penalty below 1: {p}");
        }
        let native = stats.pct_within(1.0);
        let loose = stats.pct_within(1e9);
        assert!(native <= loose);
        assert!((0.0..=100.0).contains(&native));
        assert!(stats.max_penalty() >= 1.0);
    }
}
