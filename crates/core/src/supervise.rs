//! Supervised execution: bounded retries with budget-doubling backoff and
//! per-plan quarantine, the recovery layer between the discovery
//! algorithms and a fault-prone engine.
//!
//! Every execution a discovery algorithm issues goes through a
//! [`Supervisor`]. On a clean substrate the supervisor is invisible: one
//! attempt, one [`Step`], identical accounting. When the engine carries a
//! fault injector (see `rqp-chaos`), executions can come back
//! [`failed`](rqp_executor::ExecOutcome::failed); the supervisor then
//!
//! 1. charges the sunk work against the running MSO accounting (wasted
//!    work is never hidden — every attempt becomes a trace [`Step`]),
//! 2. retries up to [`RetryPolicy::max_retries`] times, multiplying the
//!    budget by [`RetryPolicy::backoff`] each time (a crashed execution
//!    gets more room so a transient fault cannot starve it forever),
//! 3. quarantines a plan for the rest of the run once it has failed
//!    [`RetryPolicy::quarantine_after`] times in total, and
//! 4. for spill executions — whose learning the contour walk cannot
//!    progress without — falls back to one *last-resort* execution on the
//!    injector-free engine, which is guaranteed sound.
//!
//! The degraded MSO bound this implies is the clean bound times
//! [`RetryPolicy::degraded_factor`]: each logical execution can burn at
//! most `Σ_{i=0..R} backoff^i` budgets across attempts plus one clean
//! budget for the last resort.

use crate::trace::{ExecMode, PlanRef, Step};
use rqp_catalog::{EppId, SelVector};
use rqp_executor::{Engine, ExecOutcome, SpillOutcome};
use rqp_obs::{names as obs_names, Deadline, SpanKind};
use rqp_qplan::{Fingerprint, PlanNode};
use std::collections::{BTreeSet, HashMap};

/// Bounded-retry policy for supervised executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per logical execution after the first attempt fails.
    pub max_retries: u32,
    /// Budget multiplier applied on each retry (≥ 1; 2.0 mirrors the
    /// contour cost-doubling discipline).
    pub backoff: f64,
    /// Total failures after which a plan is quarantined for the run.
    pub quarantine_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff: 2.0, quarantine_after: 3 }
    }
}

impl RetryPolicy {
    /// Worst-case charge multiplier per logical execution relative to its
    /// clean budget: `Σ_{i=0..max_retries} backoff^i` for the supervised
    /// attempts, plus one clean budget for a possible last-resort
    /// execution. Multiply a clean MSO bound by this factor to get the
    /// degraded bound the chaos harness asserts.
    pub fn degraded_factor(&self) -> f64 {
        let mut sum = 0.0;
        let mut b = 1.0;
        for _ in 0..=self.max_retries {
            sum += b;
            b *= self.backoff;
        }
        sum + 1.0
    }
}

/// Run statistics the supervisor accumulates for one discovery run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SupervisorStats {
    /// Retried executions (beyond first attempts).
    pub retries: u32,
    /// Plans quarantined during the run.
    pub quarantines: u32,
    /// Last-resort clean executions after retries ran dry.
    pub last_resort: u32,
    /// Full executions abandoned (caller degraded to the next plan).
    pub gave_up: u32,
    /// Retries skipped because the session deadline had already lapsed
    /// (the run winds down on first attempts and last resorts only).
    pub deadline_stops: u32,
}

/// Per-run supervision state: retry bookkeeping and the quarantine set.
///
/// One supervisor lives for one `discover` call; quarantine is therefore
/// scoped to a run, matching the paper's per-query discovery model (a
/// plan that misbehaves for this instance may be fine for the next).
pub struct Supervisor {
    algo: &'static str,
    policy: RetryPolicy,
    /// Session deadline: once lapsed, the supervisor stops spending the
    /// retry budget (first attempts and last resorts still run, so every
    /// discovery run terminates with honest accounting). The default
    /// [`Deadline::none`] never lapses — single-session behavior is
    /// byte-identical.
    deadline: Deadline,
    /// The discovery run's causal tracer (the thread's current tracer at
    /// construction; disabled outside traced serve sessions).
    tracer: rqp_obs::Tracer,
    /// Total failures per plan fingerprint.
    fails: HashMap<u64, u32>,
    /// Fingerprints banned for the rest of the run.
    quarantined: BTreeSet<u64>,
    /// Accumulated run statistics.
    pub stats: SupervisorStats,
}

impl Supervisor {
    /// A fresh supervisor for one discovery run.
    pub fn new(algo: &'static str, policy: RetryPolicy) -> Self {
        Supervisor {
            algo,
            policy,
            deadline: Deadline::none(),
            tracer: rqp_obs::current(),
            fails: HashMap::new(),
            quarantined: BTreeSet::new(),
            stats: SupervisorStats::default(),
        }
    }

    /// Bound this run by a session deadline (serving tier): after it
    /// lapses, retries are skipped — each logical execution still gets its
    /// first attempt (and spills their last resort) so the trace stays
    /// complete, but no backoff-doubled budget is burned past the wall.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The policy in force.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Whether the session deadline has lapsed (always `false` for the
    /// default unbounded supervisor).
    fn winding_down(&mut self) -> bool {
        if self.deadline.expired() {
            self.stats.deadline_stops += 1;
            crate::obs::deadline_stop(self.algo);
            return true;
        }
        false
    }

    /// Whether `plan` is quarantined for the rest of this run.
    pub fn is_quarantined(&self, plan: &PlanNode) -> bool {
        self.quarantined.contains(&Fingerprint::of(plan).0)
    }

    /// Fingerprints of all quarantined plans (for the trace and the ESS
    /// snapshot).
    pub fn quarantined(&self) -> Vec<u64> {
        self.quarantined.iter().copied().collect()
    }

    /// Sunk work is real work, but an injector-corrupted expenditure must
    /// never poison the accounting: clamp to a finite non-negative charge.
    fn sanitize(spent: f64) -> f64 {
        if spent.is_finite() && spent >= 0.0 {
            spent
        } else {
            0.0
        }
    }

    /// Record one failure of `fp`, quarantining the plan at the threshold.
    fn record_failure(&mut self, fp: u64) {
        let n = self.fails.entry(fp).or_insert(0);
        *n += 1;
        if *n >= self.policy.quarantine_after && self.quarantined.insert(fp) {
            self.stats.quarantines += 1;
            crate::obs::plan_quarantined(self.algo, fp);
        }
    }

    /// A full (non-spill) budgeted execution under supervision.
    ///
    /// Pushes one [`Step`] per attempt and charges every attempt's sunk
    /// work into `total`. Returns the final non-failed outcome, or `None`
    /// when the plan is quarantined or retries ran dry — the caller then
    /// degrades (PlanBouquet falls through to the next contour plan).
    #[allow(clippy::too_many_arguments)]
    pub fn execute_full(
        &mut self,
        engine: &Engine<'_>,
        plan: &PlanNode,
        plan_ref: &PlanRef,
        band: usize,
        qa_loc: &SelVector,
        budget: f64,
        total: &mut f64,
        steps: &mut Vec<Step>,
    ) -> Option<ExecOutcome> {
        let fp = Fingerprint::of(plan).0;
        if self.quarantined.contains(&fp) {
            return None;
        }
        let mut step_span = self.tracer.span(obs_names::SPAN_DISCOVERY_STEP, SpanKind::Step);
        step_span.attr("band", band as u64);
        step_span.attr("mode", "full");
        let mut b = budget;
        for attempt in 0..=self.policy.max_retries {
            let mut exec_span = self.tracer.span(obs_names::SPAN_EXECUTION, SpanKind::Execution);
            let out = engine.execute_budgeted(plan, qa_loc, b);
            let spent = Self::sanitize(out.spent());
            *total += spent;
            let faulted = out.failed();
            exec_span.attr("band", band as u64);
            exec_span.attr("attempt", attempt as u64);
            exec_span.attr("budget", b);
            exec_span.attr("spent", spent);
            exec_span.attr("completed", out.completed());
            exec_span.attr("faulted", faulted);
            drop(exec_span);
            steps.push(Step {
                band,
                plan: plan_ref.clone(),
                mode: ExecMode::Full,
                budget: b,
                spent,
                completed: out.completed(),
                learned: None,
                attempt,
                faulted,
            });
            if !faulted {
                return Some(out);
            }
            self.record_failure(fp);
            if self.quarantined.contains(&fp) {
                break;
            }
            if attempt < self.policy.max_retries {
                if self.winding_down() {
                    break;
                }
                self.stats.retries += 1;
                crate::obs::supervisor_retry(self.algo, attempt + 1, b);
                b *= self.policy.backoff;
            }
        }
        self.stats.gave_up += 1;
        None
    }

    /// The terminal safety net's execution: run `plan` with an unbounded
    /// budget on the injector-free engine. No fault can strike it and an
    /// unbounded budget cannot expire, so the pushed [`Step`] is always
    /// completed — discovery is guaranteed to terminate with a result.
    #[allow(clippy::too_many_arguments)]
    pub fn finish_clean(
        &mut self,
        engine: &Engine<'_>,
        plan: &PlanNode,
        plan_ref: &PlanRef,
        band: usize,
        qa_loc: &SelVector,
        total: &mut f64,
        steps: &mut Vec<Step>,
    ) {
        self.stats.last_resort += 1;
        crate::obs::last_resort(self.algo);
        let mut step_span = self.tracer.span(obs_names::SPAN_DISCOVERY_STEP, SpanKind::Step);
        step_span.attr("band", band as u64);
        step_span.attr("mode", "last_resort");
        let mut exec_span = self.tracer.span(obs_names::SPAN_EXECUTION, SpanKind::Execution);
        let out = engine.without_injector().execute_budgeted(plan, qa_loc, f64::INFINITY);
        let spent = Self::sanitize(out.spent());
        *total += spent;
        exec_span.attr("band", band as u64);
        exec_span.attr("attempt", (self.policy.max_retries + 1) as u64);
        exec_span.attr("spent", spent);
        exec_span.attr("completed", true);
        exec_span.attr("faulted", false);
        drop(exec_span);
        steps.push(Step {
            band,
            plan: plan_ref.clone(),
            mode: ExecMode::Full,
            budget: f64::INFINITY,
            spent,
            completed: true,
            learned: None,
            attempt: self.policy.max_retries + 1,
            faulted: false,
        });
    }

    /// A spill-mode execution under supervision.
    ///
    /// The contour walk cannot make quantum progress without a sound
    /// observation, so this never gives up: after retries run dry (or
    /// immediately, for an already-quarantined plan) a last-resort clean
    /// execution on the injector-free engine supplies one. The returned
    /// outcome therefore always has `failed == false` and its `learned`
    /// is safe to feed into [`crate::knowledge::Knowledge`].
    #[allow(clippy::too_many_arguments)]
    pub fn execute_spill(
        &mut self,
        engine: &Engine<'_>,
        plan: &PlanNode,
        plan_ref: &PlanRef,
        band: usize,
        epp: EppId,
        reference: &SelVector,
        qa_loc: &SelVector,
        budget: f64,
        refine: bool,
        total: &mut f64,
        steps: &mut Vec<Step>,
    ) -> SpillOutcome {
        let fp = Fingerprint::of(plan).0;
        let run = |eng: &Engine<'_>, b: f64| {
            if refine {
                eng.execute_spill(plan, epp, reference, qa_loc, b)
            } else {
                eng.execute_spill_coarse(plan, epp, reference, qa_loc, b)
            }
        };
        let mut step_span = self.tracer.span(obs_names::SPAN_DISCOVERY_STEP, SpanKind::Step);
        step_span.attr("band", band as u64);
        step_span.attr("mode", "spill");
        step_span.attr("epp", epp.0 as u64);
        let mut b = budget;
        // A lapsed deadline routes straight to the last-resort clean
        // execution below: one sound observation, no budgeted retries.
        if !self.quarantined.contains(&fp) && !self.winding_down() {
            for attempt in 0..=self.policy.max_retries {
                let mut exec_span =
                    self.tracer.span(obs_names::SPAN_EXECUTION, SpanKind::Execution);
                let out = run(engine, b);
                let spent = Self::sanitize(out.spent);
                *total += spent;
                exec_span.attr("band", band as u64);
                exec_span.attr("attempt", attempt as u64);
                exec_span.attr("budget", b);
                exec_span.attr("spent", spent);
                exec_span.attr("completed", !out.failed && out.learned.is_exact());
                exec_span.attr("faulted", out.failed);
                drop(exec_span);
                if !out.failed {
                    let exact = out.learned.is_exact();
                    steps.push(Step {
                        band,
                        plan: plan_ref.clone(),
                        mode: ExecMode::Spill(epp),
                        budget: b,
                        spent,
                        completed: exact,
                        learned: Some((epp, out.learned.value(), exact)),
                        attempt,
                        faulted: false,
                    });
                    return out;
                }
                steps.push(Step {
                    band,
                    plan: plan_ref.clone(),
                    mode: ExecMode::Spill(epp),
                    budget: b,
                    spent,
                    completed: false,
                    learned: None,
                    attempt,
                    faulted: true,
                });
                self.record_failure(fp);
                if self.quarantined.contains(&fp) {
                    break;
                }
                if attempt < self.policy.max_retries {
                    if self.winding_down() {
                        break;
                    }
                    self.stats.retries += 1;
                    crate::obs::supervisor_retry(self.algo, attempt + 1, b);
                    b *= self.policy.backoff;
                }
            }
        }
        // last resort: the clean engine at the base budget, guaranteed
        // sound (no injector, so `failed` cannot be set)
        self.stats.last_resort += 1;
        crate::obs::last_resort(self.algo);
        let mut exec_span = self.tracer.span(obs_names::SPAN_EXECUTION, SpanKind::Execution);
        let out = run(&engine.without_injector(), budget);
        let spent = Self::sanitize(out.spent);
        *total += spent;
        let exact = out.learned.is_exact();
        exec_span.attr("band", band as u64);
        exec_span.attr("attempt", (self.policy.max_retries + 1) as u64);
        exec_span.attr("budget", budget);
        exec_span.attr("spent", spent);
        exec_span.attr("completed", exact);
        exec_span.attr("faulted", false);
        drop(exec_span);
        steps.push(Step {
            band,
            plan: plan_ref.clone(),
            mode: ExecMode::Spill(epp),
            budget,
            spent,
            completed: exact,
            learned: Some((epp, out.learned.value(), exact)),
            attempt: self.policy.max_retries + 1,
            faulted: false,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_factor_is_geometric_plus_last_resort() {
        let p = RetryPolicy { max_retries: 2, backoff: 2.0, quarantine_after: 3 };
        // 1 + 2 + 4 attempts + 1 last resort
        assert!((p.degraded_factor() - 8.0).abs() < 1e-12);
        let none = RetryPolicy { max_retries: 0, backoff: 2.0, quarantine_after: 1 };
        assert!((none.degraded_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quarantine_trips_at_the_threshold() {
        let mut sup =
            Supervisor::new("test", RetryPolicy { quarantine_after: 2, ..Default::default() });
        sup.record_failure(42);
        assert!(sup.quarantined().is_empty());
        sup.record_failure(42);
        assert_eq!(sup.quarantined(), vec![42]);
        assert_eq!(sup.stats.quarantines, 1);
        // repeated failures do not double-count the quarantine
        sup.record_failure(42);
        assert_eq!(sup.stats.quarantines, 1);
    }

    #[test]
    fn a_lapsed_deadline_winds_the_supervisor_down() {
        // `core::time::Duration`, not `std::time`: this crate is under the
        // determinism lint; the wall-clock read happens inside rqp_obs.
        let mut sup = Supervisor::new("test", RetryPolicy::default())
            .with_deadline(Deadline::within(core::time::Duration::ZERO));
        assert!(sup.winding_down(), "a zero-window deadline lapses immediately");
        assert_eq!(sup.stats.deadline_stops, 1);
        // The default supervisor is unbounded: it never winds down.
        let mut unbounded = Supervisor::new("test", RetryPolicy::default());
        assert!(!unbounded.winding_down());
        assert_eq!(unbounded.stats.deadline_stops, 0);
    }

    #[test]
    fn sanitize_clamps_corrupt_expenditure() {
        assert_eq!(Supervisor::sanitize(3.5), 3.5);
        assert_eq!(Supervisor::sanitize(f64::NAN), 0.0);
        assert_eq!(Supervisor::sanitize(f64::INFINITY), 0.0);
        assert_eq!(Supervisor::sanitize(-1.0), 0.0);
    }
}
