//! The PlanBouquet baseline (Dutt & Haritsa, TODS 2016) and the shared
//! 1-D "endgame" used by SpillBound and AlignedBound.
//!
//! PlanBouquet walks the doubling iso-cost contours from the cheapest
//! upward; on each contour it executes *every* contour plan under the
//! contour budget, discarding partial results on expiry, until some plan
//! completes (§1.1). Its guarantee is `MSO ≤ 4(1+λ)·ρ_red`, where `ρ_red`
//! is the maximum contour plan-density after anorexic reduction — a
//! *behavioural* bound that depends on the optimizer and platform.

use crate::knowledge::Knowledge;
use crate::runtime::RobustRuntime;
use crate::trace::{DiscoveryTrace, PlanRef, Step};
use crate::Discovery;
use parking_lot::Mutex;
use rqp_catalog::RqpResult;
use rqp_ess::{anorexic_reduce, Cell, Ess, PlanId, Reduced};
use rqp_qplan::PlanNode;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-contour execution list: distinct plans with their budgets.
type BandPlans = Arc<Vec<(PlanId, f64)>>;

/// The PlanBouquet algorithm.
pub struct PlanBouquet {
    /// Optional anorexic-reduced cell→plan assignment (the paper always
    /// runs PB on the reduced diagram, λ = 0.2, §6.2). Reduction needs the
    /// whole diagram, so the materialized surface rides along: its plan-id
    /// space is the one `cell_plan` refers to.
    reduced: Option<(Arc<Ess>, Reduced)>,
    /// Lazily computed per-band plan lists, keyed by `(surface token,
    /// band)` — plan ids are surface-relative, so a list built against one
    /// runtime's surface must not serve a runtime backed by another.
    bands: Mutex<BTreeMap<(usize, usize), BandPlans>>,
}

impl PlanBouquet {
    /// PlanBouquet over the raw (unreduced) POSP diagram. On a lazy
    /// runtime, bands are compiled only as the doubling walk pulls them.
    pub fn new() -> Self {
        PlanBouquet { reduced: None, bands: Mutex::new(BTreeMap::new()) }
    }

    /// PlanBouquet over the anorexic-reduced diagram with threshold
    /// `lambda` (paper default 0.2). Reduction inspects the whole plan
    /// diagram, so this materializes the full surface up front.
    ///
    /// # Errors
    /// Propagates a lazy surface's materialization failure.
    pub fn anorexic(rt: &RobustRuntime<'_>, lambda: f64) -> RqpResult<Self> {
        let ess = rt.ess()?;
        let reduced = anorexic_reduce(&ess.posp, &rt.optimizer, lambda);
        Ok(PlanBouquet { reduced: Some((ess, reduced)), bands: Mutex::new(BTreeMap::new()) })
    }

    /// The swallowing threshold in use (0 when unreduced).
    pub fn lambda(&self) -> f64 {
        self.reduced.as_ref().map_or(0.0, |(_, r)| r.lambda)
    }

    /// The bouquet cardinality parameter of the MSO guarantee: maximum
    /// plan-density over all contours (ρ, or ρ_red when reduced).
    pub fn rho(&self, rt: &RobustRuntime<'_>) -> usize {
        match &self.reduced {
            Some((ess, r)) => ess.contours.max_density_with(&r.cell_plan),
            None => (0..rt.num_bands()).map(|b| rt.band_density(b)).max().unwrap_or(0),
        }
    }

    /// The plan tree for an execution-list id, resolved against whichever
    /// id space produced it (the reduced surface's, or the runtime's).
    fn plan_node(&self, rt: &RobustRuntime<'_>, id: PlanId) -> Arc<PlanNode> {
        match &self.reduced {
            Some((ess, _)) => Arc::clone(ess.posp.plan(id)),
            None => rt.plan(id),
        }
    }

    /// Distinct plans on a band with their budgets: the budget of plan `P`
    /// is the maximum of `Cost(P, q)` over the band cells assigned to `P`
    /// (equal to the optimal cost there for the unreduced diagram).
    fn band_plans(&self, rt: &RobustRuntime<'_>, band: usize) -> BandPlans {
        let key = (rt.surface_token(), band);
        if let Some(b) = self.bands.lock().get(&key) {
            return Arc::clone(b);
        }
        let mut budgets: BTreeMap<PlanId, f64> = BTreeMap::new();
        match &self.reduced {
            Some((ess, r)) => {
                for &cell in ess.contours.cells(band) {
                    let plan = r.cell_plan[cell];
                    let cost = ess.posp.cost_of_plan_at(&rt.optimizer, plan, cell);
                    let e = budgets.entry(plan).or_insert(0.0);
                    if cost > *e {
                        *e = cost;
                    }
                }
            }
            None => {
                for &cell in rt.band_cells(band).iter() {
                    let plan = rt.plan_id_at(cell);
                    let cost = rt.oracle_cost(cell);
                    let e = budgets.entry(plan).or_insert(0.0);
                    if cost > *e {
                        *e = cost;
                    }
                }
            }
        }
        // Execute cheap probes first. Budget order is surface-independent
        // — plan ids are not (eager ids follow cell-index order, lazy ids
        // flood order), so iterating by id would make contour-wise
        // execution depend on which surface compiled the band.
        let mut list: Vec<(PlanId, f64)> = budgets.into_iter().collect();
        list.sort_by(|a, b| a.1.total_cmp(&b.1));
        let list: BandPlans = Arc::new(list);
        self.bands.lock().insert(key, Arc::clone(&list));
        list
    }
}

impl Default for PlanBouquet {
    fn default() -> Self {
        PlanBouquet::new()
    }
}

impl Discovery for PlanBouquet {
    fn name(&self) -> &'static str {
        if self.reduced.is_some() {
            "PB"
        } else {
            "PB-raw"
        }
    }

    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace {
        let qa_loc = rt.grid().location(qa);
        let band_hist = crate::obs::band_histogram(self.name());
        let mut sup = rt.supervisor(self.name());
        let mut steps = Vec::new();
        let mut total = 0.0;
        let tracer = rqp_obs::current();
        for band in 0..rt.num_bands() {
            // overlap compilation with execution: while this contour's
            // plans run, a background task floods the next band
            rt.prefetch_band(band + 1);
            let mut band_span = tracer
                .span(rqp_obs::names::SPAN_CONTOUR_BAND, rqp_obs::SpanKind::Contour)
                .with_histogram(&band_hist);
            band_span.attr("band", band as u64);
            let _band_span = band_span;
            for &(plan_id, budget) in self.band_plans(rt, band).iter() {
                let plan = self.plan_node(rt, plan_id);
                // graceful degradation: a plan whose supervision gave up
                // (or that is quarantined) falls through to the next
                // contour plan — the doubling walk absorbs the skip
                let Some(out) = sup.execute_full(
                    &rt.engine,
                    &plan,
                    &PlanRef::Posp(plan_id),
                    band,
                    &qa_loc,
                    budget,
                    &mut total,
                    &mut steps,
                ) else {
                    continue;
                };
                if out.completed() {
                    let trace = DiscoveryTrace {
                        algo: self.name(),
                        qa,
                        steps,
                        total_cost: total,
                        oracle_cost: rt.oracle_cost(qa),
                        failure: None,
                        quarantined: sup.quarantined(),
                    };
                    crate::obs::record_trace(&trace);
                    return trace;
                }
            }
        }
        // Unreachable under a perfect cost model (qa's own band plan always
        // completes); with a δ-perturbed engine (§7) actual costs can
        // overshoot every budget — or chaos can quarantine every contour
        // plan — so run the final plan to completion.
        run_to_completion(rt, None, &qa_loc, &mut sup, &mut steps, &mut total);
        let trace = DiscoveryTrace {
            algo: self.name(),
            qa,
            steps,
            total_cost: total,
            oracle_cost: rt.oracle_cost(qa),
            failure: None,
            quarantined: sup.quarantined(),
        };
        crate::obs::record_trace(&trace);
        trace
    }
}

/// Terminal safety net: execute the plan at the *effective terminus* —
/// learnt dimensions pinned to their exact values, unlearnt dimensions at
/// their maxima — with an unbounded budget (a real engine's "just finish
/// it" step). The choice uses only discovered knowledge, never `qa`. Only
/// reachable when the engine's actual costs deviate from the model (δ > 0).
pub(crate) fn run_to_completion(
    rt: &RobustRuntime<'_>,
    know: Option<&Knowledge>,
    qa_loc: &rqp_catalog::SelVector,
    sup: &mut crate::supervise::Supervisor,
    steps: &mut Vec<Step>,
    total: &mut f64,
) {
    let grid = rt.grid();
    let coords: Vec<usize> = (0..grid.dims())
        .map(|d| match know.and_then(|k| k.exact(rqp_catalog::EppId(d))) {
            Some(v) => grid.snap_ceil(d, v),
            None => grid.res(d) - 1,
        })
        .collect();
    let cell = grid.index(&coords);
    let plan_id = rt.plan_id_at(cell);
    let plan = rt.plan(plan_id);
    let band = rt.num_bands() - 1;
    let plan_ref = PlanRef::Posp(plan_id);
    // supervised attempt first (identical to the pre-chaos behaviour when
    // nothing is injected) …
    let done = sup
        .execute_full(&rt.engine, &plan, &plan_ref, band, qa_loc, f64::INFINITY, total, steps)
        .is_some_and(|out| out.completed());
    // … but the terminal safety net must finish: if supervision gave up or
    // a spurious exhaust masqueraded as an expiry, the injector-free
    // engine settles it
    if !done {
        sup.finish_clean(&rt.engine, &plan, &plan_ref, band, qa_loc, total, steps);
    }
}

/// The shared endgame: plain contour-wise PlanBouquet over the *effective
/// search space* (cells matching the exactly-learnt dimensions), starting
/// from `start_band`. Used by 2D-SpillBound's 1-D phase (§4.1: "we simply
/// invoke the standard PlanBouquet with only the [remaining] epp, starting
/// from the contour currently being explored") and its D-dimensional and
/// AlignedBound generalizations. Plans run in regular (non-spill) mode —
/// spilling in the 1-D case weakens the bound.
#[allow(clippy::too_many_arguments)]
pub(crate) fn bouquet_endgame(
    rt: &RobustRuntime<'_>,
    know: &Knowledge,
    start_band: usize,
    qa: Cell,
    qa_loc: &rqp_catalog::SelVector,
    sup: &mut crate::supervise::Supervisor,
    steps: &mut Vec<Step>,
    total: &mut f64,
) {
    let grid = rt.grid();
    for band in start_band..rt.num_bands() {
        // keep the next band flooding while this one's plans execute
        rt.prefetch_band(band + 1);
        // distinct plans on the effective slice of this band, with budgets
        let mut budgets: BTreeMap<PlanId, f64> = BTreeMap::new();
        for &cell in rt.band_cells(band).iter() {
            if !know.matches_exact(grid, cell) {
                continue;
            }
            let plan = rt.plan_id_at(cell);
            let cost = rt.oracle_cost(cell);
            let e = budgets.entry(plan).or_insert(0.0);
            if cost > *e {
                *e = cost;
            }
        }
        // ascending budget, not id order — see `band_plans`: ids are
        // surface-relative, budgets are not
        let mut plans: Vec<(PlanId, f64)> = budgets.into_iter().collect();
        plans.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (plan_id, budget) in plans {
            rt.debug_check_band_budget(band, budget);
            let plan = rt.plan(plan_id);
            // a plan whose supervision gave up falls through to the next
            // one, exactly like a budget expiry
            let Some(out) = sup.execute_full(
                &rt.engine,
                &plan,
                &PlanRef::Posp(plan_id),
                band,
                qa_loc,
                budget,
                total,
                steps,
            ) else {
                continue;
            };
            if out.completed() {
                return;
            }
        }
    }
    // only reachable with a δ-perturbed engine or under chaos; see
    // `run_to_completion`
    let _ = qa;
    run_to_completion(rt, Some(know), qa_loc, sup, steps, total);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime(
        catalog: &rqp_catalog::Catalog,
        query: &rqp_catalog::Query,
    ) -> RobustRuntime<'static> {
        // tests keep fixtures alive via Box::leak for simplicity
        let catalog: &'static _ = Box::leak(Box::new(catalog.clone()));
        let query: &'static _ = Box::leak(Box::new(query.clone()));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 12, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn completes_everywhere_with_subopt_at_least_one() {
        let (catalog, query) = example_2d();
        let rt = runtime(&catalog, &query);
        let pb = PlanBouquet::new();
        for qa in rt.grid().cells() {
            let t = pb.discover(&rt, qa);
            assert!(t.subopt() >= 1.0 - 1e-9, "cell {qa}: subopt {}", t.subopt());
            assert!(t.steps.last().unwrap().completed);
        }
    }

    #[test]
    fn never_executes_more_than_density_per_band() {
        let (catalog, query) = example_2d();
        let rt = runtime(&catalog, &query);
        let pb = PlanBouquet::new();
        let t = pb.discover(&rt, rt.grid().terminus());
        let mut per_band: BTreeMap<usize, usize> = BTreeMap::new();
        for s in &t.steps {
            *per_band.entry(s.band).or_default() += 1;
        }
        for (band, n) in per_band {
            assert!(n <= rt.band_density(band).max(1), "band {band}: {n} executions");
        }
    }

    #[test]
    fn anorexic_variant_respects_guarantee_parameters() {
        let (catalog, query) = example_2d();
        let rt = runtime(&catalog, &query);
        let raw = PlanBouquet::new();
        let red = PlanBouquet::anorexic(&rt, 0.2).unwrap();
        assert!(red.rho(&rt) <= raw.rho(&rt));
        assert_eq!(red.lambda(), 0.2);
        assert_eq!(raw.lambda(), 0.0);
        // reduced bouquet still completes everywhere
        for qa in [0, rt.grid().num_cells() / 2, rt.grid().terminus()] {
            let t = red.discover(&rt, qa);
            assert!(t.steps.last().unwrap().completed);
            assert!(t.subopt() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn expired_contour_executions_charge_the_full_budget() {
        // paper-faithful accounting (Lemma 3.1): an execution that expires
        // against its contour budget is charged the *whole* budget in the
        // trace, even though the row executor aborted mid-flight — and the
        // trace total accumulates every such charge
        let (catalog, query) = example_2d();
        let rt = runtime(&catalog, &query);
        let pb = PlanBouquet::new();
        let t = pb.discover(&rt, rt.grid().terminus());
        let expired: Vec<_> =
            t.steps.iter().filter(|s| !s.completed && s.budget.is_finite()).collect();
        assert!(!expired.is_empty(), "terminus discovery must expire some executions");
        let mut sum = 0.0;
        for s in &t.steps {
            if !s.completed && s.budget.is_finite() {
                assert!(
                    (s.spent - s.budget).abs() <= 1e-9 * s.budget,
                    "expired step charged {} against budget {}",
                    s.spent,
                    s.budget
                );
            }
            sum += s.spent;
        }
        assert!((sum - t.total_cost).abs() <= 1e-9 * t.total_cost);
        crate::invariants::check_trace_accounting(&t).unwrap();
    }

    #[test]
    fn origin_instance_is_cheap() {
        let (catalog, query) = example_2d();
        let rt = runtime(&catalog, &query);
        let pb = PlanBouquet::new();
        let t = pb.discover(&rt, rt.grid().origin());
        // qa at the origin lies on the first contour: few executions
        assert!(t.steps.len() <= rt.band_density(0));
        assert!(t.subopt() < 4.0 * rt.band_density(0) as f64);
    }
}
