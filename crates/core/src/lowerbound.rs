//! The MSO lower bound for deterministic half-space-pruning algorithms
//! (Theorem 4.6): a playable adversary argument.
//!
//! The theorem states that for every algorithm in SpillBound's class `E`
//! and every `D ≥ 2` there is a `D`-dimensional ESS on which its MSO is at
//! least `D` — so SpillBound's `D²+3D` is within an `O(D)` factor of the
//! best possible, and AlignedBound's `2D+2` within a small constant.
//!
//! This module implements the adversary of the proof as an explicit game.
//! The adversarial ESS is the hard instance family where `D` candidate
//! locations `v_1 … v_D` share one final iso-cost contour: every candidate
//! has oracle cost `C`, the contour hosts `D` plans, plan `k` spills on
//! dimension `k`, and all candidates' cost surfaces *coincide* below `C` —
//! so a budgeted probe below `C` can never distinguish them, and a probe at
//! budget `C` on dimension `j` resolves exactly the predicate `k* = j`
//! (half-space pruning at the contour). The adversary keeps every answer
//! consistent by committing to the actual location as late as possible:
//! while at least two candidates remain, any probed dimension is declared
//! "not the target".
//!
//! Any deterministic strategy must therefore pay for `D-1` failed probes
//! plus the final completing one — `D·C` against the oracle's `C`:
//! sub-optimality at least `D`.

use std::collections::BTreeSet;

/// The adversarial discovery game on a `D`-dimensional hard instance.
#[derive(Debug, Clone)]
pub struct AdversarialGame {
    dims: usize,
    /// Candidate target dimensions still consistent with all answers.
    candidates: BTreeSet<usize>,
    /// Cost paid so far, in units of the oracle cost `C = 1`.
    paid: f64,
    /// Whether the completing probe has happened.
    done: bool,
}

impl AdversarialGame {
    /// Start the game on a `D`-dimensional instance (`D ≥ 2`).
    ///
    /// # Panics
    /// Panics if `dims < 2` (Theorem 4.6 requires `D ≥ 2`).
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 2, "the lower bound construction needs D ≥ 2");
        AdversarialGame { dims, candidates: (0..dims).collect(), paid: 0.0, done: false }
    }

    /// Number of dimensions `D`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Execute a contour probe on dimension `dim`: a budgeted spill-mode
    /// execution at the final contour, costing the full contour budget
    /// `C = 1`. Returns `true` iff the probe *completed* — the probed
    /// dimension is the target and the query finishes.
    ///
    /// The adversary answers "not the target" whenever at least one other
    /// candidate remains (such an answer is always consistent with some
    /// actual location, which is all a deterministic algorithm can ever
    /// refute).
    ///
    /// # Panics
    /// Panics if the game is already over or `dim` is out of range.
    pub fn probe(&mut self, dim: usize) -> bool {
        assert!(!self.done, "game is over");
        assert!(dim < self.dims, "dimension out of range");
        self.paid += 1.0;
        if self.candidates.contains(&dim) && self.candidates.len() == 1 {
            // the adversary has been cornered: the probe completes
            self.done = true;
            return true;
        }
        // consistent "no": commit to any other remaining candidate
        self.candidates.remove(&dim);
        false
    }

    /// Whether the query has completed.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Sub-optimality incurred so far (oracle cost is 1).
    pub fn suboptimality(&self) -> f64 {
        self.paid
    }
}

/// Drive any deterministic probing strategy against the adversary and
/// return its sub-optimality. The strategy maps the set of probes made so
/// far (in order) to the next dimension to probe.
pub fn play<S: FnMut(&[usize]) -> usize>(dims: usize, mut strategy: S) -> f64 {
    let mut game = AdversarialGame::new(dims);
    let mut history = Vec::new();
    // a deterministic strategy needs at most D distinct probes; 4D² steps
    // is a generous cap that exposes non-terminating strategies
    for _ in 0..(4 * dims * dims) {
        let dim = strategy(&history);
        history.push(dim);
        if game.probe(dim) {
            return game.suboptimality();
        }
    }
    // a non-terminating strategy is a programmer error; report the cost
    // accrued so far (an underestimate of its true sub-optimality)
    debug_assert!(false, "strategy failed to complete within 4D² probes");
    game.suboptimality()
}

/// The information-theoretically optimal strategy: probe each dimension
/// once, in any fixed order. Pays exactly `D` — the lower bound is tight.
pub fn round_robin_suboptimality(dims: usize) -> f64 {
    play(dims, |history| history.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_pays_exactly_d() {
        for d in 2..=8 {
            assert_eq!(round_robin_suboptimality(d), d as f64);
        }
    }

    #[test]
    fn every_strategy_pays_at_least_d() {
        // a spread of deterministic strategies, including wasteful ones
        for d in [2usize, 3, 5, 6] {
            // reverse order
            assert!(play(d, |h| d - 1 - (h.len() % d)) >= d as f64);
            // stubborn: hammers dimension 0 twice before moving on
            assert!(
                play(d, |h| (h.len() / 2).min(d - 1)) >= d as f64,
                "stubborn strategy beat the bound at D={d}"
            );
            // pseudo-random but deterministic
            assert!(play(d, |h| (h.len() * 7 + 3) % d) >= d as f64);
        }
    }

    #[test]
    fn wasteful_strategies_pay_more_than_d() {
        // probing an eliminated dimension again is pure loss
        let d = 4;
        let paid = play(d, |h| (h.len() / 2).min(d - 1));
        assert!(paid > d as f64);
    }

    #[test]
    fn adversary_is_consistent_until_cornered() {
        let mut g = AdversarialGame::new(3);
        assert!(!g.probe(0));
        assert!(!g.probe(1));
        assert!(!g.finished());
        assert!(g.probe(2), "last candidate must complete");
        assert!(g.finished());
        assert_eq!(g.suboptimality(), 3.0);
    }

    #[test]
    #[should_panic(expected = "D ≥ 2")]
    fn one_dimension_is_not_a_hard_instance() {
        AdversarialGame::new(1);
    }

    #[test]
    #[should_panic(expected = "game is over")]
    fn probing_after_completion_panics() {
        let mut g = AdversarialGame::new(2);
        g.probe(0);
        g.probe(1);
        g.probe(0);
    }

    #[test]
    fn spillbound_guarantee_is_within_o_d_of_the_bound() {
        // Theorem 4.6 + Theorem 4.5: (D²+3D)/D = D+3 — an O(D) gap
        for d in 2..=6 {
            let gap = crate::guarantees::sb_guarantee(d) / round_robin_suboptimality(d);
            assert_eq!(gap, (d + 3) as f64);
        }
    }
}
