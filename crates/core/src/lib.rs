#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! Robust query processing algorithms with provable MSO guarantees.
//!
//! This crate implements the paper's contribution on top of the substrate
//! crates:
//!
//! * [`bouquet::PlanBouquet`] — the baseline discovery algorithm of Dutt &
//!   Haritsa (TODS 2016): execute *every* plan of each doubling iso-cost
//!   contour under budget until one completes. `MSO ≤ 4(1+λ)·ρ_red`.
//! * [`spillbound::SpillBound`] — Algorithm 1: per contour, spill-execute
//!   one maximal-learning plan per error-prone predicate; half-space
//!   pruning plus contour-density-independent execution give the
//!   platform-independent guarantee `MSO ≤ D² + 3D`.
//! * [`aligned::AlignedBound`] — Algorithm 2: exploit or induce
//!   (predicate-set) contour alignment to approach the `Ω(D)` lower bound;
//!   `MSO ∈ [2D+2, D²+3D]`.
//! * [`native::NativeOptimizer`] — the traditional baseline: optimize at the
//!   estimated location `qe`, run that plan wherever `qa` actually is.
//! * [`eval`] — the exhaustive empirical-MSO harness behind Figs. 8–13.
//!
//! All algorithms implement the [`Discovery`] trait and produce complete
//! [`trace::DiscoveryTrace`]s.

pub mod advisor;
pub mod aligned;
pub mod bouquet;
pub mod eval;
pub mod guarantees;
pub mod invariants;
pub mod knowledge;
pub mod lowerbound;
pub mod native;
pub mod obs;
pub mod reopt;
pub mod runtime;
pub mod spillbound;
pub mod supervise;
pub mod trace;

pub use advisor::{advise, Advice, Recommendation};
pub use aligned::{alignment_stats, AlignedBound, AlignmentStats};
pub use bouquet::PlanBouquet;
pub use eval::{evaluate, evaluate_sampled, Evaluation};
pub use guarantees::{ab_guarantee_range, pb_guarantee, sb_guarantee};
pub use knowledge::Knowledge;
pub use lowerbound::AdversarialGame;
pub use native::NativeOptimizer;
pub use obs::register_metrics;
pub use reopt::ReOptimizer;
pub use runtime::RobustRuntime;
pub use spillbound::SpillBound;
pub use supervise::{RetryPolicy, Supervisor, SupervisorStats};
pub use trace::{DiscoveryTrace, ExecMode, PlanRef, Step};

use rqp_ess::Cell;

/// A robust query processing algorithm: given the compiled runtime and an
/// actual selectivity location, produce the full discovery trace.
pub trait Discovery: Sync {
    /// Short display name ("PB", "SB", "AB", …).
    fn name(&self) -> &'static str;

    /// Run the algorithm for the query instance located at grid cell `qa`.
    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the crate's unit tests.

    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};

    /// A 3-relation catalog and the introduction's example query EQ with
    /// two error-prone join predicates.
    pub fn example_2d() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    /// A 3D fixture: EQ extended with a customer dimension.
    pub fn example_3d() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .indexed_column("o_custkey", 1_500_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("customer", 1_500_000)
                    .indexed_column("c_custkey", 1_500_000, 8)
                    .column("c_balance", 100_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ3")
            .table("part")
            .table("lineitem")
            .table("orders")
            .table("customer")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .epp_join("customer", "c_custkey", "orders", "o_custkey")
            .filter("part", "p_price", 0.05)
            .filter("customer", "c_balance", 0.1)
            .build()
            .unwrap();
        (catalog, query)
    }
}
