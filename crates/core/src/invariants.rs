//! Debug-build checks of the paper's structural invariants.
//!
//! Two assumptions underpin every MSO guarantee in the paper: (1) the
//! optimal cost surface is monotone (PCM, §2.3), so the iso-cost contours
//! are properly nested — the optimal cost recorded at every cell of band
//! `i` lies inside the band's cost window; and (2) contour budgets grow
//! geometrically (cost-doubling, §3.1) — `CC_{i+1} = r·CC_i`, and every
//! budgeted execution drawn from band `i` spends within that window.
//! Violating either does not crash anything; it silently voids the
//! guarantees, which is exactly the class of bug best caught by
//! `debug_assert!`. Every check here compiles to a no-op in release
//! builds, so the hot discovery loops pay nothing in production.

use crate::supervise::RetryPolicy;
use crate::trace::DiscoveryTrace;
use rqp_ess::Ess;

/// Relative slack for the window checks: contour edges are reconstructed
/// through `ln`/`powi` round-trips, so exact equality is too strict.
const SLACK: f64 = 1e-9;

/// Check the compiled contour set: lower edges grow geometrically by the
/// contour ratio, and every cell's optimal cost lies within its band's
/// window `[CC_i, r·CC_i)` (the discretized contour-nesting invariant;
/// the last band is open above because it absorbs the terminus).
///
/// Call once after ESS compilation. No-op in release builds.
pub fn debug_check_contours(ess: &Ess) {
    if !cfg!(debug_assertions) {
        return;
    }
    let contours = &ess.contours;
    let ratio = contours.ratio;
    for b in 1..contours.num_bands() {
        let r = contours.cc(b) / contours.cc(b - 1);
        debug_assert!(
            (r - ratio).abs() <= SLACK * ratio,
            "contour edges must grow by {ratio}: band {b} edge ratio {r}"
        );
    }
    let last = contours.num_bands() - 1;
    for b in 0..contours.num_bands() {
        let lo = contours.cc(b);
        for &cell in contours.cells(b) {
            let c = ess.posp.cost(cell);
            debug_assert!(
                c >= lo * (1.0 - SLACK),
                "cell {cell}: optimal cost {c} below band {b} lower edge {lo}"
            );
            debug_assert!(
                b == last || c < lo * ratio * (1.0 + SLACK),
                "cell {cell}: optimal cost {c} above band {b} upper edge {}",
                lo * ratio
            );
        }
    }
}

/// Check that a budget charged on band `band` respects the doubling
/// discipline: it is at least the band's lower edge `CC_band` and (except
/// on the open last band) below the next edge `r·CC_band`. Discovery
/// algorithms call this at every POSP-derived budget. No-op in release
/// builds.
pub fn debug_check_band_budget(ess: &Ess, band: usize, budget: f64) {
    let contours = &ess.contours;
    debug_check_band_budget_parts(
        contours.cc(band),
        contours.ratio,
        band + 1 >= contours.num_bands(),
        band,
        budget,
    );
}

/// Surface-agnostic form of [`debug_check_band_budget`]: checks a budget
/// against the band window `[lo, r·lo)` given just the ladder parts, so a
/// lazily compiling surface can be checked band-by-band without a finished
/// [`Ess`]. `open_above` marks the last band, whose window has no upper
/// edge. No-op in release builds.
pub fn debug_check_band_budget_parts(
    lo: f64,
    ratio: f64,
    open_above: bool,
    band: usize,
    budget: f64,
) {
    if !cfg!(debug_assertions) {
        return;
    }
    debug_assert!(
        budget >= lo * (1.0 - SLACK),
        "band {band}: budget {budget} below contour edge {lo}"
    );
    debug_assert!(
        open_above || budget < lo * ratio * (1.0 + SLACK),
        "band {band}: budget {budget} breaches the doubling window (edge {lo}, ratio {ratio})"
    );
}

/// Check a finished trace's cost accounting, *including* under fault
/// injection: every step's expenditure is finite and non-negative, and the
/// step expenditures sum to the accounted `total_cost` (wasted retry work
/// must appear in both places or in neither). Unlike the debug checks
/// above this runs in release builds too — the chaos harness calls it on
/// every swept trace.
pub fn check_trace_accounting(trace: &DiscoveryTrace) -> Result<(), String> {
    if !trace.total_cost.is_finite() || trace.total_cost < 0.0 {
        return Err(format!(
            "{}: total cost {} is not finite/non-negative",
            trace.algo, trace.total_cost
        ));
    }
    let mut sum = 0.0;
    for (i, s) in trace.steps.iter().enumerate() {
        if !s.spent.is_finite() || s.spent < 0.0 {
            return Err(format!(
                "{}: step {i} spent {} is not finite/non-negative",
                trace.algo, s.spent
            ));
        }
        sum += s.spent;
    }
    let tol = SLACK * (1.0 + trace.total_cost.abs());
    if (sum - trace.total_cost).abs() > tol {
        return Err(format!(
            "{}: step expenditures sum to {sum} but the trace accounts {}",
            trace.algo, trace.total_cost
        ));
    }
    Ok(())
}

/// The degraded sub-optimality bound a clean guarantee implies under
/// supervised fault injection: every logical execution can be re-issued
/// with backed-off budgets plus one clean last resort, so the clean bound
/// dilates by exactly [`RetryPolicy::degraded_factor`].
pub fn chaos_degraded_bound(clean_bound: f64, policy: &RetryPolicy) -> f64 {
    clean_bound * policy.degraded_factor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn compiled_ess() -> Ess {
        let (catalog, query) = example_2d();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        Ess::compile(&opt, EssConfig { resolution: 8, ..Default::default() }).unwrap()
    }

    #[test]
    fn compiled_ess_satisfies_both_invariants() {
        let ess = compiled_ess();
        debug_check_contours(&ess);
        for band in 0..ess.contours.num_bands() {
            for &cell in ess.contours.cells(band) {
                debug_check_band_budget(&ess, band, ess.posp.cost(cell));
            }
        }
    }

    #[test]
    fn trace_accounting_accepts_consistent_and_rejects_corrupt_traces() {
        use crate::trace::{ExecMode, PlanRef, Step};
        let step = |spent: f64| {
            Step::clean(
                0,
                PlanRef::Posp(rqp_ess::PlanId(0)),
                ExecMode::Full,
                10.0,
                spent,
                true,
                None,
            )
        };
        let mut t = DiscoveryTrace {
            algo: "T",
            qa: 0,
            steps: vec![step(3.0), step(4.5)],
            total_cost: 7.5,
            oracle_cost: 1.0,
            failure: None,
            quarantined: vec![],
        };
        assert!(check_trace_accounting(&t).is_ok());
        t.total_cost = 9.0;
        assert!(check_trace_accounting(&t).is_err());
        t.total_cost = 7.5;
        t.steps.push(step(f64::NAN));
        assert!(check_trace_accounting(&t).is_err());
    }

    #[test]
    fn degraded_bound_dilates_by_the_policy_factor() {
        let p = RetryPolicy::default();
        let clean = 10.0;
        assert!((chaos_degraded_bound(clean, &p) - clean * p.degraded_factor()).abs() < 1e-12);
        assert!(chaos_degraded_bound(clean, &p) >= clean);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "doubling window")]
    fn budget_above_the_window_is_rejected() {
        let ess = compiled_ess();
        debug_check_band_budget(&ess, 0, ess.contours.cc(0) * ess.contours.ratio * 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below contour edge")]
    fn budget_below_the_edge_is_rejected() {
        let ess = compiled_ess();
        debug_check_band_budget(&ess, 1, ess.contours.cc(1) * 0.25);
    }
}
