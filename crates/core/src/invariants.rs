//! Debug-build checks of the paper's structural invariants.
//!
//! Two assumptions underpin every MSO guarantee in the paper: (1) the
//! optimal cost surface is monotone (PCM, §2.3), so the iso-cost contours
//! are properly nested — the optimal cost recorded at every cell of band
//! `i` lies inside the band's cost window; and (2) contour budgets grow
//! geometrically (cost-doubling, §3.1) — `CC_{i+1} = r·CC_i`, and every
//! budgeted execution drawn from band `i` spends within that window.
//! Violating either does not crash anything; it silently voids the
//! guarantees, which is exactly the class of bug best caught by
//! `debug_assert!`. Every check here compiles to a no-op in release
//! builds, so the hot discovery loops pay nothing in production.

use rqp_ess::Ess;

/// Relative slack for the window checks: contour edges are reconstructed
/// through `ln`/`powi` round-trips, so exact equality is too strict.
const SLACK: f64 = 1e-9;

/// Check the compiled contour set: lower edges grow geometrically by the
/// contour ratio, and every cell's optimal cost lies within its band's
/// window `[CC_i, r·CC_i)` (the discretized contour-nesting invariant;
/// the last band is open above because it absorbs the terminus).
///
/// Call once after ESS compilation. No-op in release builds.
pub fn debug_check_contours(ess: &Ess) {
    if !cfg!(debug_assertions) {
        return;
    }
    let contours = &ess.contours;
    let ratio = contours.ratio;
    for b in 1..contours.num_bands() {
        let r = contours.cc(b) / contours.cc(b - 1);
        debug_assert!(
            (r - ratio).abs() <= SLACK * ratio,
            "contour edges must grow by {ratio}: band {b} edge ratio {r}"
        );
    }
    let last = contours.num_bands() - 1;
    for b in 0..contours.num_bands() {
        let lo = contours.cc(b);
        for &cell in contours.cells(b) {
            let c = ess.posp.cost(cell);
            debug_assert!(
                c >= lo * (1.0 - SLACK),
                "cell {cell}: optimal cost {c} below band {b} lower edge {lo}"
            );
            debug_assert!(
                b == last || c < lo * ratio * (1.0 + SLACK),
                "cell {cell}: optimal cost {c} above band {b} upper edge {}",
                lo * ratio
            );
        }
    }
}

/// Check that a budget charged on band `band` respects the doubling
/// discipline: it is at least the band's lower edge `CC_band` and (except
/// on the open last band) below the next edge `r·CC_band`. Discovery
/// algorithms call this at every POSP-derived budget. No-op in release
/// builds.
pub fn debug_check_band_budget(ess: &Ess, band: usize, budget: f64) {
    if !cfg!(debug_assertions) {
        return;
    }
    let contours = &ess.contours;
    let lo = contours.cc(band);
    debug_assert!(
        budget >= lo * (1.0 - SLACK),
        "band {band}: budget {budget} below contour edge {lo}"
    );
    debug_assert!(
        band + 1 >= contours.num_bands() || budget < lo * contours.ratio * (1.0 + SLACK),
        "band {band}: budget {budget} breaches the doubling window (edge {lo}, ratio {})",
        contours.ratio
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn compiled_ess() -> Ess {
        let (catalog, query) = example_2d();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        Ess::compile(&opt, EssConfig { resolution: 8, ..Default::default() }).unwrap()
    }

    #[test]
    fn compiled_ess_satisfies_both_invariants() {
        let ess = compiled_ess();
        debug_check_contours(&ess);
        for band in 0..ess.contours.num_bands() {
            for &cell in ess.contours.cells(band) {
                debug_check_band_budget(&ess, band, ess.posp.cost(cell));
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "doubling window")]
    fn budget_above_the_window_is_rejected() {
        let ess = compiled_ess();
        debug_check_band_budget(&ess, 0, ess.contours.cc(0) * ess.contours.ratio * 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "below contour edge")]
    fn budget_below_the_edge_is_rejected() {
        let ess = compiled_ess();
        debug_check_band_budget(&ess, 1, ess.contours.cc(1) * 0.25);
    }
}
