//! A POP/Rio-style *mid-query reoptimization* baseline (§8).
//!
//! The influential pre-bouquet approaches to robustness (POP [Markl et al.
//! 2004], Rio [Babu et al. 2005], and the earlier Kabra–DeWitt scheme)
//! start from the optimizer's estimate and re-optimize mid-flight when
//! observed cardinalities stray outside a validity range. The paper
//! contrasts them with the bouquet family on two counts: they carry **no
//! MSO guarantee** (a bad first plan can sink arbitrary work before the
//! first checkpoint), and their behaviour is seed-dependent rather than
//! repeatable from the origin. This module implements the class faithfully
//! enough to measure that difference:
//!
//! * plan chosen at the current estimate `qe`;
//! * execution observes each error-prone predicate's true selectivity in
//!   pipeline order (the same observation points the spill machinery uses);
//! * the first observation deviating from its estimate by more than a
//!   `threshold` factor triggers reoptimization: the work performed so far
//!   (the subtree that produced the observation) is paid for, the estimate
//!   is corrected with every truth observed so far, and a new plan is
//!   chosen;
//! * when every epp observation stays within the validity range, the plan
//!   runs to completion.
//!
//! Each round fixes at least one more epp exactly, so there are at most
//! `D+1` rounds; but the *cost* of a round is unbounded relative to the
//! oracle — exactly why no MSO bound exists for this class.

use crate::runtime::RobustRuntime;
use crate::trace::{DiscoveryTrace, PlanRef};
use crate::Discovery;
use rqp_catalog::{EppId, Selectivity};
use rqp_ess::Cell;
use rqp_qplan::pipeline::{epp_spill_order, spill_subtree};
use std::sync::Arc;

/// The mid-query reoptimization baseline.
#[derive(Debug, Clone, Copy)]
pub struct ReOptimizer {
    /// Validity-range factor: an observation `o` with estimate `e`
    /// triggers reoptimization when `o > e·threshold` or `o < e/threshold`
    /// (POP's check-placement uses a comparable range; 2.0 is a common
    /// setting).
    pub threshold: f64,
}

impl ReOptimizer {
    /// A reoptimizer with the given validity factor.
    ///
    /// # Panics
    /// Panics unless `threshold > 1`.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 1.0, "validity factor must exceed 1");
        ReOptimizer { threshold }
    }
}

impl Default for ReOptimizer {
    fn default() -> Self {
        ReOptimizer::new(2.0)
    }
}

impl Discovery for ReOptimizer {
    fn name(&self) -> &'static str {
        "ReOpt"
    }

    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace {
        let grid = rt.grid();
        let qa_loc = grid.location(qa);
        // current selectivity beliefs: catalog estimates, progressively
        // overwritten by observed truths
        let mut believed = rt.estimated_location().clone();
        let mut observed = vec![false; grid.dims()];
        let mut sup = rt.supervisor(self.name());
        let mut steps = Vec::new();
        let mut total = 0.0;

        // each round observes ≥1 new epp or completes; D+1 bounds rounds
        for _round in 0..=grid.dims() {
            let planned = rt.optimizer.optimize(&believed);
            let plan = Arc::new(planned.plan);
            let band = rt.band_of(qa).min(rt.num_bands() - 1);

            // observation points in pipeline order
            let mut violation: Option<EppId> = None;
            for e in epp_spill_order(&plan, rt.query) {
                if observed[e.0] {
                    continue;
                }
                let est = believed.get(e.0).value();
                let truth = qa_loc.get(e.0).value();
                // the observation itself is now known either way
                observed[e.0] = true;
                believed.set(e.0, Selectivity::new(truth));
                if truth > est * self.threshold || truth < est / self.threshold {
                    violation = Some(e);
                    break;
                }
            }

            match violation {
                Some(e) => {
                    // pay for the work that produced the violating
                    // observation: the subtree rooted at the epp's node,
                    // at true cardinalities
                    // epp_spill_order only yields epps the plan evaluates, so
                    // the subtree always exists; if the invariant ever broke,
                    // charging the whole plan keeps the cost conservative.
                    let subtree = spill_subtree(&plan, rt.query, e).unwrap_or_else(|| {
                        debug_assert!(false, "plan evaluates epp {e}");
                        (*plan).clone()
                    });
                    let plan_ref = PlanRef::Bespoke(Arc::clone(&plan));
                    let done = sup.execute_full(
                        &rt.engine,
                        &subtree,
                        &plan_ref,
                        band,
                        &qa_loc,
                        f64::INFINITY,
                        &mut total,
                        &mut steps,
                    );
                    if done.is_none() {
                        // the observing subtree failed beyond the retry
                        // budget: without the observation this class has no
                        // recovery path, so report a structured failure
                        // with all sunk work accounted
                        let trace = DiscoveryTrace {
                            algo: self.name(),
                            qa,
                            steps,
                            total_cost: total,
                            oracle_cost: rt.oracle_cost(qa),
                            failure: Some(format!(
                                "reoptimization aborted: observing subtree for \
                                 epp {e} failed beyond the retry budget"
                            )),
                            quarantined: sup.quarantined(),
                        };
                        crate::obs::record_trace(&trace);
                        return trace;
                    }
                    // the subtree run only produced an observation, not the
                    // query result: rewrite the supervisor's final step to
                    // say so
                    if let Some(last) = steps.last_mut() {
                        last.completed = false;
                        last.learned = Some((e, qa_loc.get(e.0).value(), true));
                    }
                    // loop: reoptimize with the corrected beliefs
                }
                None => {
                    // all observations in range: the plan runs to the end
                    let plan_ref = PlanRef::Bespoke(Arc::clone(&plan));
                    let completed = sup
                        .execute_full(
                            &rt.engine,
                            &plan,
                            &plan_ref,
                            band,
                            &qa_loc,
                            f64::INFINITY,
                            &mut total,
                            &mut steps,
                        )
                        .is_some_and(|out| out.completed());
                    let failure = if completed {
                        None
                    } else {
                        Some(
                            "final reoptimization round failed beyond the \
                             retry budget"
                                .to_string(),
                        )
                    };
                    let trace = DiscoveryTrace {
                        algo: self.name(),
                        qa,
                        steps,
                        total_cost: total,
                        oracle_cost: rt.oracle_cost(qa),
                        failure,
                        quarantined: sup.quarantined(),
                    };
                    crate::obs::record_trace(&trace);
                    return trace;
                }
            }
        }
        // every round observes ≥1 new epp, so the loop always returns from
        // its completion arm; surface a broken invariant without panicking
        debug_assert!(false, "D+1 reoptimization rounds did not complete");
        let trace = DiscoveryTrace {
            algo: self.name(),
            qa,
            steps,
            total_cost: total,
            oracle_cost: rt.oracle_cost(qa),
            failure: None,
            quarantined: sup.quarantined(),
        };
        crate::obs::record_trace(&trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::spillbound::SpillBound;
    use crate::test_support::example_2d;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 12, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn completes_everywhere_with_bounded_rounds() {
        let rt = runtime();
        let reopt = ReOptimizer::default();
        for qa in rt.grid().cells() {
            let t = reopt.discover(&rt, qa);
            assert!(t.steps.last().unwrap().completed, "cell {qa}");
            assert!(t.subopt() >= 1.0 - 1e-9, "cell {qa}: subopt {}", t.subopt());
            assert!(
                t.steps.len() <= rt.dims() + 1,
                "cell {qa}: {} rounds exceed D+1",
                t.steps.len()
            );
        }
    }

    #[test]
    fn when_the_estimate_is_right_no_reoptimization_happens() {
        let rt = runtime();
        let reopt = ReOptimizer::default();
        // put qa at (a grid snap of) the estimated location
        let qe = rt.estimated_location();
        let grid = rt.grid();
        let coords: Vec<usize> = (0..2).map(|d| grid.snap_ceil(d, qe.get(d).value())).collect();
        let qa = grid.index(&coords);
        let t = reopt.discover(&rt, qa);
        // close to its own estimate the plan should run in one round
        assert!(t.steps.len() <= 2, "{} rounds near the estimate", t.steps.len());
    }

    #[test]
    fn reopt_has_no_mso_guarantee_but_sb_does() {
        // the motivating contrast of §8: ReOpt's worst case floats free of
        // any structural bound, SB's does not
        let rt = runtime();
        let reopt_ev = evaluate(&rt, &ReOptimizer::default());
        let sb_ev = evaluate(&rt, &SpillBound::new());
        let sb_bound = 2.0 * crate::guarantees::sb_guarantee(rt.dims());
        assert!(sb_ev.mso <= sb_bound);
        // ReOpt completes but typically exceeds SB somewhere on the grid;
        // at minimum it must be a valid algorithm
        assert!(reopt_ev.mso >= 1.0);
        assert!(reopt_ev.aso >= 1.0);
    }

    #[test]
    fn wider_validity_ranges_mean_fewer_rounds() {
        let rt = runtime();
        let strict = ReOptimizer::new(1.1);
        let loose = ReOptimizer::new(1e12);
        let qa = rt.grid().terminus();
        let t_strict = strict.discover(&rt, qa);
        let t_loose = loose.discover(&rt, qa);
        assert!(t_loose.steps.len() <= t_strict.steps.len());
        assert_eq!(t_loose.steps.len(), 1, "an enormous range never reoptimizes");
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn degenerate_threshold_rejected() {
        ReOptimizer::new(1.0);
    }
}
