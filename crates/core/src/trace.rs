//! Discovery traces: the full record of a robust algorithm's budgeted
//! executions for one query instance (the basis of Fig. 7's Manhattan
//! profile and Table 3's drill-down).

use rqp_catalog::EppId;
use rqp_ess::{Cell, PlanId};
use rqp_qplan::PlanNode;
use std::sync::Arc;

/// The plan used by one execution: either a POSP plan from the registry or
/// a bespoke replacement plan (AlignedBound's induced-alignment
/// substitutes).
#[derive(Debug, Clone)]
pub enum PlanRef {
    /// A registered POSP plan.
    Posp(PlanId),
    /// A replacement plan synthesized outside the POSP.
    Bespoke(Arc<PlanNode>),
}

impl std::fmt::Display for PlanRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanRef::Posp(id) => write!(f, "{id}"),
            PlanRef::Bespoke(_) => write!(f, "P*"),
        }
    }
}

/// How a plan was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Complete execution under a cost budget.
    Full,
    /// Spill-mode execution targeting the given epp (§3.1.2).
    Spill(EppId),
}

/// One budgeted execution.
#[derive(Debug, Clone)]
pub struct Step {
    /// Contour band index the execution belonged to.
    pub band: usize,
    /// The executed plan.
    pub plan: PlanRef,
    /// Execution mode.
    pub mode: ExecMode,
    /// Assigned cost budget.
    pub budget: f64,
    /// Cost actually charged (= budget if it expired, the true cost if the
    /// execution completed earlier).
    pub spent: f64,
    /// Whether the execution (full plan or spilled subtree) completed.
    pub completed: bool,
    /// Selectivity knowledge gained: `(dim, value, exact)`.
    pub learned: Option<(EppId, f64, bool)>,
    /// Which attempt of a supervised execution this was: 0 for the first
    /// try, counting up across retries of the same logical execution.
    pub attempt: u32,
    /// The execution died from an injected fault. Its `spent` is sunk work
    /// (charged against the MSO accounting like any other expenditure) and
    /// its `learned` is always `None`.
    pub faulted: bool,
}

impl Step {
    /// A first-attempt, un-faulted step (the common case; chaos-aware call
    /// sites override `attempt`/`faulted` explicitly).
    #[allow(clippy::too_many_arguments)]
    pub fn clean(
        band: usize,
        plan: PlanRef,
        mode: ExecMode,
        budget: f64,
        spent: f64,
        completed: bool,
        learned: Option<(EppId, f64, bool)>,
    ) -> Self {
        Step { band, plan, mode, budget, spent, completed, learned, attempt: 0, faulted: false }
    }
}

/// The complete discovery record for one query instance.
#[derive(Debug, Clone)]
pub struct DiscoveryTrace {
    /// Name of the algorithm that produced the trace.
    pub algo: &'static str,
    /// The actual location `qa` (grid cell).
    pub qa: Cell,
    /// All executions, in order.
    pub steps: Vec<Step>,
    /// Total cost charged across all executions.
    pub total_cost: f64,
    /// The oracle cost `Cost(P_qa, qa)`.
    pub oracle_cost: f64,
    /// Structured failure: `Some(reason)` when the algorithm could not
    /// produce a final result (e.g. the native optimizer's only plan kept
    /// faulting). The cost accounting in `steps`/`total_cost` stays valid
    /// even for failed runs — wasted work is never hidden.
    pub failure: Option<String>,
    /// Structural fingerprints of plans quarantined during this run (after
    /// exceeding the supervisor's failure threshold).
    pub quarantined: Vec<u64>,
}

impl DiscoveryTrace {
    /// The instance sub-optimality `SubOpt(Seq_qa, qa)` (Eq. 3).
    ///
    /// A valid oracle cost is strictly positive (PCM cost surfaces are
    /// bounded away from zero). If `oracle_cost <= 0` (or is NaN) the ratio
    /// is meaningless, so the documented sentinel `f64::INFINITY` is
    /// returned — a corrupt trace reads as "unboundedly sub-optimal" rather
    /// than silently producing `NaN` or a negative ratio that would skew
    /// MSO/ASO aggregation.
    pub fn subopt(&self) -> f64 {
        if self.oracle_cost.is_nan() || self.oracle_cost <= 0.0 {
            return f64::INFINITY;
        }
        self.total_cost / self.oracle_cost
    }

    /// Number of executions.
    pub fn num_executions(&self) -> usize {
        self.steps.len()
    }

    /// Number of supervised retries (steps beyond each first attempt).
    pub fn retries(&self) -> usize {
        self.steps.iter().filter(|s| s.attempt > 0).count()
    }

    /// Number of executions that died from an injected fault.
    pub fn faulted_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.faulted).count()
    }

    /// Whether the run ended in a structured failure.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Render the trace as a compact table (one row per execution), in the
    /// spirit of Table 3.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} at cell {}: subopt {:.2} ({} executions)",
            self.algo,
            self.qa,
            self.subopt(),
            self.steps.len()
        );
        if let Some(reason) = &self.failure {
            let _ = writeln!(s, "  FAILED: {reason}");
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(s, "  quarantined {} plan(s)", self.quarantined.len());
        }
        for st in &self.steps {
            let mode = match st.mode {
                ExecMode::Full => format!("{}", st.plan),
                ExecMode::Spill(e) => format!("spill[{}]({})", e.0, st.plan),
            };
            let learned = match st.learned {
                Some((e, v, true)) => format!("  -> dim{} = {v:.3e} (exact)", e.0),
                Some((e, v, false)) => format!("  -> dim{} > {v:.3e}", e.0),
                None => String::new(),
            };
            let status = if st.faulted {
                "FLT "
            } else if st.completed {
                "done"
            } else {
                "cut "
            };
            let retry =
                if st.attempt > 0 { format!("  (retry {})", st.attempt) } else { String::new() };
            let _ = writeln!(
                s,
                "  band {:>2}  {:<18} budget {:>12.3e}  spent {:>12.3e}  {}{}{}",
                st.band, mode, st.budget, st.spent, status, learned, retry
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(band: usize, spent: f64, completed: bool) -> Step {
        Step::clean(band, PlanRef::Posp(PlanId(0)), ExecMode::Full, spent, spent, completed, None)
    }

    #[test]
    fn subopt_guards_against_nonpositive_oracle_cost() {
        let mut t = DiscoveryTrace {
            algo: "test",
            qa: 0,
            steps: vec![step(0, 5.0, true)],
            total_cost: 5.0,
            oracle_cost: 0.0,
            failure: None,
            quarantined: vec![],
        };
        assert_eq!(t.subopt(), f64::INFINITY, "zero oracle cost → sentinel");
        t.oracle_cost = -3.0;
        assert_eq!(t.subopt(), f64::INFINITY, "negative oracle cost → sentinel");
        t.oracle_cost = f64::NAN;
        assert_eq!(t.subopt(), f64::INFINITY, "NaN oracle cost → sentinel");
        t.oracle_cost = 5.0;
        assert_eq!(t.subopt(), 1.0, "valid oracle cost unaffected");
    }

    #[test]
    fn subopt_is_total_over_oracle() {
        let t = DiscoveryTrace {
            algo: "test",
            qa: 3,
            steps: vec![step(0, 10.0, false), step(1, 30.0, true)],
            total_cost: 40.0,
            oracle_cost: 20.0,
            failure: None,
            quarantined: vec![],
        };
        assert_eq!(t.subopt(), 2.0);
        assert_eq!(t.num_executions(), 2);
    }

    #[test]
    fn render_mentions_mode_and_learning() {
        let t = DiscoveryTrace {
            algo: "SB",
            qa: 0,
            steps: vec![Step {
                band: 2,
                plan: PlanRef::Posp(PlanId(4)),
                mode: ExecMode::Spill(EppId(1)),
                budget: 100.0,
                spent: 100.0,
                completed: false,
                learned: Some((EppId(1), 0.25, false)),
                attempt: 0,
                faulted: false,
            }],
            total_cost: 100.0,
            oracle_cost: 50.0,
            failure: None,
            quarantined: vec![],
        };
        let r = t.render();
        assert!(r.contains("spill[1](P5)"));
        assert!(r.contains("dim1 > 2.500e-1"));
        assert!(r.contains("band  2"));
    }
}

#[cfg(test)]
mod bespoke_tests {
    use super::*;
    use rqp_catalog::RelId;
    use rqp_qplan::PlanNode;

    #[test]
    fn bespoke_plans_render_as_p_star() {
        let plan = PlanRef::Bespoke(Arc::new(PlanNode::SeqScan { rel: RelId(0), filters: vec![] }));
        assert_eq!(plan.to_string(), "P*");
    }

    #[test]
    fn infinite_budgets_render_without_panicking() {
        let t = DiscoveryTrace {
            algo: "ReOpt",
            qa: 1,
            steps: vec![Step {
                band: 0,
                plan: PlanRef::Bespoke(Arc::new(PlanNode::SeqScan {
                    rel: RelId(0),
                    filters: vec![],
                })),
                mode: ExecMode::Full,
                budget: f64::INFINITY,
                spent: 7.0,
                completed: true,
                learned: None,
                attempt: 0,
                faulted: false,
            }],
            total_cost: 7.0,
            oracle_cost: 7.0,
            failure: None,
            quarantined: vec![],
        };
        let r = t.render();
        assert!(r.contains("P*"));
        assert!(r.contains("inf"));
        assert_eq!(t.subopt(), 1.0);
    }
}
