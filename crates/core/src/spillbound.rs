//! The SpillBound algorithm (Algorithm 1, §4).
//!
//! SpillBound walks the same doubling contours as PlanBouquet but replaces
//! brute-force plan cycling with *spill-mode* executions: on each contour,
//! for every remaining error-prone predicate `e_j`, it picks the contour
//! plan `P^j_max` that guarantees maximal selectivity learning along
//! dimension `j` (the plan optimal at the contour location with the largest
//! `j`-coordinate among locations whose plan spills on `j`, §3.2) and
//! executes it in spill-mode with the contour budget. Either some execution
//! completes — an epp's selectivity becomes exactly known and the epp is
//! retired — or all fail, which proves `qa` lies beyond the contour
//! (half-space pruning, Lemmas 3.1/4.3) and the search jumps to the next
//! contour. When a single epp remains, the discovery reduces to a 1-D
//! problem and plain PlanBouquet finishes the job (§4.1).
//!
//! The result is at most `D` fresh executions per contour and at most
//! `D(D-1)/2` repeat executions overall (Lemma 4.4), giving
//! `MSO ≤ D² + 3D` — a *structural* bound independent of the optimizer and
//! platform.

use crate::bouquet::bouquet_endgame;
use crate::knowledge::Knowledge;
use crate::runtime::RobustRuntime;
use crate::trace::{DiscoveryTrace, PlanRef};
use crate::Discovery;
use parking_lot::Mutex;
use rqp_catalog::EppId;
use rqp_ess::{Cell, PlanId};
use rqp_qplan::pipeline::spill_target;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Cache key for per-contour plan choices: the surface token, the band and
/// the exactly-learnt `(dimension, grid coordinate)` pairs. Plan ids are
/// surface-relative, so a choice memoized against one surface must never
/// leak to a runtime backed by another — the token keeps them apart.
pub(crate) type StateKey = (usize, usize, Vec<(usize, usize)>);

/// Per-contour choice: for each dimension, the maximal-learning cell and
/// its plan (`(q^j_max, P^j_max)`), if any contour plan spills on `j`.
pub(crate) struct ContourChoice {
    pub per_dim: Vec<Option<(Cell, PlanId)>>,
}

/// Build the cache key for the current knowledge state.
pub(crate) fn state_key(rt: &RobustRuntime<'_>, band: usize, know: &Knowledge) -> StateKey {
    let grid = rt.grid();
    let mut learnt = Vec::new();
    for d in 0..grid.dims() {
        if let Some(v) = know.exact(EppId(d)) {
            learnt.push((d, grid.snap_ceil(d, v)));
        }
    }
    (rt.surface_token(), band, learnt)
}

/// Compute `(q^j_max, P^j_max)` for every unlearnt dimension on the
/// effective slice of a band.
pub(crate) fn contour_choice(
    rt: &RobustRuntime<'_>,
    band: usize,
    know: &Knowledge,
    unlearnt: &BTreeSet<EppId>,
) -> ContourChoice {
    let grid = rt.grid();
    let mut per_dim: Vec<Option<(Cell, PlanId)>> = vec![None; grid.dims()];
    for &cell in rt.band_cells(band).iter() {
        if !know.matches_exact(grid, cell) {
            continue;
        }
        let plan_id = rt.plan_id_at(cell);
        let plan = rt.plan(plan_id);
        let Some(j) = spill_target(&plan, rt.query, unlearnt) else { continue };
        let better = match per_dim[j.0] {
            None => true,
            Some((best, _)) => grid.coord(cell, j.0) > grid.coord(best, j.0),
        };
        if better {
            per_dim[j.0] = Some((cell, plan_id));
        }
    }
    ContourChoice { per_dim }
}

/// The SpillBound algorithm.
pub struct SpillBound {
    /// Refine lower bounds by bisection on budget expiry (richer traces,
    /// slower); the guarantees only need the coarse `qa.j > q.j` learning.
    pub refine_bounds: bool,
    cache: Mutex<HashMap<StateKey, Arc<ContourChoice>>>,
}

impl SpillBound {
    /// SpillBound with coarse (guaranteed) learning — the default for
    /// exhaustive evaluation.
    pub fn new() -> Self {
        SpillBound { refine_bounds: false, cache: Mutex::new(HashMap::new()) }
    }

    /// SpillBound with bisection-refined bound learning, matching what a
    /// selectivity monitor would actually observe. Produces the
    /// Manhattan-profile traces of Fig. 7 / Table 3.
    pub fn with_refined_bounds() -> Self {
        SpillBound { refine_bounds: true, cache: Mutex::new(HashMap::new()) }
    }

    fn choice(
        &self,
        rt: &RobustRuntime<'_>,
        band: usize,
        know: &Knowledge,
        unlearnt: &BTreeSet<EppId>,
    ) -> Arc<ContourChoice> {
        let key = state_key(rt, band, know);
        if let Some(c) = self.cache.lock().get(&key) {
            return Arc::clone(c);
        }
        let c = Arc::new(contour_choice(rt, band, know, unlearnt));
        self.cache.lock().insert(key, Arc::clone(&c));
        c
    }
}

impl Default for SpillBound {
    fn default() -> Self {
        SpillBound::new()
    }
}

impl Discovery for SpillBound {
    fn name(&self) -> &'static str {
        "SB"
    }

    fn discover(&self, rt: &RobustRuntime<'_>, qa: Cell) -> DiscoveryTrace {
        let grid = rt.grid();
        let qa_loc = grid.location(qa);
        let band_hist = crate::obs::band_histogram(self.name());
        let m = rt.num_bands();
        let mut sup = rt.supervisor(self.name());
        let mut know = Knowledge::new(grid);
        let mut steps = Vec::new();
        let mut total = 0.0;
        let mut band = 0usize;
        let tracer = rqp_obs::current();

        loop {
            // keep the next contour flooding while this one executes
            rt.prefetch_band(band + 1);
            let mut band_span = tracer
                .span(rqp_obs::names::SPAN_CONTOUR_BAND, rqp_obs::SpanKind::Contour)
                .with_histogram(&band_hist);
            band_span.attr("band", band as u64);
            let _band_span = band_span;
            let unlearnt = know.unlearnt();
            if unlearnt.len() <= 1 || band >= m {
                bouquet_endgame(
                    rt,
                    &know,
                    band.min(m - 1),
                    qa,
                    &qa_loc,
                    &mut sup,
                    &mut steps,
                    &mut total,
                );
                break;
            }
            let choice = self.choice(rt, band, &know, &unlearnt);
            let mut learnt_exact = false;
            for &j in &unlearnt {
                let Some((cell, plan_id)) = choice.per_dim[j.0] else {
                    continue; // no contour plan spills on this epp: skip (§4.2)
                };
                let plan = rt.plan(plan_id);
                let budget = rt.oracle_cost(cell);
                rt.debug_check_band_budget(band, budget);
                let reference = grid.location(cell);
                // supervised: retried on injected failures, backed by a
                // clean surrogate execution, so the observation is always
                // sound
                let out = sup.execute_spill(
                    &rt.engine,
                    &plan,
                    &PlanRef::Posp(plan_id),
                    band,
                    j,
                    &reference,
                    &qa_loc,
                    budget,
                    self.refine_bounds,
                    &mut total,
                    &mut steps,
                );
                if out.learned.is_exact() {
                    know.learn_exact(j, out.learned.value());
                    learnt_exact = true;
                    break; // re-derive choices on the same contour
                } else {
                    know.learn_bound(j, out.learned.value());
                }
            }
            if !learnt_exact {
                // half-space pruning: qa lies beyond this contour
                crate::obs::half_space_prune(self.name(), band, unlearnt.len());
                band += 1;
            }
        }

        let trace = DiscoveryTrace {
            algo: self.name(),
            qa,
            steps,
            total_cost: total,
            oracle_cost: rt.oracle_cost(qa),
            failure: None,
            quarantined: sup.quarantined(),
        };
        crate::obs::record_trace(&trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guarantees::sb_guarantee;
    use crate::test_support::{example_2d, example_3d};
    use crate::trace::ExecMode;
    use rqp_ess::EssConfig;
    use rqp_qplan::CostModel;

    fn runtime_2d() -> RobustRuntime<'static> {
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 12, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap()
    }

    #[test]
    fn completes_everywhere_within_band_adjusted_guarantee() {
        let rt = runtime_2d();
        let sb = SpillBound::new();
        // band-discretized guarantee: 2×(D²+3D) (see DESIGN.md)
        let bound = 2.0 * sb_guarantee(rt.dims());
        for qa in rt.grid().cells() {
            let t = sb.discover(&rt, qa);
            assert!(t.subopt() >= 1.0 - 1e-9, "cell {qa}: subopt {} < 1", t.subopt());
            assert!(
                t.subopt() <= bound + 1e-9,
                "cell {qa}: subopt {} exceeds band-adjusted bound {bound}",
                t.subopt()
            );
        }
    }

    #[test]
    fn per_contour_spill_executions_bounded_by_d() {
        let rt = runtime_2d();
        let sb = SpillBound::new();
        let d = rt.dims();
        for qa in [0, rt.grid().num_cells() / 2, rt.grid().terminus()] {
            let t = sb.discover(&rt, qa);
            let mut consecutive_fail = 0usize;
            let mut prev_band = usize::MAX;
            for s in &t.steps {
                if s.band != prev_band {
                    consecutive_fail = 0;
                    prev_band = s.band;
                }
                if matches!(s.mode, ExecMode::Spill(_)) && !s.completed {
                    consecutive_fail += 1;
                    assert!(
                        consecutive_fail <= d,
                        "more than D consecutive failed spills on one contour"
                    );
                } else {
                    consecutive_fail = 0;
                }
            }
        }
    }

    #[test]
    fn learning_never_overshoots_truth() {
        let rt = runtime_2d();
        let sb = SpillBound::with_refined_bounds();
        let grid = rt.grid();
        for qa in (0..grid.num_cells()).step_by(7) {
            let qa_loc = grid.location(qa);
            let t = sb.discover(&rt, qa);
            for s in &t.steps {
                if let Some((j, v, exact)) = s.learned {
                    let truth = qa_loc.get(j.0).value();
                    if exact {
                        assert_eq!(v, truth, "cell {qa}: exact learning mismatch");
                    } else {
                        assert!(v < truth + 1e-15, "cell {qa}: bound {v} overshoots {truth}");
                    }
                }
            }
        }
    }

    #[test]
    fn three_dim_instance_completes_and_retires_epps_in_order() {
        let (catalog, query) = example_3d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        let rt = RobustRuntime::compile(
            catalog,
            query,
            CostModel::default(),
            EssConfig { resolution: 7, min_sel: 1e-6, ..Default::default() },
        )
        .unwrap();
        let sb = SpillBound::new();
        let bound = 2.0 * sb_guarantee(3);
        for qa in (0..rt.grid().num_cells()).step_by(11) {
            let t = sb.discover(&rt, qa);
            assert!(t.steps.last().unwrap().completed, "cell {qa} did not complete");
            assert!(t.subopt() <= bound + 1e-9, "cell {qa}: subopt {} exceeds {bound}", t.subopt());
        }
    }

    #[test]
    fn cost_error_stays_within_inflated_guarantee() {
        // §7: with a δ-bounded cost-model error the MSO guarantee inflates
        // by at most (1+δ)²
        let (catalog, query) = example_2d();
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        for delta in [0.1, 0.3, 0.5] {
            let mut rt = RobustRuntime::compile(
                catalog,
                query,
                CostModel::default(),
                EssConfig { resolution: 10, min_sel: 1e-6, ..Default::default() },
            )
            .unwrap();
            rt.set_cost_error(delta);
            let bound = (1.0 + delta) * (1.0 + delta) * 2.0 * sb_guarantee(rt.dims());
            let sb = SpillBound::new();
            for qa in rt.grid().cells() {
                let t = sb.discover(&rt, qa);
                assert!(t.steps.last().unwrap().completed, "δ={delta} cell {qa}");
                assert!(
                    t.subopt() <= bound + 1e-9,
                    "δ={delta} cell {qa}: subopt {} exceeds inflated bound {bound}",
                    t.subopt()
                );
            }
        }
    }

    #[test]
    fn empirical_mso_beats_plan_bouquet_on_the_example() {
        use crate::bouquet::PlanBouquet;
        let rt = runtime_2d();
        let sb = SpillBound::new();
        let pb = PlanBouquet::new();
        let (mut mso_sb, mut mso_pb) = (0.0f64, 0.0f64);
        for qa in rt.grid().cells() {
            mso_sb = mso_sb.max(sb.discover(&rt, qa).subopt());
            mso_pb = mso_pb.max(pb.discover(&rt, qa).subopt());
        }
        // the paper's headline comparison: SB's empirical MSO should not be
        // materially worse than PB's (and is typically much better)
        assert!(mso_sb <= mso_pb * 1.5 + 1e-9, "SB MSOe {mso_sb} much worse than PB MSOe {mso_pb}");
    }
}
