//! The closed-form MSO guarantees (continuum formulas, as reported in the
//! paper's figures).

/// PlanBouquet's behavioural guarantee `4(1+λ)·ρ_red` (§6.2.1).
pub fn pb_guarantee(rho_red: usize, lambda: f64) -> f64 {
    4.0 * (1.0 + lambda) * rho_red as f64
}

/// SpillBound's structural guarantee `D² + 3D` (Theorem 4.5).
///
/// Computed in `f64` so that pathologically large `D` degrades to a finite
/// (approximate) bound instead of silently wrapping in integer arithmetic.
pub fn sb_guarantee(d: usize) -> f64 {
    let d = d as f64;
    d.mul_add(d, 3.0 * d)
}

/// AlignedBound's guarantee range `[2D+2, D²+3D]` (§5.3).
///
/// Like [`sb_guarantee`], evaluated in `f64` to avoid integer overflow.
pub fn ab_guarantee_range(d: usize) -> (f64, f64) {
    ((d as f64).mul_add(2.0, 2.0), sb_guarantee(d))
}

/// The 2-D special case bound of Theorem 4.2.
pub fn sb_guarantee_2d() -> f64 {
    10.0
}

/// The lower bound of Theorem 4.6: every deterministic half-space-pruning
/// algorithm has MSO at least `D`.
pub fn lower_bound(d: usize) -> f64 {
    d as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_the_papers_examples() {
        // Q91 with six epps: PB 96 (ρ_red = 20, λ = 0.2), SB 54 (§1.4)
        assert_eq!(pb_guarantee(20, 0.2), 96.0);
        assert_eq!(sb_guarantee(6), 54.0);
        // 4D_Q91: PB 52.8 (ρ_red = 11), SB 28 (§6.2.1)
        assert!((pb_guarantee(11, 0.2) - 52.8).abs() < 1e-12);
        assert_eq!(sb_guarantee(4), 28.0);
        // the 2-D theorem matches the general formula
        assert_eq!(sb_guarantee(2), sb_guarantee_2d());
    }

    #[test]
    fn huge_dimension_counts_do_not_overflow() {
        // d² once overflowed usize here and wrapped to a tiny bound;
        // f64 arithmetic keeps the guarantee monotone and finite
        let huge = usize::MAX / 2;
        let g = sb_guarantee(huge);
        assert!(g.is_finite() && g > (huge as f64) * (huge as f64) * 0.99);
        let (lo, hi) = ab_guarantee_range(huge);
        assert!(lo.is_finite() && lo > huge as f64);
        assert!(hi >= lo, "range must stay ordered at the boundary");
        // monotonicity across the u32 boundary where usize math wrapped
        assert!(sb_guarantee(1 << 32) > sb_guarantee((1 << 32) - 1));
    }

    #[test]
    fn ab_range_brackets_linear_and_quadratic() {
        let (lo, hi) = ab_guarantee_range(6);
        assert_eq!(lo, 14.0);
        assert_eq!(hi, 54.0);
        assert!(lower_bound(6) <= lo);
    }
}
