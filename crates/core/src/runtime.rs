//! The shared runtime every robust algorithm executes against.

use rqp_catalog::{Catalog, Estimator, Query, RqpError, RqpResult, SelVector};
use rqp_ess::{Cell, CompileCache, Ess, EssConfig, Grid, LazyEss, LazyStart, PlanId};
use rqp_executor::Engine;
use rqp_optimizer::Optimizer;
use rqp_qplan::{CostModel, PlanNode};
use std::sync::Arc;

/// The compiled selectivity surface a runtime executes against: either a
/// finished [`Ess`] (eager compile, the pre-lazy behaviour) or a
/// [`LazyEss`] that materializes contour bands on demand. Discovery
/// algorithms only talk to the [`RobustRuntime`] facade, so they pull
/// bands as the doubling walk reaches them — a discovery that terminates
/// on contour `k` never pays for compiling bands above `k`.
enum Surface {
    /// A fully compiled surface (shared across sessions by the serve
    /// registry).
    Eager(Arc<Ess>),
    /// A band-by-band anytime surface; bands above the compile frontier
    /// are costed only when something asks for them.
    Lazy(Arc<LazyEss>),
}

/// A query admitted for robust processing: catalog, query, optimizer,
/// simulated execution engine, and the compiled ESS (POSP + contours).
///
/// Compiling the runtime performs the offline work of §7 ("construction of
/// the contours in the ESS … repeated calls to the optimizer … can be
/// carried out in parallel"); everything the discovery algorithms do at
/// "run-time" is lookups into this structure plus budgeted executions.
/// With [`RobustRuntime::compile_lazy`] that offline work is deferred:
/// only the two ladder anchors are costed up front and each contour band
/// is flooded the first time discovery (or a prefetch) asks for it.
///
/// The surface is held behind an [`Arc`] so many concurrent sessions (the
/// `rqp-serve` registry) can share one compiled surface; discovery runs
/// only read it, so sharing is free.
pub struct RobustRuntime<'a> {
    /// Catalog statistics.
    pub catalog: &'a Catalog,
    /// The user query.
    pub query: &'a Query,
    /// The DP optimizer bound to the query.
    pub optimizer: Optimizer<'a>,
    /// The simulated execution engine.
    pub engine: Engine<'a>,
    /// The compiled (or lazily compiling) error-prone selectivity space.
    surface: Surface,
    /// The native optimizer's estimated ESS location `qe`, computed once at
    /// admission so run-time discovery never has to re-estimate (and never
    /// has to handle estimation failure).
    qe: SelVector,
    /// Retry policy every discovery run's [`crate::Supervisor`] starts
    /// from.
    retry: crate::supervise::RetryPolicy,
    /// Session deadline threaded into every discovery run's supervisor
    /// (serving tier); [`rqp_obs::Deadline::none`] — the default — never
    /// lapses.
    deadline: rqp_obs::Deadline,
}

impl<'a> RobustRuntime<'a> {
    /// Compile the runtime eagerly: build the optimizer, the engine, and
    /// the full ESS before returning.
    ///
    /// Errors if the query has no error-prone predicates (there is nothing
    /// to discover), fails validation, or requests an unrepresentable ESS
    /// grid.
    pub fn compile(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |optimizer| {
            Ok(Surface::Eager(Arc::new(Ess::compile(optimizer, config)?)))
        })
    }

    /// Like [`RobustRuntime::compile`], but consulting an explicit
    /// per-instance persistent [`CompileCache`] instead of the process
    /// global (multi-tenant embedders thread their own cache policy).
    pub fn compile_with_cache(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
        cache: Option<&CompileCache>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |optimizer| {
            Ok(Surface::Eager(Arc::new(Ess::compile_cached(optimizer, config, cache)?)))
        })
    }

    /// Admit the query against a *lazy anytime* surface: only the ladder
    /// anchors (origin and terminus) are costed now; each contour band is
    /// flooded the first time the discovery walk, an oracle peek, or a
    /// [`RobustRuntime::prefetch_band`] reaches it.
    pub fn compile_lazy(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |_| {
            Ok(Surface::Lazy(LazyEss::begin(catalog, query, model, config)?))
        })
    }

    /// Like [`RobustRuntime::compile_lazy`], but consulting a persistent
    /// [`CompileCache`] first: a full snapshot hit admits an eager surface
    /// outright, a partial snapshot warm-starts the lazy frontier at the
    /// stored band cursor.
    pub fn compile_lazy_cached(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
        cache: Option<&CompileCache>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |_| {
            Ok(match LazyEss::begin_cached(catalog, query, model, config, cache)? {
                LazyStart::Full(ess) => Surface::Eager(ess),
                LazyStart::Lazy(lazy) => Surface::Lazy(lazy),
            })
        })
    }

    /// Admit a session against an ESS compiled elsewhere (the serve
    /// registry's shared, fingerprint-keyed surfaces). The ESS must have
    /// been compiled for this same (catalog, query, model) triple; the
    /// dimension check below catches gross mismatches, the fingerprint
    /// keying upstream is what guarantees the rest.
    pub fn with_shared_ess(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        ess: Arc<Ess>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |_| {
            if ess.grid().dims() != query.dims() {
                return Err(RqpError::DimensionMismatch {
                    expected: query.dims(),
                    got: ess.grid().dims(),
                });
            }
            Ok(Surface::Eager(ess))
        })
    }

    /// Admit a session against a lazy surface compiling elsewhere (the
    /// serve registry's incremental snapshots): peers share one frontier,
    /// and each session's discovery walk only waits for the bands it
    /// actually pulls.
    pub fn with_shared_lazy(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        lazy: Arc<LazyEss>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |_| {
            if lazy.grid().dims() != query.dims() {
                return Err(RqpError::DimensionMismatch {
                    expected: query.dims(),
                    got: lazy.grid().dims(),
                });
            }
            Ok(Surface::Lazy(lazy))
        })
    }

    fn admit(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        surface_for: impl FnOnce(&Optimizer<'a>) -> RqpResult<Surface>,
    ) -> RqpResult<Self> {
        if query.dims() < 1 {
            return Err(RqpError::InvalidQuery(format!(
                "query {} has no error-prone predicates",
                query.name
            )));
        }
        query.validate(catalog)?;
        let qe = Estimator::new(catalog).estimated_location(query)?;
        let optimizer = Optimizer::new(catalog, query, model);
        let engine = Engine::new(catalog, query, model);
        let surface = surface_for(&optimizer)?;
        // a lazy surface has no finished contour set to check yet; its
        // bands are checked incrementally as the budget checks fire
        if let Surface::Eager(ess) = &surface {
            crate::invariants::debug_check_contours(ess);
        }
        Ok(RobustRuntime {
            catalog,
            query,
            optimizer,
            engine,
            surface,
            qe,
            retry: crate::supervise::RetryPolicy::default(),
            deadline: rqp_obs::Deadline::none(),
        })
    }

    /// Number of ESS dimensions, `D`.
    pub fn dims(&self) -> usize {
        self.query.dims()
    }

    /// The estimated ESS location `qe` (the traditional optimizer's belief).
    pub fn estimated_location(&self) -> &SelVector {
        &self.qe
    }

    /// Whether the surface is still compiling lazily.
    pub fn is_lazy(&self) -> bool {
        matches!(self.surface, Surface::Lazy(_))
    }

    /// The ESS discretization grid.
    pub fn grid(&self) -> &Grid {
        match &self.surface {
            Surface::Eager(ess) => ess.grid(),
            Surface::Lazy(lazy) => lazy.grid(),
        }
    }

    /// Number of iso-cost contour bands, `m`.
    pub fn num_bands(&self) -> usize {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.num_bands(),
            Surface::Lazy(lazy) => lazy.num_bands(),
        }
    }

    /// Lower cost edge `CC_band` of a contour band.
    pub fn contour_cost(&self, band: usize) -> f64 {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.cc(band),
            Surface::Lazy(lazy) => lazy.cc(band),
        }
    }

    /// The contour doubling ratio `r`.
    pub fn contour_ratio(&self) -> f64 {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.ratio,
            Surface::Lazy(lazy) => lazy.ratio(),
        }
    }

    /// The band a cell belongs to. On a lazy surface this is a memoized
    /// single-cell peek, never a band compile.
    pub fn band_of(&self, cell: Cell) -> usize {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.band_of(cell),
            Surface::Lazy(lazy) => lazy.band_of(cell),
        }
    }

    /// The cells of a contour band, ascending by cell index. On a lazy
    /// surface this compiles through `band` first — the discovery walk's
    /// pull point.
    pub fn band_cells(&self, band: usize) -> Arc<Vec<Cell>> {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.cells_arc(band),
            Surface::Lazy(lazy) => lazy.band_cells(band),
        }
    }

    /// Number of distinct plans on a contour band (plan density).
    pub fn band_density(&self, band: usize) -> usize {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.density(&ess.posp, band),
            Surface::Lazy(lazy) => {
                let cells = lazy.band_cells(band);
                let mut plans: Vec<PlanId> = cells.iter().map(|&c| lazy.plan_id_at(c)).collect();
                plans.sort_unstable();
                plans.dedup();
                plans.len()
            }
        }
    }

    /// Contour bands the surface has materialized so far (always
    /// `num_bands` for an eager surface).
    pub fn bands_compiled(&self) -> usize {
        match &self.surface {
            Surface::Eager(ess) => ess.contours.num_bands(),
            Surface::Lazy(lazy) => lazy.bands_compiled(),
        }
    }

    /// Ask a background task to compile through `band` while the caller
    /// keeps executing on lower bands (no-op on an eager surface).
    pub fn prefetch_band(&self, band: usize) {
        if let Surface::Lazy(lazy) = &self.surface {
            lazy.prefetch(band);
        }
    }

    /// Oracle cost `Cost(P_qa, qa)` for a grid cell. On a lazy surface a
    /// memoized single-cell peek.
    pub fn oracle_cost(&self, qa: Cell) -> f64 {
        match &self.surface {
            Surface::Eager(ess) => ess.posp.cost(qa),
            Surface::Lazy(lazy) => lazy.cost(qa),
        }
    }

    /// The optimal (POSP) plan id at a cell. Ids are stable within one
    /// surface; a lazy surface's ids live in its own discovery-order space
    /// until [`RobustRuntime::ess`] canonicalizes them.
    pub fn plan_id_at(&self, cell: Cell) -> PlanId {
        match &self.surface {
            Surface::Eager(ess) => ess.posp.plan_id(cell),
            Surface::Lazy(lazy) => lazy.plan_id_at(cell),
        }
    }

    /// The plan with a surface plan id.
    pub fn plan(&self, id: PlanId) -> Arc<PlanNode> {
        match &self.surface {
            Surface::Eager(ess) => Arc::clone(ess.posp.plan(id)),
            Surface::Lazy(lazy) => lazy.plan(id),
        }
    }

    /// Cost of an arbitrary surface plan at an arbitrary cell.
    pub fn plan_cost_at(&self, id: PlanId, cell: Cell) -> f64 {
        match &self.surface {
            Surface::Eager(ess) => ess.posp.cost_of_plan_at(&self.optimizer, id, cell),
            Surface::Lazy(lazy) => {
                let plan = lazy.plan(id);
                self.optimizer.cost_of(&plan, &lazy.grid().location(cell))
            }
        }
    }

    /// An opaque identity for the underlying surface. Plan ids are
    /// surface-relative (eager surfaces number plans in cell-index order,
    /// lazy surfaces in flood-discovery order), so per-algorithm memo
    /// caches must never reuse a decision holding plan ids across
    /// runtimes backed by different surfaces — they key on this token.
    pub fn surface_token(&self) -> usize {
        match &self.surface {
            Surface::Eager(ess) => Arc::as_ptr(ess) as usize,
            Surface::Lazy(lazy) => Arc::as_ptr(lazy) as *const () as usize,
        }
    }

    /// Every plan id the surface has discovered so far (the full POSP pool
    /// for an eager surface; the pool grows as a lazy surface compiles).
    pub fn plan_pool(&self) -> Vec<PlanId> {
        match &self.surface {
            Surface::Eager(ess) => ess.posp.registry().iter().map(|(id, _)| id).collect(),
            Surface::Lazy(lazy) => lazy.plan_pool(),
        }
    }

    /// Check a POSP-derived budget against the band's doubling window
    /// (debug builds only; see [`crate::invariants`]).
    pub fn debug_check_band_budget(&self, band: usize, budget: f64) {
        crate::invariants::debug_check_band_budget_parts(
            self.contour_cost(band),
            self.contour_ratio(),
            band + 1 >= self.num_bands(),
            band,
            budget,
        );
    }

    /// Materialize the full surface: for an eager runtime a free clone of
    /// the shared [`Arc`]; for a lazy runtime this compiles every
    /// remaining band and canonicalizes the result (byte-identical to an
    /// eager compile). Whole-surface consumers — anorexic reduction,
    /// snapshot capture, worst-case sweeps — pay the full compile exactly
    /// once, here.
    pub fn ess(&self) -> RqpResult<Arc<Ess>> {
        match &self.surface {
            Surface::Eager(ess) => Ok(Arc::clone(ess)),
            Surface::Lazy(lazy) => lazy.finish(),
        }
    }

    /// Replace the engine with a δ-perturbed one (§7: bounded cost-model
    /// error — actual execution costs deviate from the model by up to a
    /// `(1+delta)` factor either way; the MSO guarantees inflate by at most
    /// `(1+delta)²`).
    pub fn set_cost_error(&mut self, delta: f64) {
        let injector = self.engine.injector();
        self.engine =
            Engine::with_cost_error(self.catalog, self.query, self.optimizer.model(), delta);
        if let Some(inj) = injector {
            self.engine = self.engine.with_injector(inj);
        }
    }

    /// Attach a fault injector to the engine (chaos testing): every
    /// subsequent execution consults it once and applies whatever fault it
    /// returns. The supervision layer in [`crate::Supervisor`] recovers.
    pub fn set_fault_injector(&mut self, injector: &'a dyn rqp_executor::FaultInjector) {
        self.engine = self.engine.with_injector(injector);
    }

    /// Detach any fault injector from the engine.
    pub fn clear_fault_injector(&mut self) {
        self.engine = self.engine.without_injector();
    }

    /// The retry policy discovery runs supervise executions with.
    pub fn retry_policy(&self) -> crate::supervise::RetryPolicy {
        self.retry
    }

    /// Replace the supervision retry policy.
    pub fn set_retry_policy(&mut self, policy: crate::supervise::RetryPolicy) {
        self.retry = policy;
    }

    /// Bound every subsequent discovery run by a session deadline (see
    /// [`crate::Supervisor::with_deadline`]).
    pub fn set_deadline(&mut self, deadline: rqp_obs::Deadline) {
        self.deadline = deadline;
    }

    /// The session deadline in force ([`rqp_obs::Deadline::none`] unless
    /// [`set_deadline`](Self::set_deadline) was called).
    pub fn deadline(&self) -> rqp_obs::Deadline {
        self.deadline
    }

    /// A fresh supervisor for one discovery run: the runtime's retry
    /// policy and session deadline, the calling thread's tracer.
    pub fn supervisor(&self, algo: &'static str) -> crate::supervise::Supervisor {
        crate::supervise::Supervisor::new(algo, self.retry).with_deadline(self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;
    use crate::Discovery;

    #[test]
    fn compile_builds_all_components() {
        let (catalog, query) = example_2d();
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(rt.dims(), 2);
        assert_eq!(rt.grid().num_cells(), 100);
        assert!(rt.oracle_cost(0) > 0.0);
        assert!(rt.num_bands() > 1);
        assert!(!rt.is_lazy());
    }

    #[test]
    fn shared_ess_admission_reuses_the_surface() {
        let (catalog, query) = example_2d();
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 10, ..Default::default() },
        )
        .unwrap();
        let shared = rt.ess().unwrap();
        let rt2 =
            RobustRuntime::with_shared_ess(&catalog, &query, CostModel::default(), shared).unwrap();
        assert!(Arc::ptr_eq(&rt.ess().unwrap(), &rt2.ess().unwrap()), "no recompile, same surface");
        assert_eq!(rt2.dims(), 2);
    }

    #[test]
    fn lazy_admission_matches_eager_facade_answers() {
        let (catalog, query) = example_2d();
        let cfg = EssConfig { resolution: 10, ..Default::default() };
        let eager = RobustRuntime::compile(&catalog, &query, CostModel::default(), cfg).unwrap();
        let lazy =
            RobustRuntime::compile_lazy(&catalog, &query, CostModel::default(), cfg).unwrap();
        assert!(lazy.is_lazy());
        assert_eq!(lazy.num_bands(), eager.num_bands());
        assert_eq!(lazy.contour_ratio(), eager.contour_ratio());
        for band in 0..eager.num_bands() {
            assert_eq!(lazy.contour_cost(band), eager.contour_cost(band), "ladder edge {band}");
            assert_eq!(*lazy.band_cells(band), *eager.band_cells(band), "band {band}");
            assert_eq!(lazy.band_density(band), eager.band_density(band), "density {band}");
        }
        for qa in eager.grid().cells() {
            assert_eq!(lazy.oracle_cost(qa).to_bits(), eager.oracle_cost(qa).to_bits());
            assert_eq!(lazy.band_of(qa), eager.band_of(qa));
        }
        // materializing the lazy surface canonicalizes to the eager bytes
        let a = rqp_ess::PospSnapshot::capture(&eager.ess().unwrap()).to_json().unwrap();
        let b = rqp_ess::PospSnapshot::capture(&lazy.ess().unwrap()).to_json().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_discovery_only_compiles_pulled_bands() {
        let (catalog, query) = example_2d();
        let cfg = EssConfig { resolution: 10, ..Default::default() };
        let rt = RobustRuntime::compile_lazy(&catalog, &query, CostModel::default(), cfg).unwrap();
        let origin = rt.grid().origin();
        let t = crate::bouquet::PlanBouquet::new().discover(&rt, origin);
        assert!(t.steps.last().unwrap().completed);
        // the origin lies on the first contour: the walk must not have
        // pulled bands anywhere near the top of the ladder
        let Surface::Lazy(lazy) = &rt.surface else { panic!("lazy runtime") };
        assert!(
            lazy.bands_compiled() < rt.num_bands(),
            "origin discovery compiled all {} bands",
            rt.num_bands()
        );
    }
}
