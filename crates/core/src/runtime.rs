//! The shared runtime every robust algorithm executes against.

use rqp_catalog::{Catalog, Estimator, Query, RqpError, RqpResult, SelVector};
use rqp_ess::{CompileCache, Ess, EssConfig};
use rqp_executor::Engine;
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;
use std::sync::Arc;

/// A query admitted for robust processing: catalog, query, optimizer,
/// simulated execution engine, and the compiled ESS (POSP + contours).
///
/// Compiling the runtime performs the offline work of §7 ("construction of
/// the contours in the ESS … repeated calls to the optimizer … can be
/// carried out in parallel"); everything the discovery algorithms do at
/// "run-time" is lookups into this structure plus budgeted executions.
///
/// The ESS is held behind an [`Arc`] so many concurrent sessions (the
/// `rqp-serve` registry) can share one compiled surface; discovery runs
/// only read it, so sharing is free. Field access is unchanged for
/// single-session callers thanks to deref coercion.
pub struct RobustRuntime<'a> {
    /// Catalog statistics.
    pub catalog: &'a Catalog,
    /// The user query.
    pub query: &'a Query,
    /// The DP optimizer bound to the query.
    pub optimizer: Optimizer<'a>,
    /// The simulated execution engine.
    pub engine: Engine<'a>,
    /// The compiled error-prone selectivity space (shareable across
    /// sessions).
    pub ess: Arc<Ess>,
    /// The native optimizer's estimated ESS location `qe`, computed once at
    /// admission so run-time discovery never has to re-estimate (and never
    /// has to handle estimation failure).
    qe: SelVector,
    /// Retry policy every discovery run's [`crate::Supervisor`] starts
    /// from.
    retry: crate::supervise::RetryPolicy,
    /// Session deadline threaded into every discovery run's supervisor
    /// (serving tier); [`rqp_obs::Deadline::none`] — the default — never
    /// lapses.
    deadline: rqp_obs::Deadline,
}

impl<'a> RobustRuntime<'a> {
    /// Compile the runtime: build the optimizer, the engine, and the ESS.
    ///
    /// Errors if the query has no error-prone predicates (there is nothing
    /// to discover), fails validation, or requests an unrepresentable ESS
    /// grid.
    pub fn compile(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |optimizer| {
            Ok(Arc::new(Ess::compile(optimizer, config)?))
        })
    }

    /// Like [`RobustRuntime::compile`], but consulting an explicit
    /// per-instance persistent [`CompileCache`] instead of the process
    /// global (multi-tenant embedders thread their own cache policy).
    pub fn compile_with_cache(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        config: EssConfig,
        cache: Option<&CompileCache>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |optimizer| {
            Ok(Arc::new(Ess::compile_cached(optimizer, config, cache)?))
        })
    }

    /// Admit a session against an ESS compiled elsewhere (the serve
    /// registry's shared, fingerprint-keyed surfaces). The ESS must have
    /// been compiled for this same (catalog, query, model) triple; the
    /// dimension check below catches gross mismatches, the fingerprint
    /// keying upstream is what guarantees the rest.
    pub fn with_shared_ess(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        ess: Arc<Ess>,
    ) -> RqpResult<Self> {
        Self::admit(catalog, query, model, |_| {
            if ess.grid().dims() != query.dims() {
                return Err(RqpError::DimensionMismatch {
                    expected: query.dims(),
                    got: ess.grid().dims(),
                });
            }
            Ok(ess)
        })
    }

    fn admit(
        catalog: &'a Catalog,
        query: &'a Query,
        model: CostModel,
        ess_for: impl FnOnce(&Optimizer<'a>) -> RqpResult<Arc<Ess>>,
    ) -> RqpResult<Self> {
        if query.dims() < 1 {
            return Err(RqpError::InvalidQuery(format!(
                "query {} has no error-prone predicates",
                query.name
            )));
        }
        query.validate(catalog)?;
        let qe = Estimator::new(catalog).estimated_location(query)?;
        let optimizer = Optimizer::new(catalog, query, model);
        let engine = Engine::new(catalog, query, model);
        let ess = ess_for(&optimizer)?;
        crate::invariants::debug_check_contours(&ess);
        Ok(RobustRuntime {
            catalog,
            query,
            optimizer,
            engine,
            ess,
            qe,
            retry: crate::supervise::RetryPolicy::default(),
            deadline: rqp_obs::Deadline::none(),
        })
    }

    /// Number of ESS dimensions, `D`.
    pub fn dims(&self) -> usize {
        self.query.dims()
    }

    /// The estimated ESS location `qe` (the traditional optimizer's belief).
    pub fn estimated_location(&self) -> &SelVector {
        &self.qe
    }

    /// Replace the engine with a δ-perturbed one (§7: bounded cost-model
    /// error — actual execution costs deviate from the model by up to a
    /// `(1+delta)` factor either way; the MSO guarantees inflate by at most
    /// `(1+delta)²`).
    pub fn set_cost_error(&mut self, delta: f64) {
        let injector = self.engine.injector();
        self.engine =
            Engine::with_cost_error(self.catalog, self.query, self.optimizer.model(), delta);
        if let Some(inj) = injector {
            self.engine = self.engine.with_injector(inj);
        }
    }

    /// Attach a fault injector to the engine (chaos testing): every
    /// subsequent execution consults it once and applies whatever fault it
    /// returns. The supervision layer in [`crate::Supervisor`] recovers.
    pub fn set_fault_injector(&mut self, injector: &'a dyn rqp_executor::FaultInjector) {
        self.engine = self.engine.with_injector(injector);
    }

    /// Detach any fault injector from the engine.
    pub fn clear_fault_injector(&mut self) {
        self.engine = self.engine.without_injector();
    }

    /// The retry policy discovery runs supervise executions with.
    pub fn retry_policy(&self) -> crate::supervise::RetryPolicy {
        self.retry
    }

    /// Replace the supervision retry policy.
    pub fn set_retry_policy(&mut self, policy: crate::supervise::RetryPolicy) {
        self.retry = policy;
    }

    /// Bound every subsequent discovery run by a session deadline (see
    /// [`crate::Supervisor::with_deadline`]).
    pub fn set_deadline(&mut self, deadline: rqp_obs::Deadline) {
        self.deadline = deadline;
    }

    /// The session deadline in force ([`rqp_obs::Deadline::none`] unless
    /// [`set_deadline`](Self::set_deadline) was called).
    pub fn deadline(&self) -> rqp_obs::Deadline {
        self.deadline
    }

    /// A fresh supervisor for one discovery run: the runtime's retry
    /// policy and session deadline, the calling thread's tracer.
    pub fn supervisor(&self, algo: &'static str) -> crate::supervise::Supervisor {
        crate::supervise::Supervisor::new(algo, self.retry).with_deadline(self.deadline)
    }

    /// Oracle cost `Cost(P_qa, qa)` for a grid cell.
    pub fn oracle_cost(&self, qa: rqp_ess::Cell) -> f64 {
        self.ess.posp.cost(qa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::example_2d;

    #[test]
    fn compile_builds_all_components() {
        let (catalog, query) = example_2d();
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(rt.dims(), 2);
        assert_eq!(rt.ess.grid().num_cells(), 100);
        assert!(rt.oracle_cost(0) > 0.0);
        assert!(rt.ess.contours.num_bands() > 1);
    }

    #[test]
    fn shared_ess_admission_reuses_the_surface() {
        let (catalog, query) = example_2d();
        let rt = RobustRuntime::compile(
            &catalog,
            &query,
            CostModel::default(),
            EssConfig { resolution: 10, ..Default::default() },
        )
        .unwrap();
        let shared = Arc::clone(&rt.ess);
        let rt2 =
            RobustRuntime::with_shared_ess(&catalog, &query, CostModel::default(), shared).unwrap();
        assert!(Arc::ptr_eq(&rt.ess, &rt2.ess), "no recompile, same surface");
        assert_eq!(rt2.dims(), 2);
    }
}
