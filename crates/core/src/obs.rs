//! Instrumentation shared by the discovery algorithms.
//!
//! Every algorithm funnels its finished [`DiscoveryTrace`] through
//! [`record_trace`], which bumps the per-algorithm run/step/completion
//! counters and — when an event sink is installed — replays the trace's
//! learned selectivities as `learned_selectivity` events and emits one
//! `discovery_complete` summary. Discovery runs in rayon threads during
//! exhaustive MSO evaluation, so everything here is lock-free past the
//! registry lookup.

use crate::trace::DiscoveryTrace;
use rqp_obs::{global, labeled, names, Counter, Histogram};
use std::sync::Arc;

/// Per-algorithm counter handle: `base{algo="<name>"}`.
pub(crate) fn algo_counter(base: &str, algo: &str) -> Arc<Counter> {
    global().counter(&labeled(base, &[("algo", algo)]))
}

/// Per-algorithm band-latency histogram:
/// `rqp_discovery_band_seconds{algo="<name>"}`.
pub(crate) fn band_histogram(algo: &str) -> Arc<Histogram> {
    global().histogram(
        &labeled(names::DISCOVERY_BAND_SECONDS, &[("algo", algo)]),
        &rqp_obs::default_latency_buckets(),
    )
}

/// Count one half-space pruning band promotion (SB/AB learnt only a lower
/// bound on the current contour and jumped to the next one, §3.1.2) and
/// emit the matching event.
pub(crate) fn half_space_prune(algo: &str, band: usize, epp_bounds: usize) {
    algo_counter(names::DISCOVERY_HALF_SPACE_PRUNES, algo).inc();
    if rqp_obs::events_enabled() {
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_HALF_SPACE_PRUNING)
                .with("algo", algo)
                .with("band", band as u64)
                .with("bounded_dims", epp_bounds as u64),
        );
    }
}

/// Count one supervised retry of a failed execution and emit the matching
/// event.
pub(crate) fn supervisor_retry(algo: &str, attempt: u32, budget: f64) {
    global().counter(names::SUPERVISOR_RETRIES).inc();
    if rqp_obs::events_enabled() {
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_EXECUTION_RETRY)
                .with("algo", algo)
                .with("attempt", attempt as u64)
                .with("budget", budget),
        );
    }
}

/// Count one plan quarantine and emit the matching event.
pub(crate) fn plan_quarantined(algo: &str, fingerprint: u64) {
    global().counter(names::SUPERVISOR_QUARANTINES).inc();
    if rqp_obs::events_enabled() {
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_PLAN_QUARANTINED)
                .with("algo", algo)
                .with("fingerprint", fingerprint),
        );
    }
}

/// Count one last-resort clean execution (retries ran dry).
pub(crate) fn last_resort(_algo: &str) {
    global().counter(names::SUPERVISOR_LAST_RESORT).inc();
}

/// Count one retry skipped because the session deadline lapsed.
pub(crate) fn deadline_stop(_algo: &str) {
    global().counter(names::SUPERVISOR_DEADLINE_STOPS).inc();
}

/// Account a finished discovery run.
pub(crate) fn record_trace(trace: &DiscoveryTrace) {
    let algo = trace.algo;
    algo_counter(names::DISCOVERY_RUNS, algo).inc();
    algo_counter(names::DISCOVERY_STEPS, algo).add(trace.steps.len() as u64);
    if trace.steps.last().is_some_and(|s| s.completed) {
        algo_counter(names::DISCOVERY_COMPLETED, algo).inc();
    }
    if let Some(reason) = &trace.failure {
        algo_counter(names::DISCOVERY_STRUCTURED_FAILURES, algo).inc();
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(names::EV_DISCOVERY_FAILED)
                    .with("algo", algo)
                    .with("qa", trace.qa as u64)
                    .with("reason", reason.as_str())
                    .with("total_cost", trace.total_cost),
            );
        }
    }
    if rqp_obs::events_enabled() {
        for step in &trace.steps {
            if let Some((epp, value, exact)) = step.learned {
                rqp_obs::emit(
                    rqp_obs::Event::new(names::EV_LEARNED_SELECTIVITY)
                        .with("algo", algo)
                        .with("band", step.band as u64)
                        .with("epp", epp.0 as u64)
                        .with("value", value)
                        .with("exact", exact),
                );
            }
        }
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_DISCOVERY_COMPLETE)
                .with("algo", algo)
                .with("qa", trace.qa as u64)
                .with("steps", trace.steps.len() as u64)
                .with("total_cost", trace.total_cost)
                .with("oracle_cost", trace.oracle_cost)
                .with("subopt", trace.subopt()),
        );
    }
}

/// Publish an algorithm's summarized evaluation as gauges
/// (`rqp_eval_mso{algo=…}`, `rqp_eval_aso{algo=…}`) and an `evaluation`
/// event.
pub(crate) fn record_evaluation(algo: &str, mso: f64, aso: f64, cells: usize) {
    global().gauge(&labeled(names::EVAL_MSO, &[("algo", algo)])).set(mso);
    global().gauge(&labeled(names::EVAL_ASO, &[("algo", algo)])).set(aso);
    if rqp_obs::events_enabled() {
        rqp_obs::emit(
            rqp_obs::Event::new(names::EV_EVALUATION)
                .with("algo", algo)
                .with("mso", mso)
                .with("aso", aso)
                .with("cells", cells as u64),
        );
    }
}

/// Pre-register the discovery metric series (at zero) for the standard
/// algorithm names, so snapshots taken before any discovery still list
/// them.
pub fn register_metrics() {
    for algo in ["PB", "SB", "AB", "Native", "ReOpt"] {
        let _ = algo_counter(names::DISCOVERY_RUNS, algo);
        let _ = algo_counter(names::DISCOVERY_STEPS, algo);
        let _ = algo_counter(names::DISCOVERY_COMPLETED, algo);
        let _ = algo_counter(names::DISCOVERY_HALF_SPACE_PRUNES, algo);
        let _ = algo_counter(names::DISCOVERY_STRUCTURED_FAILURES, algo);
        let _ = band_histogram(algo);
    }
    let g = global();
    let _ = g.counter(names::SUPERVISOR_RETRIES);
    let _ = g.counter(names::SUPERVISOR_QUARANTINES);
    let _ = g.counter(names::SUPERVISOR_LAST_RESORT);
    let _ = g.counter(names::SUPERVISOR_DEADLINE_STOPS);
}
