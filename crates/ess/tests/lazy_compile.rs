//! Integration tests for the lazy anytime compiler: band-by-band
//! materialization must be cell-for-cell indistinguishable from the eager
//! pipeline (same costs to the bit, same plan assignment, same contour
//! membership), stopping at band `k` must never cost cells above `k`'s
//! boundary layer, and a partial snapshot must round-trip through the
//! cache and resume to a byte-identical final surface.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder, RqpResult};
use rqp_ess::{CompileCache, CompileMode, Ess, EssConfig, LazyEss, LazyStart, PospSnapshot};
use rqp_optimizer::Optimizer;
use rqp_qplan::CostModel;

fn catalog() -> Catalog {
    CatalogBuilder::new()
        .relation(
            RelationBuilder::new("part", 2_000_000)
                .indexed_column("p_partkey", 2_000_000, 8)
                .column("p_price", 50_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("lineitem", 60_000_000)
                .indexed_column("l_partkey", 2_000_000, 8)
                .indexed_column("l_orderkey", 15_000_000, 8)
                .column("l_quantity", 50, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("orders", 15_000_000)
                .indexed_column("o_orderkey", 15_000_000, 8)
                .column("o_date", 2_400, 8)
                .build(),
        )
        .build()
}

fn query(catalog: &Catalog, dims: usize) -> RqpResult<Query> {
    let mut qb = QueryBuilder::new(catalog, "lazy")
        .table("part")
        .table("lineitem")
        .table("orders")
        .epp_join("part", "p_partkey", "lineitem", "l_partkey")
        .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
        .filter("part", "p_price", 0.05);
    if dims >= 3 {
        qb = qb.epp_filter("orders", "o_date", 0.1);
    }
    if dims >= 4 {
        qb = qb.epp_filter("lineitem", "l_quantity", 0.3);
    }
    qb.build()
}

fn config(dims: usize, mode: CompileMode) -> EssConfig {
    let resolution = match dims {
        2 => 8,
        3 => 6,
        _ => 5,
    };
    EssConfig { resolution, mode, ..Default::default() }
}

/// Eager and lazily-finished surfaces must agree bit for bit: costs, plan
/// assignment, contour ladder and band membership.
fn assert_ess_identical(eager: &Ess, lazy: &Ess) {
    assert_eq!(eager.grid().num_cells(), lazy.grid().num_cells());
    assert_eq!(eager.posp.num_plans(), lazy.posp.num_plans());
    assert_eq!(eager.contours.num_bands(), lazy.contours.num_bands());
    for cell in eager.grid().cells() {
        assert_eq!(
            eager.posp.cost(cell).to_bits(),
            lazy.posp.cost(cell).to_bits(),
            "cell {cell} cost must be bitwise identical"
        );
        assert_eq!(eager.posp.plan_id(cell), lazy.posp.plan_id(cell), "cell {cell} plan");
        assert_eq!(eager.contours.band_of(cell), lazy.contours.band_of(cell), "cell {cell} band");
    }
    for band in 0..eager.contours.num_bands() {
        assert_eq!(eager.contours.cells(band), lazy.contours.cells(band), "band {band} members");
    }
}

#[test]
fn lazy_finish_matches_eager_exact_and_recost_2d_3d_4d() {
    let catalog = catalog();
    for dims in [2usize, 3, 4] {
        let query = query(&catalog, dims).unwrap();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        for mode in [CompileMode::Exact, CompileMode::Recost { seed_stride: 3 }] {
            let cfg = config(dims, mode);
            let eager = Ess::compile_cached(&opt, cfg, None).unwrap();
            let lazy = LazyEss::begin(&catalog, &query, CostModel::default(), cfg).unwrap();
            let finished = lazy.finish().unwrap();
            assert_ess_identical(&eager, &finished);
            // the final snapshots are byte-identical, not just equivalent
            assert_eq!(
                PospSnapshot::capture(&eager).to_json().unwrap(),
                PospSnapshot::capture(&finished).to_json().unwrap(),
                "{dims}D {mode:?}: finished lazy snapshot must be byte-identical to eager"
            );
        }
    }
}

#[test]
fn lazy_bands_match_eager_contours_without_finishing() {
    let catalog = catalog();
    let query = query(&catalog, 3).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    let cfg = config(3, CompileMode::Recost { seed_stride: 3 });
    let eager = Ess::compile_cached(&opt, cfg, None).unwrap();
    let lazy = LazyEss::begin(&catalog, &query, CostModel::default(), cfg).unwrap();
    assert_eq!(lazy.num_bands(), eager.contours.num_bands());
    for band in 0..2.min(lazy.num_bands()) {
        assert_eq!(
            *lazy.band_cells(band),
            eager.contours.cells(band).to_vec(),
            "band {band} members must match the eager contour set"
        );
        assert!((lazy.cc(band) - eager.contours.cc(band)).abs() == 0.0, "ladder edge {band}");
    }
}

#[test]
fn compiling_through_band_k_never_costs_cells_above_its_boundary() {
    let catalog = catalog();
    let query = query(&catalog, 3).unwrap();
    let cfg = config(3, CompileMode::Exact);
    let lazy = LazyEss::begin(&catalog, &query, CostModel::default(), cfg).unwrap();
    let total = lazy.grid().num_cells();
    assert!(lazy.num_bands() > 3, "fixture must have enough bands to stop early");

    lazy.compile_through(1);
    assert_eq!(lazy.bands_compiled(), 2);
    let costed = lazy.costed_cells();
    // bands 0..=1 plus their +1 boundary layer is a small fraction of the
    // grid — this is the whole point of the lazy compiler
    assert!(costed * 2 < total, "stopping at band 1 costed {costed} of {total} cells — not lazy");

    // exact-mode laziness is sharp: the costed set is exactly the flooded
    // down-set (bands 0..=1), its +1 boundary layer, and the terminus
    // ladder anchor — the frontier invariant
    let grid = lazy.grid();
    let dims = grid.dims();
    let mut expected: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for band in 0..2 {
        expected.extend(lazy.band_cells(band).iter().copied());
    }
    for cell in expected.clone() {
        let coords = grid.coords_of(cell);
        for d in 0..dims {
            if coords[d] + 1 < grid.res(d) {
                let mut up = coords.clone();
                up[d] += 1;
                expected.insert(grid.index(&up));
            }
        }
    }
    expected.insert(grid.terminus());
    assert_eq!(
        lazy.costed_cells(),
        expected.len(),
        "exact-mode costed set must be the down-set plus its boundary layer"
    );
}

#[test]
fn oracle_peeks_cost_single_cells_not_bands() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let cfg = config(2, CompileMode::Exact);
    let lazy = LazyEss::begin(&catalog, &query, CostModel::default(), cfg).unwrap();
    let baseline = lazy.costed_cells(); // the two ladder anchors
    let mid = lazy.grid().num_cells() / 2;
    let c = lazy.cost(mid);
    assert!(c.is_finite() && c > 0.0);
    assert_eq!(lazy.bands_compiled(), 0, "a peek must not trigger band compilation");
    assert!(lazy.costed_cells() <= baseline + 1, "a peek costs at most one new cell");
    // peeks are memoized
    let again = lazy.cost(mid);
    assert_eq!(c.to_bits(), again.to_bits());
    assert_eq!(lazy.costed_cells(), baseline + 1);
}

#[test]
fn partial_snapshot_roundtrips_and_resumes_to_identical_surface() {
    let catalog = catalog();
    let query = query(&catalog, 3).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    let model = CostModel::default();
    let cfg = config(3, CompileMode::Recost { seed_stride: 3 });
    let eager = Ess::compile_cached(&opt, cfg, None).unwrap();

    let dir = std::env::temp_dir().join(format!("rqp-lazy-partial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CompileCache::new(&dir).unwrap();

    // compile part-way, checkpoint, drop the original
    let fp = rqp_ess::compile_fingerprint(&catalog, &query, &model, &cfg);
    {
        let lazy = LazyEss::begin(&catalog, &query, model, cfg).unwrap();
        lazy.compile_through(1);
        lazy.checkpoint(&cache).unwrap();
    }

    // reload in a "new process": begin_cached finds the partial
    let resumed = match LazyEss::begin_cached(&catalog, &query, model, cfg, Some(&cache)).unwrap() {
        LazyStart::Lazy(lazy) => lazy,
        LazyStart::Full(_) => panic!("no full snapshot was stored"),
    };
    assert_eq!(resumed.bands_compiled(), 2, "warm start must resume below the stored cursor");

    // resuming to the terminus yields the same bytes as the eager compile
    let finished = resumed.finish().unwrap();
    assert_eq!(
        PospSnapshot::capture(&eager).to_json().unwrap(),
        PospSnapshot::capture(&finished).to_json().unwrap(),
        "resumed surface must serialize byte-identically to the eager one"
    );

    // a corrupted partial is quarantined and treated as a cold start
    let path = dir.join(format!("posp-{fp:016x}.partial.rqpc"));
    assert!(path.exists());
    std::fs::write(&path, "rqp-posp-partial v1 garbage").unwrap();
    match LazyEss::begin_cached(&catalog, &query, model, cfg, Some(&cache)).unwrap() {
        LazyStart::Lazy(lazy) => assert_eq!(lazy.bands_compiled(), 0, "cold start expected"),
        LazyStart::Full(_) => panic!("no full snapshot was stored"),
    }
    assert!(!path.exists(), "corrupt partial must be quarantined aside");
    assert!(dir.join(format!("posp-{fp:016x}.partial.rqpc.corrupt")).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_mismatched_configurations() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let model = CostModel::default();
    let cfg = config(2, CompileMode::Exact);
    let lazy = LazyEss::begin(&catalog, &query, model, cfg).unwrap();
    lazy.compile_through(0);
    let partial = lazy.partial();

    // wrong resolution: the grid no longer matches
    let other = EssConfig { resolution: cfg.resolution + 1, ..cfg };
    assert!(LazyEss::resume(&catalog, &query, model, other, partial.clone()).is_err());

    // wrong ratio: the ladder no longer matches
    let other = EssConfig { contour_ratio: 3.0, ..cfg };
    assert!(LazyEss::resume(&catalog, &query, model, other, partial.clone()).is_err());

    // matching config resumes fine
    assert!(LazyEss::resume(&catalog, &query, model, cfg, partial).is_ok());
}

#[test]
fn prefetch_compiles_ahead_in_the_background() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let cfg = config(2, CompileMode::Exact);
    let lazy = LazyEss::begin(&catalog, &query, CostModel::default(), cfg).unwrap();
    let target = lazy.num_bands() - 1;
    lazy.prefetch(target);
    // bounded wait for the background task; compile_through is idempotent
    // and single-flight, so this also exercises the peer-wait path
    for _ in 0..500 {
        if lazy.bands_compiled() == target + 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    lazy.compile_through(target);
    assert_eq!(lazy.bands_compiled(), target + 1);
    assert_eq!(lazy.costed_cells(), lazy.grid().num_cells());
}
