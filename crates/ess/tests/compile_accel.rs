//! Integration tests for the compile acceleration layer: the recosting
//! surface must be indistinguishable (within the workspace cost tolerance)
//! from the brute-force surface, and a compile routed through the
//! persistent cache must restore byte-identical surfaces and bands.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder, RqpResult};
use rqp_ess::{CompileCache, CompileMode, Ess, EssConfig, Grid, Posp};
use rqp_optimizer::Optimizer;
use rqp_qplan::{cost_eq, CostModel};

fn catalog() -> Catalog {
    CatalogBuilder::new()
        .relation(
            RelationBuilder::new("part", 2_000_000)
                .indexed_column("p_partkey", 2_000_000, 8)
                .column("p_price", 50_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("lineitem", 60_000_000)
                .indexed_column("l_partkey", 2_000_000, 8)
                .indexed_column("l_orderkey", 15_000_000, 8)
                .build(),
        )
        .relation(
            RelationBuilder::new("orders", 15_000_000)
                .indexed_column("o_orderkey", 15_000_000, 8)
                .column("o_date", 2_400, 8)
                .build(),
        )
        .build()
}

fn query(catalog: &Catalog, dims: usize) -> RqpResult<Query> {
    let mut qb = QueryBuilder::new(catalog, "accel")
        .table("part")
        .table("lineitem")
        .table("orders")
        .epp_join("part", "p_partkey", "lineitem", "l_partkey")
        .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
        .filter("part", "p_price", 0.05);
    if dims >= 3 {
        qb = qb.epp_filter("orders", "o_date", 0.1);
    }
    qb.build()
}

fn assert_surfaces_equivalent(exact: &Posp, fast: &Posp, opt: &Optimizer<'_>) {
    assert_eq!(exact.grid().num_cells(), fast.grid().num_cells());
    for cell in exact.grid().cells() {
        let e = exact.cost(cell);
        let f = fast.cost(cell);
        assert!(
            cost_eq(e, f),
            "cell {cell}: exact cost {e} vs recost surface cost {f} \
             (exact plan P{}, fast plan P{})",
            exact.plan_id(cell).0 + 1,
            fast.plan_id(cell).0 + 1,
        );
        // the recorded cost must really be the cost of the recorded plan
        let replayed = fast.cost_of_plan_at(opt, fast.plan_id(cell), cell);
        assert!(cost_eq(replayed, f), "cell {cell}: stored {f}, recosted {replayed}");
    }
}

#[test]
fn recost_surface_matches_brute_force_2d() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    let grid = |res| Grid::uniform(2, res, 1e-5).unwrap();
    for res in [9, 16] {
        let exact = Posp::compile_with(&opt, grid(res), CompileMode::Exact);
        let fast = Posp::compile_with(&opt, grid(res), CompileMode::Recost { seed_stride: 3 });
        assert_surfaces_equivalent(&exact, &fast, &opt);
    }
}

#[test]
fn recost_surface_matches_brute_force_3d() {
    let catalog = catalog();
    let query = query(&catalog, 3).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    let exact = Posp::compile_with(&opt, Grid::uniform(3, 10, 1e-5).unwrap(), CompileMode::Exact);
    let fast = Posp::compile_with(
        &opt,
        Grid::uniform(3, 10, 1e-5).unwrap(),
        CompileMode::Recost { seed_stride: 3 },
    );
    assert_surfaces_equivalent(&exact, &fast, &opt);
}

#[test]
fn degenerate_strides_degrade_to_exact() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    for stride in [0, 1] {
        let exact =
            Posp::compile_with(&opt, Grid::uniform(2, 6, 1e-5).unwrap(), CompileMode::Exact);
        let fast = Posp::compile_with(
            &opt,
            Grid::uniform(2, 6, 1e-5).unwrap(),
            CompileMode::Recost { seed_stride: stride },
        );
        for cell in exact.grid().cells() {
            assert_eq!(exact.cost(cell).to_bits(), fast.cost(cell).to_bits());
            assert_eq!(exact.plan_id(cell), fast.plan_id(cell));
        }
    }
}

#[test]
fn compile_through_cache_restores_identical_surfaces_and_bands() {
    let catalog = catalog();
    let query = query(&catalog, 2).unwrap();
    let opt = Optimizer::new(&catalog, &query, CostModel::default());
    let config = EssConfig { resolution: 10, ..Default::default() };

    let dir = std::env::temp_dir().join(format!("rqp-accel-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = CompileCache::new(&dir).unwrap();

    let cold = Ess::compile_cached(&opt, config, Some(&cache)).unwrap();
    let warm = Ess::compile_cached(&opt, config, Some(&cache)).unwrap();

    assert_eq!(cold.grid().num_cells(), warm.grid().num_cells());
    assert_eq!(cold.posp.num_plans(), warm.posp.num_plans());
    assert_eq!(cold.contours.num_bands(), warm.contours.num_bands());
    for cell in cold.grid().cells() {
        assert_eq!(cold.posp.cost(cell).to_bits(), warm.posp.cost(cell).to_bits());
        assert_eq!(cold.posp.plan_id(cell), warm.posp.plan_id(cell));
        assert_eq!(cold.contours.band_of(cell), warm.contours.band_of(cell));
    }
    for band in 0..cold.contours.num_bands() {
        assert_eq!(cold.contours.cells(band), warm.contours.cells(band));
        assert_eq!(
            cold.contours.plans_on(&cold.posp, band),
            warm.contours.plans_on(&warm.posp, band)
        );
    }

    // a config change must miss: different resolution, fresh compile
    let other = EssConfig { resolution: 11, ..Default::default() };
    let fresh = Ess::compile_cached(&opt, other, Some(&cache)).unwrap();
    assert_eq!(fresh.grid().num_cells(), 11 * 11);

    let _ = std::fs::remove_dir_all(&dir);
}
