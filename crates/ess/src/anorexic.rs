//! Anorexic reduction of the plan diagram (Harish et al., VLDB 2007).
//!
//! PlanBouquet's guarantee `MSO ≤ 4(1+λ)·ρ` is only practical after the POSP
//! plan diagram is "anorexically reduced": a plan's optimality region may be
//! *swallowed* by another plan that is within a `(1+λ)` cost factor of the
//! optimum everywhere on that region (default λ = 0.2, §6.2). This module
//! implements the CostGreedy-style reduction the paper relies on.

use crate::grid::Cell;
use crate::posp::Posp;
use crate::registry::PlanId;
use rqp_optimizer::Optimizer;
use rqp_qplan::cost_cmp;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A reduced plan diagram: a replacement cell→plan assignment guaranteed to
/// be within `(1+lambda)` of optimal at every cell.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// Replacement plan per cell.
    pub cell_plan: Vec<PlanId>,
    /// The swallowing threshold used.
    pub lambda: f64,
    /// Number of distinct plans after reduction.
    pub num_plans: usize,
}

/// Greedily reduce the plan diagram with swallowing threshold `lambda`.
///
/// Plans are visited in ascending region size; a plan is swallowed by the
/// surviving plan (largest region first) whose cost stays within
/// `(1+lambda)` of the *optimal* cost at every cell of the swallowed
/// region. The invariant "assigned cost ≤ (1+λ)·optimal everywhere" is
/// maintained throughout, so the result is sound regardless of swallow
/// order.
pub fn anorexic_reduce(posp: &Posp, optimizer: &Optimizer<'_>, lambda: f64) -> Reduced {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    let grid = posp.grid();
    let mut cell_plan: Vec<PlanId> = grid.cells().map(|c| posp.plan_id(c)).collect();

    let mut regions: BTreeMap<PlanId, Vec<Cell>> = BTreeMap::new();
    for cell in grid.cells() {
        regions.entry(posp.plan_id(cell)).or_default().push(cell);
    }

    // ascending region size, id as tiebreak for determinism
    let mut order: Vec<PlanId> = regions.keys().copied().collect();
    order.sort_by_key(|id| (regions[id].len(), *id));

    for &victim in &order {
        let Some(victim_cells) = regions.get(&victim).cloned() else { continue };
        if victim_cells.is_empty() {
            continue;
        }
        // candidate swallowers: surviving plans, largest region first
        let mut candidates: Vec<PlanId> = regions
            .iter()
            .filter(|(id, cells)| **id != victim && !cells.is_empty())
            .map(|(id, _)| *id)
            .collect();
        candidates.sort_by_key(|id| (std::cmp::Reverse(regions[id].len()), *id));

        for swallower in candidates {
            let fits = victim_cells.iter().all(|&cell| {
                let replacement = posp.cost_of_plan_at(optimizer, swallower, cell);
                cost_cmp(replacement, (1.0 + lambda) * posp.cost(cell)) != Ordering::Greater
            });
            if fits {
                for &cell in &victim_cells {
                    cell_plan[cell] = swallower;
                }
                let moved = regions.remove(&victim).unwrap_or_default();
                // the swallower was drawn from the surviving regions above
                if let Some(region) = regions.get_mut(&swallower) {
                    region.extend(moved);
                } else {
                    debug_assert!(false, "swallower region must survive");
                }
                break;
            }
        }
    }

    let num_plans = regions.values().filter(|v| !v.is_empty()).count();
    Reduced { cell_plan, lambda, num_plans }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::posp::Posp;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn reduction_shrinks_plan_count_and_respects_lambda() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let posp = Posp::compile(&opt, Grid::uniform(2, 12, 1e-6).unwrap());
        let before = posp.num_plans();
        let reduced = anorexic_reduce(&posp, &opt, 0.2);
        assert!(reduced.num_plans <= before);
        assert!(reduced.num_plans >= 1);
        // invariant: replacement within (1+λ) of optimal everywhere
        for cell in posp.grid().cells() {
            let c = posp.cost_of_plan_at(&opt, reduced.cell_plan[cell], cell);
            assert!(
                c <= 1.2 * posp.cost(cell) * (1.0 + 1e-9),
                "cell {cell}: replacement {c} exceeds 1.2×optimal {}",
                posp.cost(cell)
            );
        }
    }

    #[test]
    fn zero_lambda_keeps_costs_optimal() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let posp = Posp::compile(&opt, Grid::uniform(2, 8, 1e-5).unwrap());
        let reduced = anorexic_reduce(&posp, &opt, 0.0);
        for cell in posp.grid().cells() {
            let c = posp.cost_of_plan_at(&opt, reduced.cell_plan[cell], cell);
            assert!(c <= posp.cost(cell) * (1.0 + 1e-9));
        }
    }

    #[test]
    fn larger_lambda_reduces_at_least_as_much() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let posp = Posp::compile(&opt, Grid::uniform(2, 10, 1e-6).unwrap());
        let r_small = anorexic_reduce(&posp, &opt, 0.05);
        let r_big = anorexic_reduce(&posp, &opt, 1.0);
        assert!(r_big.num_plans <= r_small.num_plans);
    }
}
