#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! The error-prone selectivity space (ESS): grid, POSP compilation,
//! iso-cost contours and anorexic reduction.
//!
//! [`Ess::compile`] bundles the full pipeline: discretize the selectivity
//! space ([`grid::Grid`]), invoke the optimizer at every location in
//! parallel ([`posp::Posp`]), and slice the resulting optimal cost surface
//! into geometric cost bands ([`contours::ContourSet`]). The robust
//! processing algorithms in `rqp-core` run entirely against this structure.

pub mod anorexic;
pub mod cache;
pub mod contours;
pub mod grid;
pub mod lazy;
pub mod obs;
pub mod posp;
pub mod registry;
pub mod snapshot;

pub use anorexic::{anorexic_reduce, Reduced};
pub use cache::{clear_global_cache_dir, compile_fingerprint, set_global_cache_dir, CompileCache};
pub use contours::ContourSet;
pub use grid::{Cell, Grid};
pub use lazy::{LazyEss, LazyStart, PartialSurface};
pub use obs::register_metrics;
pub use posp::{CompileMode, Posp};
pub use registry::{PlanId, PlanRegistry};
pub use snapshot::PospSnapshot;

use rqp_catalog::RqpResult;
use rqp_optimizer::Optimizer;

/// ESS compilation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssConfig {
    /// Grid points per dimension.
    pub resolution: usize,
    /// Smallest grid selectivity (axes run log-spaced from here to 1.0).
    pub min_sel: f64,
    /// Geometric cost ratio between consecutive contours (paper default 2).
    pub contour_ratio: f64,
    /// How the optimal-plan surface is computed (recosting-first by
    /// default; see [`CompileMode`]).
    pub mode: CompileMode,
}

impl Default for EssConfig {
    fn default() -> Self {
        EssConfig {
            resolution: 16,
            min_sel: 1e-5,
            contour_ratio: 2.0,
            mode: CompileMode::default(),
        }
    }
}

impl EssConfig {
    /// A resolution schedule that keeps `resolution^D` tractable while the
    /// experiments sweep dimensionality: 2D:48, 3D:24, 4D:14, 5D:10, 6D:8.
    pub fn for_dims(dims: usize) -> Self {
        let resolution = match dims {
            0 | 1 => 64,
            2 => 48,
            3 => 24,
            4 => 14,
            5 => 10,
            _ => 8,
        };
        EssConfig { resolution, ..Default::default() }
    }

    /// Same schedule scaled down for unit tests and CI.
    pub fn coarse(dims: usize) -> Self {
        let resolution = match dims {
            0 | 1 => 24,
            2 => 16,
            3 => 10,
            4 => 7,
            5 => 6,
            _ => 5,
        };
        EssConfig { resolution, ..Default::default() }
    }
}

/// A fully compiled ESS: POSP surface plus contour bands.
#[derive(Debug, Clone)]
pub struct Ess {
    /// The compiled optimal-plan surface.
    pub posp: Posp,
    /// The iso-cost contour bands.
    pub contours: ContourSet,
}

impl Ess {
    /// Compile the ESS for the optimizer's query, consulting the
    /// process-wide persistent cache if one was installed via
    /// [`set_global_cache_dir`].
    ///
    /// Errors if the configured grid is degenerate or too large to address.
    pub fn compile(optimizer: &Optimizer<'_>, config: EssConfig) -> RqpResult<Ess> {
        Ess::compile_cached(optimizer, config, cache::global_cache().as_ref())
    }

    /// Compile the ESS, consulting an explicit persistent cache (if any).
    ///
    /// On a hit, the surface is restored from disk without a single
    /// optimizer call; a miss compiles normally and stores the snapshot for
    /// the next run. Entries are keyed by [`compile_fingerprint`], so any
    /// change to the catalog, query, cost model or config invalidates them.
    pub fn compile_cached(
        optimizer: &Optimizer<'_>,
        config: EssConfig,
        cache: Option<&CompileCache>,
    ) -> RqpResult<Ess> {
        let m = obs::metrics();
        m.compiles.inc();
        let span = rqp_obs::time_histogram(&m.compile_seconds);
        let tracer = rqp_obs::current();
        let mut compile_span =
            tracer.span(rqp_obs::names::SPAN_ESS_COMPILE, rqp_obs::SpanKind::Compile);
        compile_span.attr("query", optimizer.query().name.as_str());
        let opt_calls = rqp_obs::global().counter(rqp_obs::names::OPTIMIZER_CALLS);
        let calls_before = opt_calls.get();

        let fingerprint = cache.map(|_| {
            compile_fingerprint(optimizer.catalog(), optimizer.query(), &optimizer.model(), &config)
        });
        if let (Some(cache), Some(fp)) = (cache, fingerprint) {
            if let Some(ess) = cache.load(fp).and_then(|snap| snap.restore().ok()) {
                m.cache_hits.inc();
                compile_span.attr("cache", "hit");
                m.grid_cells.set(ess.posp.grid().num_cells() as f64);
                m.contour_bands.set(ess.contours.num_bands() as f64);
                m.posp_plans.set(ess.posp.num_plans() as f64);
                if rqp_obs::events_enabled() {
                    rqp_obs::emit(
                        rqp_obs::Event::new(rqp_obs::names::EV_ESS_CACHE)
                            .with("query", optimizer.query().name.as_str())
                            .with("outcome", "hit")
                            .with("seconds", span.stop()),
                    );
                }
                return Ok(ess);
            }
            m.cache_misses.inc();
            if rqp_obs::events_enabled() {
                rqp_obs::emit(
                    rqp_obs::Event::new(rqp_obs::names::EV_ESS_CACHE)
                        .with("query", optimizer.query().name.as_str())
                        .with("outcome", "miss"),
                );
            }
        }

        let dims = optimizer.query().dims().max(1);
        let grid = Grid::uniform(dims, config.resolution, config.min_sel)?;
        let posp = Posp::compile_with(optimizer, grid, config.mode);

        let sw = rqp_obs::Stopwatch::start();
        let contours = {
            let _cb = tracer
                .span(rqp_obs::names::SPAN_CONTOUR_BUILD, rqp_obs::SpanKind::CompilePhase)
                .with_histogram(&m.contour_build_seconds);
            ContourSet::build(&posp, config.contour_ratio)?
        };
        let contour_secs = sw.elapsed_secs();

        compile_span.attr("grid_cells", posp.grid().num_cells() as u64);
        compile_span.attr("posp_plans", posp.num_plans() as u64);
        compile_span.attr("contour_bands", contours.num_bands() as u64);
        compile_span.attr("optimizer_calls", opt_calls.get() - calls_before);
        m.grid_cells.set(posp.grid().num_cells() as f64);
        m.contour_bands.set(contours.num_bands() as f64);
        m.posp_plans.set(posp.num_plans() as f64);

        if rqp_obs::events_enabled() {
            for band in 0..contours.num_bands() {
                rqp_obs::emit(
                    rqp_obs::Event::new(rqp_obs::names::EV_CONTOUR_BAND)
                        .with("query", optimizer.query().name.as_str())
                        .with("band", band as u64)
                        .with("cost", contours.cc(band))
                        .with("cells", contours.cells(band).len() as u64)
                        .with("plans", contours.plans_on(&posp, band).len() as u64),
                );
            }
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_ESS_COMPILE)
                    .with("query", optimizer.query().name.as_str())
                    .with("dims", dims as u64)
                    .with("resolution", config.resolution as u64)
                    .with("grid_cells", posp.grid().num_cells() as u64)
                    .with("posp_plans", posp.num_plans() as u64)
                    .with("contour_bands", contours.num_bands() as u64)
                    .with("optimizer_calls", opt_calls.get() - calls_before)
                    .with("contour_build_seconds", contour_secs)
                    .with("compile_seconds", span.stop()),
            );
        }

        let ess = Ess { posp, contours };
        if let (Some(cache), Some(fp)) = (cache, fingerprint) {
            if cache.store(fp, &PospSnapshot::capture(&ess)).is_ok() {
                m.cache_stores.inc();
            }
        }
        Ok(ess)
    }

    /// The grid underlying the space.
    pub fn grid(&self) -> &Grid {
        self.posp.grid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};
    use rqp_qplan::CostModel;

    #[test]
    fn end_to_end_compile() {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 1_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .relation(
                RelationBuilder::new("b", 8_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .epp_join("a", "k", "b", "k")
            .build()
            .unwrap();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let ess = Ess::compile(&opt, EssConfig { resolution: 20, ..Default::default() }).unwrap();
        assert_eq!(ess.grid().dims(), 1);
        assert_eq!(ess.grid().num_cells(), 20);
        assert!(ess.contours.num_bands() >= 2);
        assert!(ess.posp.num_plans() >= 1);
    }

    #[test]
    fn resolution_schedules_shrink_with_dims() {
        assert!(EssConfig::for_dims(2).resolution > EssConfig::for_dims(5).resolution);
        assert!(EssConfig::coarse(3).resolution < EssConfig::for_dims(3).resolution);
    }
}
