//! Persistent compile cache: on-disk POSP snapshots keyed by a stable
//! fingerprint of everything the compiled surface depends on.
//!
//! ESS compilation is the dominant preprocessing cost of the whole approach
//! (§7: "repeated invocations of the optimizer"), and benches, chaos sweeps
//! and CLI runs recompile identical surfaces from scratch. This module
//! amortizes that: [`compile_fingerprint`] digests the catalog statistics,
//! the query, the [`CostModel`] constants and the [`EssConfig`] into a
//! version-stable 64-bit key ([`StableHasher`], FNV-1a — `DefaultHasher`
//! makes no cross-version promise), and [`CompileCache`] stores one
//! [`PospSnapshot`] per key in a directory. Any input change produces a new
//! key, so a stored entry can never be served for a surface it does not
//! describe; an entry whose *recorded* fingerprint disagrees with its file
//! name (manual tampering, partial copy), whose trailing FNV-1a checksum
//! disagrees with its payload (bit rot, torn write), or that fails to
//! decode is invalidated on load — **quarantined** to `<name>.corrupt`
//! (counted by `rqp_ess_cache_corrupt_total`) rather than silently
//! deleted, so operators keep the evidence while the rebuilt surface
//! replaces the entry.
//!
//! Entries use a hand-rolled line/token text format rather than JSON:
//! floats are written as their exact IEEE-754 bit patterns, which is what
//! makes a warm load byte-identical to the compile that produced it.

use crate::posp::CompileMode;
use crate::snapshot::PospSnapshot;
use crate::EssConfig;
use rqp_catalog::{Catalog, Query, RqpError, RqpResult};
use rqp_qplan::{CostModel, StableHasher};
use std::path::PathBuf;
use std::sync::RwLock;

/// Stable fingerprint of a compile's inputs: catalog statistics, logical
/// query, cost-model constants and ESS configuration.
pub fn compile_fingerprint(
    catalog: &Catalog,
    query: &Query,
    model: &CostModel,
    config: &EssConfig,
) -> u64 {
    let mut h = StableHasher::new();
    h.write_str("rqp-ess-cache-v1");

    h.write_usize(catalog.len());
    for (_, rel) in catalog.iter() {
        h.write_str(&rel.name);
        h.write_u64(rel.rows);
        h.write_usize(rel.columns.len());
        for col in &rel.columns {
            h.write_str(&col.name);
            h.write_u64(col.ndv);
            h.write_u32(col.width);
            h.write_bool(col.indexed);
            h.write_f64(col.skew);
        }
    }

    h.write_str(&query.name);
    h.write_usize(query.relations.len());
    for r in &query.relations {
        h.write_u32(r.0);
    }
    h.write_usize(query.joins.len());
    for j in &query.joins {
        h.write_u32(j.id.0);
        h.write_u32(j.left.rel.0);
        h.write_usize(j.left.col);
        h.write_u32(j.right.rel.0);
        h.write_usize(j.right.col);
    }
    h.write_usize(query.filters.len());
    for f in &query.filters {
        h.write_u32(f.id.0);
        h.write_u32(f.col.rel.0);
        h.write_usize(f.col.col);
        h.write_f64(f.selectivity);
    }
    h.write_usize(query.epps.len());
    for e in &query.epps {
        h.write_u32(e.0);
    }
    h.write_usize(query.group_by.len());
    for g in &query.group_by {
        h.write_u32(g.rel.0);
        h.write_usize(g.col);
    }

    let p = model.params;
    for v in
        [p.seq_page, p.rand_page, p.cpu_tuple, p.cpu_index, p.cpu_oper, p.mem_pages, p.btree_fanout]
    {
        h.write_f64(v);
    }

    h.write_usize(config.resolution);
    h.write_f64(config.min_sel);
    h.write_f64(config.contour_ratio);
    match config.mode {
        CompileMode::Exact => h.write_u8(0),
        CompileMode::Recost { seed_stride } => {
            h.write_u8(1);
            h.write_usize(seed_stride);
        }
    }
    h.finish()
}

/// An on-disk cache of compiled POSP snapshots, one file per fingerprint.
#[derive(Debug, Clone)]
pub struct CompileCache {
    dir: PathBuf,
}

impl CompileCache {
    /// Open (creating if necessary) a cache rooted at `dir`.
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> RqpResult<CompileCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            RqpError::Config(format!("unusable cache directory {}: {e}", dir.display()))
        })?;
        Ok(CompileCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path_for(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("posp-{fp:016x}.rqpc"))
    }

    /// Load the snapshot cached under `fp`, if present and valid. An entry
    /// whose recorded fingerprint no longer matches, whose checksum
    /// disagrees with its payload, or that fails to decode counts as a
    /// miss and is quarantined to `<name>.corrupt` so the rebuilt surface
    /// can replace it while the bad bytes stay inspectable.
    pub fn load(&self, fp: u64) -> Option<PospSnapshot> {
        let path = self.path_for(fp);
        let text = std::fs::read_to_string(&path).ok()?;
        match codec::decode(&text, fp) {
            Ok(snap) => Some(snap),
            Err(e) => {
                self.quarantine(&path, &e);
                None
            }
        }
    }

    /// Move a corrupt entry aside to `<name>.corrupt` (falling back to
    /// deletion if the rename fails) and account it.
    fn quarantine(&self, path: &std::path::Path, err: &RqpError) {
        let corrupt = path.with_extension("rqpc.corrupt");
        if std::fs::rename(path, &corrupt).is_err() {
            // rqp-lint: allow(swallowed-result): best-effort eviction when the quarantine rename itself fails (e.g. read-only dir)
            let _ = std::fs::remove_file(path);
        }
        crate::obs::metrics().cache_corrupt.inc();
        if rqp_obs::events_enabled() {
            rqp_obs::emit(
                rqp_obs::Event::new(rqp_obs::names::EV_CACHE_QUARANTINE)
                    .with("path", path.display().to_string())
                    .with("error", err.to_string()),
            );
        }
    }

    /// Persist a snapshot under `fp` (written to a temporary file and
    /// renamed into place, so readers never observe a partial entry).
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if the entry cannot be written.
    pub fn store(&self, fp: u64, snap: &PospSnapshot) -> RqpResult<()> {
        let text = codec::encode(snap, fp);
        let tmp = self.dir.join(format!("posp-{fp:016x}.tmp"));
        let path = self.path_for(fp);
        std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path)).map_err(|e| {
            RqpError::Config(format!("cannot write cache entry {}: {e}", path.display()))
        })
    }

    fn partial_path_for(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("posp-{fp:016x}.partial.rqpc"))
    }

    /// Load the partially-compiled surface stored under `fp`, if present
    /// and valid. Same integrity regime as [`CompileCache::load`]:
    /// checksum-first, fingerprint match, quarantine on any failure.
    pub fn load_partial(&self, fp: u64) -> Option<crate::lazy::PartialSurface> {
        let path = self.partial_path_for(fp);
        let text = std::fs::read_to_string(&path).ok()?;
        match codec::decode_partial(&text, fp) {
            Ok(partial) => Some(partial),
            Err(e) => {
                self.quarantine(&path, &e);
                None
            }
        }
    }

    /// Persist a partially-compiled surface under `fp` so a later process
    /// can warm-start ([`crate::LazyEss::resume`]) instead of re-flooding
    /// the bands below the stored cursor. A partial entry lives beside the
    /// full snapshot (different suffix), never in place of it.
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if the entry cannot be written.
    pub fn store_partial(&self, fp: u64, partial: &crate::lazy::PartialSurface) -> RqpResult<()> {
        let text = codec::encode_partial(partial, fp);
        let tmp = self.dir.join(format!("posp-{fp:016x}.partial.tmp"));
        let path = self.partial_path_for(fp);
        std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path)).map_err(|e| {
            RqpError::Config(format!("cannot write partial cache entry {}: {e}", path.display()))
        })
    }

    /// Drop the partial entry for `fp`, if any (used once the finished
    /// snapshot supersedes it).
    pub fn evict_partial(&self, fp: u64) {
        // rqp-lint: allow(swallowed-result): eviction is advisory; a stale partial is harmless and re-validated on load
        let _ = std::fs::remove_file(self.partial_path_for(fp));
    }
}

static GLOBAL_CACHE: RwLock<Option<CompileCache>> = RwLock::new(None);

/// Route every subsequent [`crate::Ess::compile`] in this process through a
/// persistent cache rooted at `dir` (the CLI `--cache-dir` hook).
///
/// This is a thin compatibility shim over per-instance [`CompileCache`]
/// handles: new code (the serve registry, `Ess::compile_cached`) should
/// thread an explicit cache instead. Unlike the original `OnceLock`
/// global, re-rooting is allowed — the last call wins — so embedders with
/// different cache policies are not locked out by whoever ran first.
///
/// # Errors
/// Returns [`RqpError::Config`] if the directory is unusable.
pub fn set_global_cache_dir(dir: impl Into<PathBuf>) -> RqpResult<()> {
    let cache = CompileCache::new(dir)?;
    *GLOBAL_CACHE.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(cache);
    Ok(())
}

/// Uninstall the process-wide cache; subsequent [`crate::Ess::compile`]
/// calls go back to compiling from scratch.
pub fn clear_global_cache_dir() {
    *GLOBAL_CACHE.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// The process-wide cache installed by [`set_global_cache_dir`], if any
/// (a cheap handle clone: the cache itself lives on disk).
pub fn global_cache() -> Option<CompileCache> {
    GLOBAL_CACHE.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

pub(crate) use codec::{plan_from_text, plan_to_text};

/// The snapshot text codec.
///
/// JSON is not used deliberately: cache entries must round-trip `f64`s
/// byte-exactly (cell costs feed contour arithmetic), so every float is
/// written as its 16-hex-digit IEEE-754 bit pattern. Since `v2` every
/// entry ends with a `checksum` line — FNV-1a over the full payload
/// (everything through `end\n`) — so bit rot and torn writes are caught
/// before the payload is parsed at all.
mod codec {
    use super::PospSnapshot;
    use crate::grid::Grid;
    use rqp_catalog::{ColRef, PredId, RelId, RqpError, RqpResult};
    use rqp_qplan::{PlanNode, StableHasher};
    use std::fmt::Write as _;

    const MAGIC: &str = "rqp-posp-cache";
    const VERSION: &str = "v2";
    /// Upper bound on any decoded collection length, so a corrupt entry
    /// cannot provoke a huge allocation.
    const MAX_LEN: usize = 64 * 1024 * 1024;

    fn bad(msg: impl std::fmt::Display) -> RqpError {
        RqpError::Snapshot(format!("cache entry: {msg}"))
    }

    fn tok(out: &mut String, t: impl std::fmt::Display) {
        let _ = write!(out, " {t}");
    }

    fn encode_pred_list(preds: &[PredId], out: &mut String) {
        tok(out, preds.len());
        for p in preds {
            tok(out, p.0);
        }
    }

    fn encode_group_list(groups: &[ColRef], out: &mut String) {
        tok(out, groups.len());
        for g in groups {
            tok(out, g.rel.0);
            tok(out, g.col);
        }
    }

    fn encode_plan(p: &PlanNode, out: &mut String) {
        match p {
            PlanNode::SeqScan { rel, filters } => {
                tok(out, "S");
                tok(out, rel.0);
                encode_pred_list(filters, out);
            }
            PlanNode::IndexScan { rel, sarg, filters } => {
                tok(out, "I");
                tok(out, rel.0);
                tok(out, sarg.0);
                encode_pred_list(filters, out);
            }
            PlanNode::Sort { input } => {
                tok(out, "O");
                encode_plan(input, out);
            }
            PlanNode::HashJoin { build, probe, preds } => {
                tok(out, "H");
                encode_pred_list(preds, out);
                encode_plan(build, out);
                encode_plan(probe, out);
            }
            PlanNode::MergeJoin { left, right, preds } => {
                tok(out, "M");
                encode_pred_list(preds, out);
                encode_plan(left, out);
                encode_plan(right, out);
            }
            PlanNode::NestLoop { outer, inner, preds } => {
                tok(out, "N");
                encode_pred_list(preds, out);
                encode_plan(outer, out);
                encode_plan(inner, out);
            }
            PlanNode::HashAggregate { input, groups } => {
                tok(out, "A");
                encode_group_list(groups, out);
                encode_plan(input, out);
            }
            PlanNode::SortAggregate { input, groups } => {
                tok(out, "G");
                encode_group_list(groups, out);
                encode_plan(input, out);
            }
            PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters } => {
                tok(out, "X");
                tok(out, inner_rel.0);
                tok(out, lookup.0);
                encode_pred_list(preds, out);
                encode_pred_list(inner_filters, out);
                encode_plan(outer, out);
            }
        }
    }

    pub(super) fn encode(snap: &PospSnapshot, fp: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{MAGIC} {VERSION}");
        let _ = writeln!(s, "fingerprint {fp:016x}");
        let _ = writeln!(s, "dims {}", snap.grid.dims());
        for d in 0..snap.grid.dims() {
            let _ = write!(s, "axis {}", snap.grid.res(d));
            for i in 0..snap.grid.res(d) {
                let _ = write!(s, " {:016x}", snap.grid.value(d, i).to_bits());
            }
            s.push('\n');
        }
        let _ = writeln!(s, "plans {}", snap.plans.len());
        for p in &snap.plans {
            s.push_str("plan");
            encode_plan(p, &mut s);
            s.push('\n');
        }
        let _ = write!(s, "cell_plan {}", snap.cell_plan.len());
        for &id in &snap.cell_plan {
            let _ = write!(s, " {id}");
        }
        s.push('\n');
        let _ = write!(s, "cell_cost {}", snap.cell_cost.len());
        for &c in &snap.cell_cost {
            let _ = write!(s, " {:016x}", c.to_bits());
        }
        s.push('\n');
        let _ = writeln!(s, "contour_ratio {:016x}", snap.contour_ratio.to_bits());
        let _ = write!(s, "quarantined {}", snap.quarantined.len());
        for &q in &snap.quarantined {
            let _ = write!(s, " {q}");
        }
        s.push('\n');
        s.push_str("end\n");
        let _ = writeln!(s, "checksum {:016x}", payload_checksum(&s));
        s
    }

    const PARTIAL_MAGIC: &str = "rqp-posp-partial";
    const PARTIAL_VERSION: &str = "v1";

    /// Encode a partially-compiled surface. Same discipline as [`encode`]:
    /// floats as IEEE-754 bit patterns (resumed compiles must see the
    /// exact costs the original computed), trailing payload checksum.
    pub(super) fn encode_partial(partial: &crate::lazy::PartialSurface, fp: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{PARTIAL_MAGIC} {PARTIAL_VERSION}");
        let _ = writeln!(s, "fingerprint {fp:016x}");
        let _ = writeln!(s, "dims {}", partial.grid.dims());
        for d in 0..partial.grid.dims() {
            let _ = write!(s, "axis {}", partial.grid.res(d));
            for i in 0..partial.grid.res(d) {
                let _ = write!(s, " {:016x}", partial.grid.value(d, i).to_bits());
            }
            s.push('\n');
        }
        let _ = writeln!(s, "ratio {:016x}", partial.ratio.to_bits());
        let _ = writeln!(s, "cmin {:016x}", partial.cmin.to_bits());
        let _ = writeln!(s, "cmax {:016x}", partial.cmax.to_bits());
        let _ = writeln!(s, "plans {}", partial.plans.len());
        for p in &partial.plans {
            s.push_str("plan");
            encode_plan(p, &mut s);
            s.push('\n');
        }
        let _ = writeln!(s, "compiled_through {}", partial.compiled_through);
        let _ = writeln!(s, "bands {}", partial.bands.len());
        for band in &partial.bands {
            let _ = write!(s, "band {}", band.len());
            for &(cell, idx, cost) in band {
                let _ = write!(s, " {cell} {idx} {:016x}", cost.to_bits());
            }
            s.push('\n');
        }
        let _ = write!(s, "parked {}", partial.parked.len());
        for &(cell, band, idx, cost) in &partial.parked {
            let _ = write!(s, " {cell} {band} {idx} {:016x}", cost.to_bits());
        }
        s.push('\n');
        s.push_str("end\n");
        let _ = writeln!(s, "checksum {:016x}", payload_checksum(&s));
        s
    }

    /// Inverse of [`encode_partial`], with the same checksum-first,
    /// fingerprint-second validation order as [`decode`]. Structural
    /// consistency against a live configuration (grid match, band ranges,
    /// duplicate cells) is re-checked by [`crate::LazyEss::resume`].
    pub(super) fn decode_partial(
        text: &str,
        expected_fp: u64,
    ) -> RqpResult<crate::lazy::PartialSurface> {
        let (payload, sum_line) =
            text.rsplit_once("checksum").ok_or_else(|| bad("missing checksum line"))?;
        let sum_tok = sum_line.trim();
        let recorded = u64::from_str_radix(sum_tok, 16)
            .map_err(|_| bad(format!("bad checksum {sum_tok:?}")))?;
        let actual = payload_checksum(payload);
        if recorded != actual {
            return Err(bad(format!(
                "checksum mismatch: recorded {recorded:016x}, payload {actual:016x}"
            )));
        }
        let mut t = Toks::new(payload);
        t.tag(PARTIAL_MAGIC)?;
        t.tag(PARTIAL_VERSION)?;
        t.tag("fingerprint")?;
        let fp_tok = t.next()?;
        let fp = u64::from_str_radix(fp_tok, 16)
            .map_err(|_| bad(format!("bad fingerprint {fp_tok:?}")))?;
        if fp != expected_fp {
            return Err(bad(format!(
                "fingerprint mismatch: entry {fp:016x}, wanted {expected_fp:016x}"
            )));
        }
        t.tag("dims")?;
        let dims = t.len()?;
        let mut axes = Vec::with_capacity(dims);
        for _ in 0..dims {
            t.tag("axis")?;
            let len = t.len()?;
            let mut axis = Vec::with_capacity(len);
            for _ in 0..len {
                axis.push(t.f64_bits()?);
            }
            axes.push(axis);
        }
        let grid = Grid::from_axes(axes).map_err(|e| bad(format!("bad grid: {e}")))?;
        t.tag("ratio")?;
        let ratio = t.f64_bits()?;
        t.tag("cmin")?;
        let cmin = t.f64_bits()?;
        t.tag("cmax")?;
        let cmax = t.f64_bits()?;
        t.tag("plans")?;
        let n = t.len()?;
        let mut plans = Vec::with_capacity(n);
        for _ in 0..n {
            t.tag("plan")?;
            plans.push(decode_plan(&mut t)?);
        }
        t.tag("compiled_through")?;
        let compiled_through: i64 = t.num()?;
        if !(-1..=MAX_LEN as i64).contains(&compiled_through) {
            return Err(bad(format!("implausible compile cursor {compiled_through}")));
        }
        t.tag("bands")?;
        let n = t.len()?;
        if n as i64 != compiled_through + 1 {
            return Err(bad(format!(
                "{n} stored bands disagree with compile cursor {compiled_through}"
            )));
        }
        let mut bands = Vec::with_capacity(n);
        for _ in 0..n {
            t.tag("band")?;
            let len = t.len()?;
            let mut band = Vec::with_capacity(len);
            for _ in 0..len {
                let cell: usize = t.num()?;
                let idx: u32 = t.num()?;
                band.push((cell, idx, t.f64_bits()?));
            }
            bands.push(band);
        }
        t.tag("parked")?;
        let len = t.len()?;
        let mut parked = Vec::with_capacity(len);
        for _ in 0..len {
            let cell: usize = t.num()?;
            let band: u32 = t.num()?;
            let idx: u32 = t.num()?;
            parked.push((cell, band, idx, t.f64_bits()?));
        }
        t.tag("end")?;
        Ok(crate::lazy::PartialSurface {
            grid,
            ratio,
            cmin,
            cmax,
            plans,
            compiled_through: compiled_through as isize,
            bands,
            parked,
        })
    }

    /// FNV-1a digest of an entry's payload (everything through `end\n`).
    fn payload_checksum(payload: &str) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(payload);
        h.finish()
    }

    struct Toks<'a> {
        it: std::str::SplitWhitespace<'a>,
    }

    impl<'a> Toks<'a> {
        fn new(s: &'a str) -> Self {
            Toks { it: s.split_whitespace() }
        }

        fn next(&mut self) -> RqpResult<&'a str> {
            self.it.next().ok_or_else(|| bad("truncated"))
        }

        fn tag(&mut self, kw: &str) -> RqpResult<()> {
            let t = self.next()?;
            if t == kw {
                Ok(())
            } else {
                Err(bad(format!("expected {kw:?}, found {t:?}")))
            }
        }

        fn num<T: std::str::FromStr>(&mut self) -> RqpResult<T> {
            let t = self.next()?;
            t.parse().map_err(|_| bad(format!("bad number {t:?}")))
        }

        fn len(&mut self) -> RqpResult<usize> {
            let n: usize = self.num()?;
            if n > MAX_LEN {
                return Err(bad(format!("implausible length {n}")));
            }
            Ok(n)
        }

        fn f64_bits(&mut self) -> RqpResult<f64> {
            let t = self.next()?;
            u64::from_str_radix(t, 16)
                .map(f64::from_bits)
                .map_err(|_| bad(format!("bad float bits {t:?}")))
        }
    }

    /// One plan as a space-separated token string (the snapshot JSON format
    /// embeds plans in this form).
    pub(crate) fn plan_to_text(p: &PlanNode) -> String {
        let mut s = String::new();
        encode_plan(p, &mut s);
        s.trim_start().to_string()
    }

    /// Inverse of [`plan_to_text`]; rejects trailing tokens.
    pub(crate) fn plan_from_text(text: &str) -> RqpResult<PlanNode> {
        let mut t = Toks::new(text);
        let p = decode_plan(&mut t)?;
        if t.it.next().is_some() {
            return Err(bad("trailing tokens after plan"));
        }
        Ok(p)
    }

    fn decode_pred_list(t: &mut Toks<'_>) -> RqpResult<Vec<PredId>> {
        let n = t.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(PredId(t.num()?));
        }
        Ok(out)
    }

    fn decode_group_list(t: &mut Toks<'_>) -> RqpResult<Vec<ColRef>> {
        let n = t.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = RelId(t.num()?);
            let col: usize = t.num()?;
            out.push(ColRef::new(rel, col));
        }
        Ok(out)
    }

    fn decode_plan(t: &mut Toks<'_>) -> RqpResult<PlanNode> {
        match t.next()? {
            "S" => Ok(PlanNode::SeqScan { rel: RelId(t.num()?), filters: decode_pred_list(t)? }),
            "I" => Ok(PlanNode::IndexScan {
                rel: RelId(t.num()?),
                sarg: PredId(t.num()?),
                filters: decode_pred_list(t)?,
            }),
            "O" => Ok(PlanNode::Sort { input: Box::new(decode_plan(t)?) }),
            "H" => {
                let preds = decode_pred_list(t)?;
                let build = Box::new(decode_plan(t)?);
                let probe = Box::new(decode_plan(t)?);
                Ok(PlanNode::HashJoin { build, probe, preds })
            }
            "M" => {
                let preds = decode_pred_list(t)?;
                let left = Box::new(decode_plan(t)?);
                let right = Box::new(decode_plan(t)?);
                Ok(PlanNode::MergeJoin { left, right, preds })
            }
            "N" => {
                let preds = decode_pred_list(t)?;
                let outer = Box::new(decode_plan(t)?);
                let inner = Box::new(decode_plan(t)?);
                Ok(PlanNode::NestLoop { outer, inner, preds })
            }
            "A" => {
                let groups = decode_group_list(t)?;
                let input = Box::new(decode_plan(t)?);
                Ok(PlanNode::HashAggregate { input, groups })
            }
            "G" => {
                let groups = decode_group_list(t)?;
                let input = Box::new(decode_plan(t)?);
                Ok(PlanNode::SortAggregate { input, groups })
            }
            "X" => {
                let inner_rel = RelId(t.num()?);
                let lookup = PredId(t.num()?);
                let preds = decode_pred_list(t)?;
                let inner_filters = decode_pred_list(t)?;
                let outer = Box::new(decode_plan(t)?);
                Ok(PlanNode::IndexNestLoop { outer, inner_rel, lookup, preds, inner_filters })
            }
            other => Err(bad(format!("unknown plan op {other:?}"))),
        }
    }

    pub(super) fn decode(text: &str, expected_fp: u64) -> RqpResult<PospSnapshot> {
        // Verify the trailing checksum before parsing anything: a torn
        // write or flipped bit is rejected wholesale, not wherever the
        // token stream happens to derail.
        let (payload, sum_line) =
            text.rsplit_once("checksum").ok_or_else(|| bad("missing checksum line"))?;
        let sum_tok = sum_line.trim();
        let recorded = u64::from_str_radix(sum_tok, 16)
            .map_err(|_| bad(format!("bad checksum {sum_tok:?}")))?;
        let actual = payload_checksum(payload);
        if recorded != actual {
            return Err(bad(format!(
                "checksum mismatch: recorded {recorded:016x}, payload {actual:016x}"
            )));
        }
        let mut t = Toks::new(payload);
        t.tag(MAGIC)?;
        t.tag(VERSION)?;
        t.tag("fingerprint")?;
        let fp_tok = t.next()?;
        let fp = u64::from_str_radix(fp_tok, 16)
            .map_err(|_| bad(format!("bad fingerprint {fp_tok:?}")))?;
        if fp != expected_fp {
            return Err(bad(format!(
                "fingerprint mismatch: entry {fp:016x}, wanted {expected_fp:016x}"
            )));
        }
        t.tag("dims")?;
        let dims = t.len()?;
        let mut axes = Vec::with_capacity(dims);
        for _ in 0..dims {
            t.tag("axis")?;
            let len = t.len()?;
            let mut axis = Vec::with_capacity(len);
            for _ in 0..len {
                axis.push(t.f64_bits()?);
            }
            axes.push(axis);
        }
        let grid = Grid::from_axes(axes).map_err(|e| bad(format!("bad grid: {e}")))?;
        t.tag("plans")?;
        let n = t.len()?;
        let mut plans = Vec::with_capacity(n);
        for _ in 0..n {
            t.tag("plan")?;
            plans.push(decode_plan(&mut t)?);
        }
        t.tag("cell_plan")?;
        let n = t.len()?;
        let mut cell_plan = Vec::with_capacity(n);
        for _ in 0..n {
            cell_plan.push(t.num::<u32>()?);
        }
        t.tag("cell_cost")?;
        let n = t.len()?;
        let mut cell_cost = Vec::with_capacity(n);
        for _ in 0..n {
            cell_cost.push(t.f64_bits()?);
        }
        t.tag("contour_ratio")?;
        let contour_ratio = t.f64_bits()?;
        t.tag("quarantined")?;
        let n = t.len()?;
        let mut quarantined = Vec::with_capacity(n);
        for _ in 0..n {
            quarantined.push(t.num::<u64>()?);
        }
        t.tag("end")?;
        Ok(PospSnapshot { grid, plans, cell_plan, cell_cost, contour_ratio, quarantined })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ess, EssConfig};
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;

    fn fixture() -> (rqp_catalog::Catalog, rqp_catalog::Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 1_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .relation(
                RelationBuilder::new("b", 9_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .epp_join("a", "k", "b", "k")
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_input() {
        let (catalog, query) = fixture();
        let model = CostModel::default();
        let config = EssConfig::default();
        let base = compile_fingerprint(&catalog, &query, &model, &config);
        // deterministic
        assert_eq!(base, compile_fingerprint(&catalog, &query, &model, &config));
        // config change
        let coarse = EssConfig { resolution: config.resolution + 1, ..config };
        assert_ne!(base, compile_fingerprint(&catalog, &query, &model, &coarse));
        let exact = EssConfig { mode: CompileMode::Exact, ..config };
        assert_ne!(base, compile_fingerprint(&catalog, &query, &model, &exact));
        // cost-model change
        let mut params = model.params;
        params.rand_page += 0.5;
        let other_model = CostModel::new(params);
        assert_ne!(base, compile_fingerprint(&catalog, &query, &other_model, &config));
        // catalog change (one extra row in relation "a")
        let bigger = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 1_000_001).indexed_column("k", 1_000_000, 8).build(),
            )
            .relation(
                RelationBuilder::new("b", 9_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .build();
        assert_ne!(base, compile_fingerprint(&bigger, &query, &model, &config));
    }

    #[test]
    fn store_load_roundtrip_is_byte_identical() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let config = EssConfig { resolution: 12, ..Default::default() };
        let ess = Ess::compile_cached(&opt, config, None).unwrap();
        let snap = PospSnapshot::capture(&ess);

        let dir = std::env::temp_dir().join(format!("rqp-cache-test-{}", std::process::id()));
        let cache = CompileCache::new(&dir).unwrap();
        let fp = compile_fingerprint(&catalog, &query, &CostModel::default(), &config);
        cache.store(fp, &snap).unwrap();

        let back = cache.load(fp).expect("entry should load");
        assert_eq!(back.cell_plan, snap.cell_plan);
        assert_eq!(
            back.cell_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            snap.cell_cost.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            "cell costs must round-trip byte-identically"
        );
        assert_eq!(back.plans, snap.plans);
        assert_eq!(back.contour_ratio.to_bits(), snap.contour_ratio.to_bits());

        // unknown fingerprints miss
        assert!(cache.load(fp ^ 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_entries_are_invalidated() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let config = EssConfig { resolution: 8, ..Default::default() };
        let ess = Ess::compile_cached(&opt, config, None).unwrap();
        let snap = PospSnapshot::capture(&ess);

        let dir = std::env::temp_dir().join(format!("rqp-cache-tamper-{}", std::process::id()));
        let cache = CompileCache::new(&dir).unwrap();
        let fp = compile_fingerprint(&catalog, &query, &CostModel::default(), &config);
        cache.store(fp, &snap).unwrap();

        // overwrite the entry with one recorded under a different key: the
        // mismatch must invalidate it — quarantined aside, not deleted
        let path = dir.join(format!("posp-{fp:016x}.rqpc"));
        let corrupt = dir.join(format!("posp-{fp:016x}.rqpc.corrupt"));
        let other = std::fs::read_to_string(&path).unwrap().replacen(
            &format!("{fp:016x}"),
            &format!("{:016x}", fp ^ 0xff),
            1,
        );
        std::fs::write(&path, other).unwrap();
        assert!(cache.load(fp).is_none());
        assert!(!path.exists(), "stale entry should have been moved aside");
        assert!(corrupt.exists(), "stale entry should be quarantined as .corrupt");

        // garbage decodes to a miss too
        cache.store(fp, &snap).unwrap();
        std::fs::write(&path, "rqp-posp-cache v2 fingerprint zzzz").unwrap();
        assert!(cache.load(fp).is_none());
        assert!(corrupt.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_rot_is_caught_by_the_checksum() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let config = EssConfig { resolution: 8, ..Default::default() };
        let ess = Ess::compile_cached(&opt, config, None).unwrap();
        let snap = PospSnapshot::capture(&ess);

        let dir = std::env::temp_dir().join(format!("rqp-cache-rot-{}", std::process::id()));
        let cache = CompileCache::new(&dir).unwrap();
        let fp = compile_fingerprint(&catalog, &query, &CostModel::default(), &config);
        cache.store(fp, &snap).unwrap();

        // flip one hex digit inside a cost token (fingerprint line intact):
        // only the checksum can catch this
        let path = dir.join(format!("posp-{fp:016x}.rqpc"));
        let text = std::fs::read_to_string(&path).unwrap();
        let cost_at = text.find("cell_cost").unwrap();
        let digit_at = cost_at + text[cost_at..].find(" 4").map(|i| i + 1).unwrap_or(12);
        let mut bytes = text.into_bytes();
        bytes[digit_at] = if bytes[digit_at] == b'4' { b'5' } else { b'4' };
        std::fs::write(&path, bytes).unwrap();

        assert!(cache.load(fp).is_none(), "rotted entry must not load");
        assert!(
            dir.join(format!("posp-{fp:016x}.rqpc.corrupt")).exists(),
            "rotted entry should be quarantined"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
