//! Iso-cost contours over the compiled POSP.
//!
//! On the continuum, contour `IC_i` is the curve where the optimal cost
//! equals `CC_i = r^(i-1) · C_min` (cost-doubling, `r = 2`, by default). On
//! a finite grid the curve becomes a **cost band**: cell `q` belongs to band
//! `i` iff `Cost(P_q, q) ∈ [CC_i, r·CC_i)`. Bands partition the grid, every
//! budgeted execution on band `i` uses the cost of its chosen cell (within
//! the band, so < `r·CC_i`), and all the discovery guarantees of §3–§5
//! survive discretization (see DESIGN.md, "Discretization of contours").

use crate::grid::Cell;
use crate::posp::Posp;
use crate::registry::PlanId;
use std::collections::BTreeSet;

/// The contour bands of a compiled ESS.
#[derive(Debug, Clone)]
pub struct ContourSet {
    /// Geometric cost ratio between consecutive contours.
    pub ratio: f64,
    /// Lower-edge cost of each band: `cc[i] = cmin · ratio^i`.
    cc: Vec<f64>,
    band_of: Vec<u32>,
    bands: Vec<Vec<Cell>>,
}

impl ContourSet {
    /// Build contour bands with the given cost ratio (the paper's default
    /// is 2; §4.2 notes ratios like 1.8 can shave the guarantee slightly).
    ///
    /// # Panics
    /// Panics if `ratio <= 1`.
    pub fn build(posp: &Posp, ratio: f64) -> ContourSet {
        assert!(ratio > 1.0, "contour ratio must exceed 1");
        let cmin = posp.cmin();
        let cmax = posp.cmax();
        let m = ((cmax / cmin).ln() / ratio.ln()).floor() as usize + 1;
        let cc: Vec<f64> = (0..m).map(|i| cmin * ratio.powi(i as i32)).collect();

        let mut band_of = vec![0u32; posp.grid().num_cells()];
        let mut bands = vec![Vec::new(); m];
        for cell in posp.grid().cells() {
            let b = (((posp.cost(cell) / cmin).ln() / ratio.ln()).floor() as usize).min(m - 1);
            band_of[cell] = b as u32;
            bands[b].push(cell);
        }
        ContourSet { ratio, cc, band_of, bands }
    }

    /// Number of contours, `m`.
    pub fn num_bands(&self) -> usize {
        self.cc.len()
    }

    /// Lower-edge cost `CC_i` of band `i` (0-based).
    pub fn cc(&self, band: usize) -> f64 {
        self.cc[band]
    }

    /// The band a cell belongs to.
    pub fn band_of(&self, cell: Cell) -> usize {
        self.band_of[cell] as usize
    }

    /// Cells of a band, ascending by cell index.
    pub fn cells(&self, band: usize) -> &[Cell] {
        &self.bands[band]
    }

    /// Distinct optimal plans appearing on a band — the contour's plan set
    /// `PL_i`.
    pub fn plans_on(&self, posp: &Posp, band: usize) -> BTreeSet<PlanId> {
        self.bands[band].iter().map(|&c| posp.plan_id(c)).collect()
    }

    /// Plan density of a band (`|PL_i|`).
    pub fn density(&self, posp: &Posp, band: usize) -> usize {
        self.plans_on(posp, band).len()
    }

    /// Maximum density over all bands — the `ρ` of the PlanBouquet bound.
    pub fn max_density(&self, posp: &Posp) -> usize {
        (0..self.num_bands()).map(|b| self.density(posp, b)).max().unwrap_or(0)
    }

    /// Density of a band under a replacement cell→plan assignment (used for
    /// the anorexic-reduced bouquet's `ρ_red`).
    pub fn density_with(&self, assignment: &[PlanId], band: usize) -> usize {
        self.bands[band].iter().map(|&c| assignment[c]).collect::<BTreeSet<_>>().len()
    }

    /// Maximum density over all bands under a replacement assignment.
    pub fn max_density_with(&self, assignment: &[PlanId]) -> usize {
        (0..self.num_bands()).map(|b| self.density_with(assignment, b)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    fn compiled() -> (Posp, ContourSet) {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let posp = Posp::compile(&opt, Grid::uniform(2, 12, 1e-6).unwrap());
        let contours = ContourSet::build(&posp, 2.0);
        (posp, contours)
    }

    #[test]
    fn bands_partition_the_grid() {
        let (posp, contours) = compiled();
        let total: usize = (0..contours.num_bands()).map(|b| contours.cells(b).len()).sum();
        assert_eq!(total, posp.grid().num_cells());
        for b in 0..contours.num_bands() {
            for &cell in contours.cells(b) {
                assert_eq!(contours.band_of(cell), b);
                let c = posp.cost(cell);
                assert!(c >= contours.cc(b) * (1.0 - 1e-12));
                if b + 1 < contours.num_bands() {
                    assert!(c < contours.cc(b) * contours.ratio * (1.0 + 1e-12));
                }
            }
        }
    }

    #[test]
    fn band_edges_double() {
        let (_, contours) = compiled();
        assert!(contours.num_bands() >= 3, "expected several contours");
        for i in 1..contours.num_bands() {
            let r = contours.cc(i) / contours.cc(i - 1);
            assert!((r - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn origin_is_on_the_first_band_terminus_on_the_last() {
        let (posp, contours) = compiled();
        assert_eq!(contours.band_of(posp.grid().origin()), 0);
        assert_eq!(contours.band_of(posp.grid().terminus()), contours.num_bands() - 1);
    }

    #[test]
    fn densities_are_positive_and_bounded_by_plan_count() {
        let (posp, contours) = compiled();
        let rho = contours.max_density(&posp);
        assert!(rho >= 1 && rho <= posp.num_plans());
        // identity assignment reproduces plain densities
        let identity: Vec<PlanId> = posp.grid().cells().map(|c| posp.plan_id(c)).collect();
        assert_eq!(contours.max_density_with(&identity), rho);
    }

    #[test]
    fn custom_ratio_changes_band_count() {
        let (posp, _) = compiled();
        let c2 = ContourSet::build(&posp, 2.0);
        let c15 = ContourSet::build(&posp, 1.5);
        assert!(c15.num_bands() > c2.num_bands());
    }
}
