//! Iso-cost contours over the compiled POSP.
//!
//! On the continuum, contour `IC_i` is the curve where the optimal cost
//! equals `CC_i = r^(i-1) · C_min` (cost-doubling, `r = 2`, by default). On
//! a finite grid the curve becomes a **cost band**: cell `q` belongs to band
//! `i` iff `Cost(P_q, q) ∈ [CC_i, r·CC_i)`. Bands partition the grid, every
//! budgeted execution on band `i` uses the cost of its chosen cell (within
//! the band, so < `r·CC_i`), and all the discovery guarantees of §3–§5
//! survive discretization (see DESIGN.md, "Discretization of contours").

use crate::grid::Cell;
use crate::posp::Posp;
use crate::registry::PlanId;
use rqp_catalog::{RqpError, RqpResult};
use rqp_qplan::cost_cmp;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The contour bands of a compiled ESS.
#[derive(Debug, Clone)]
pub struct ContourSet {
    /// Geometric cost ratio between consecutive contours.
    pub ratio: f64,
    /// Lower-edge cost of each band: `cc[i] = cmin · ratio^i`.
    cc: Vec<f64>,
    band_of: Vec<u32>,
    bands: Vec<Arc<Vec<Cell>>>,
}

/// Band index of cost `c` on the geometric ladder `cmin · ratio^k`.
///
/// The naive `floor(ln(c/cmin) / ln(ratio))` misclassifies costs sitting
/// exactly on a band edge `cmin·r^k`: a few ulps of logarithm error can
/// push the quotient to `k - ε`, flooring into band `k-1` and breaking the
/// `[CC_i, r·CC_i)` partition invariant. The floor therefore only seeds the
/// search; the final index is settled against the *exact* `powi` edges with
/// the workspace cost tolerance ([`cost_cmp`]), with edge-equal costs
/// belonging to the band whose lower (inclusive) edge they sit on.
///
/// # Errors
/// Non-finite or non-positive costs have no band on the geometric ladder
/// and return [`RqpError::Config`]. (With `c = +inf` or `NaN` the settling
/// loop would otherwise never observe `c < cmin·r^(b+1)` — `powi` saturates
/// at `+inf` while `cost_cmp` keeps answering `Greater` — and spin forever.)
pub(crate) fn band_index(c: f64, cmin: f64, ratio: f64) -> RqpResult<usize> {
    if !(c.is_finite() && c > 0.0) {
        return Err(RqpError::Config(format!(
            "cost {c} cannot be placed on the contour ladder (cmin {cmin}, ratio {ratio}); \
             costs must be finite and positive"
        )));
    }
    let raw = ((c / cmin).ln() / ratio.ln()).floor();
    let mut b = if raw.is_finite() && raw > 0.0 { raw as usize } else { 0 };
    while cost_cmp(c, cmin * ratio.powi(b as i32 + 1)) != Ordering::Less {
        b += 1;
    }
    while b > 0 && cost_cmp(c, cmin * ratio.powi(b as i32)) == Ordering::Less {
        b -= 1;
    }
    Ok(b)
}

/// Total variant of [`band_index`] for the lazy compile path: degenerate
/// costs clamp into the top band `m - 1` (an execution budgeted there is
/// already charged the worst case) instead of erroring, and regular costs
/// clamp like the eager build does.
pub(crate) fn band_index_clamped(c: f64, cmin: f64, ratio: f64, m: usize) -> usize {
    debug_assert!(m >= 1);
    match band_index(c, cmin, ratio) {
        Ok(b) => b.min(m - 1),
        Err(_) => m - 1,
    }
}

impl ContourSet {
    /// Build contour bands with the given cost ratio (the paper's default
    /// is 2; §4.2 notes ratios like 1.8 can shave the guarantee slightly).
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if `ratio` is not a finite value above
    /// 1, or if the POSP cost surface is degenerate (a non-positive or
    /// non-finite extremum, or any non-finite per-cell cost — NaN cells
    /// slip past the extrema check because `f64::max` ignores NaN),
    /// instead of panicking or looping mid-compile.
    pub fn build(posp: &Posp, ratio: f64) -> RqpResult<ContourSet> {
        if !(ratio.is_finite() && ratio > 1.0) {
            return Err(RqpError::Config(format!("contour ratio must exceed 1, got {ratio}")));
        }
        let cmin = posp.cmin();
        let cmax = posp.cmax();
        if !(cmin > 0.0 && cmax.is_finite()) {
            return Err(RqpError::Config(format!(
                "degenerate optimal cost surface: cmin {cmin}, cmax {cmax}"
            )));
        }
        let m = band_index(cmax, cmin, ratio)? + 1;
        let cc: Vec<f64> = (0..m).map(|i| cmin * ratio.powi(i as i32)).collect();

        let mut band_of = vec![0u32; posp.grid().num_cells()];
        let mut bands = vec![Vec::new(); m];
        for cell in posp.grid().cells() {
            let b = band_index(posp.cost(cell), cmin, ratio)?.min(m - 1);
            band_of[cell] = b as u32;
            bands[b].push(cell);
        }
        let bands = bands.into_iter().map(Arc::new).collect();
        Ok(ContourSet { ratio, cc, band_of, bands })
    }

    /// Number of contours, `m`.
    pub fn num_bands(&self) -> usize {
        self.cc.len()
    }

    /// Lower-edge cost `CC_i` of band `i` (0-based).
    pub fn cc(&self, band: usize) -> f64 {
        self.cc[band]
    }

    /// The band a cell belongs to.
    pub fn band_of(&self, cell: Cell) -> usize {
        self.band_of[cell] as usize
    }

    /// Cells of a band, ascending by cell index.
    pub fn cells(&self, band: usize) -> &[Cell] {
        &self.bands[band]
    }

    /// Shared handle to a band's cell list (cheap to clone; lets a serving
    /// layer hand bands out without copying them per peer).
    pub fn cells_arc(&self, band: usize) -> Arc<Vec<Cell>> {
        Arc::clone(&self.bands[band])
    }

    /// Distinct optimal plans appearing on a band — the contour's plan set
    /// `PL_i`.
    pub fn plans_on(&self, posp: &Posp, band: usize) -> BTreeSet<PlanId> {
        self.bands[band].iter().map(|&c| posp.plan_id(c)).collect()
    }

    /// Plan density of a band (`|PL_i|`).
    pub fn density(&self, posp: &Posp, band: usize) -> usize {
        self.plans_on(posp, band).len()
    }

    /// Maximum density over all bands — the `ρ` of the PlanBouquet bound.
    pub fn max_density(&self, posp: &Posp) -> usize {
        (0..self.num_bands()).map(|b| self.density(posp, b)).max().unwrap_or(0)
    }

    /// Density of a band under a replacement cell→plan assignment (used for
    /// the anorexic-reduced bouquet's `ρ_red`).
    pub fn density_with(&self, assignment: &[PlanId], band: usize) -> usize {
        self.bands[band].iter().map(|&c| assignment[c]).collect::<BTreeSet<_>>().len()
    }

    /// Maximum density over all bands under a replacement assignment.
    pub fn max_density_with(&self, assignment: &[PlanId]) -> usize {
        (0..self.num_bands()).map(|b| self.density_with(assignment, b)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    fn compiled() -> (Posp, ContourSet) {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let posp = Posp::compile(&opt, Grid::uniform(2, 12, 1e-6).unwrap());
        let contours = ContourSet::build(&posp, 2.0).unwrap();
        (posp, contours)
    }

    /// A synthetic one-plan POSP whose cell costs are chosen exactly.
    fn synthetic(costs: Vec<f64>) -> Posp {
        let grid = Grid::uniform(1, costs.len(), 1e-4).unwrap();
        let mut registry = crate::registry::PlanRegistry::new();
        let id = registry.insert(rqp_qplan::PlanNode::SeqScan {
            rel: rqp_catalog::RelId(0),
            filters: Vec::new(),
        });
        let cell_plan = vec![id; costs.len()];
        Posp::from_parts(grid, registry, cell_plan, costs)
    }

    #[test]
    fn bands_partition_the_grid() {
        let (posp, contours) = compiled();
        let total: usize = (0..contours.num_bands()).map(|b| contours.cells(b).len()).sum();
        assert_eq!(total, posp.grid().num_cells());
        for b in 0..contours.num_bands() {
            for &cell in contours.cells(b) {
                assert_eq!(contours.band_of(cell), b);
                let c = posp.cost(cell);
                assert!(c >= contours.cc(b) * (1.0 - 1e-12));
                if b + 1 < contours.num_bands() {
                    assert!(c < contours.cc(b) * contours.ratio * (1.0 + 1e-12));
                }
            }
        }
    }

    #[test]
    fn band_edges_double() {
        let (_, contours) = compiled();
        assert!(contours.num_bands() >= 3, "expected several contours");
        for i in 1..contours.num_bands() {
            let r = contours.cc(i) / contours.cc(i - 1);
            assert!((r - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn origin_is_on_the_first_band_terminus_on_the_last() {
        let (posp, contours) = compiled();
        assert_eq!(contours.band_of(posp.grid().origin()), 0);
        assert_eq!(contours.band_of(posp.grid().terminus()), contours.num_bands() - 1);
    }

    #[test]
    fn densities_are_positive_and_bounded_by_plan_count() {
        let (posp, contours) = compiled();
        let rho = contours.max_density(&posp);
        assert!(rho >= 1 && rho <= posp.num_plans());
        // identity assignment reproduces plain densities
        let identity: Vec<PlanId> = posp.grid().cells().map(|c| posp.plan_id(c)).collect();
        assert_eq!(contours.max_density_with(&identity), rho);
    }

    #[test]
    fn custom_ratio_changes_band_count() {
        let (posp, _) = compiled();
        let c2 = ContourSet::build(&posp, 2.0).unwrap();
        let c15 = ContourSet::build(&posp, 1.5).unwrap();
        assert!(c15.num_bands() > c2.num_bands());
    }

    #[test]
    fn bad_ratio_is_a_config_error_not_a_panic() {
        let (posp, _) = compiled();
        for ratio in [1.0, 0.5, -2.0, f64::NAN, f64::INFINITY] {
            let err = ContourSet::build(&posp, ratio).unwrap_err();
            assert!(err.to_string().contains("contour ratio"), "{err}");
        }
    }

    #[test]
    fn exact_power_of_ratio_costs_land_on_their_own_band() {
        // Every cost sits exactly on a band edge cmin·r^k. The naive
        // floor(ln/ln) assignment drifts below the edge for some k (e.g.
        // ln(1.1^3)/ln(1.1) = 2.9999…); the epsilon-robust version must put
        // edge costs in the band they open, for any ratio.
        for ratio in [2.0f64, 1.1, 1.8, 3.0] {
            let cmin = 7.5;
            let costs: Vec<f64> = (0..8).map(|k| cmin * ratio.powi(k)).collect();
            let posp = synthetic(costs.clone());
            let contours = ContourSet::build(&posp, ratio).unwrap();
            assert_eq!(contours.num_bands(), costs.len(), "ratio {ratio}");
            for (k, _) in costs.iter().enumerate() {
                assert_eq!(contours.band_of(k), k, "ratio {ratio}, edge {k}");
                assert_eq!(contours.cells(k), &[k]);
            }
        }
    }

    #[test]
    fn costs_a_hair_under_an_edge_stay_with_the_edge_band() {
        // A cost within the cost_eq tolerance below cmin·r^k counts as *on*
        // the edge and belongs to band k, not k-1.
        let cmin = 10.0;
        let ratio = 2.0;
        let edge = cmin * ratio * ratio; // opens band 2
        let posp = synthetic(vec![cmin, edge * (1.0 - 1e-13)]);
        let contours = ContourSet::build(&posp, ratio).unwrap();
        assert_eq!(contours.band_of(1), 2);
    }

    #[test]
    fn degenerate_cost_surface_is_rejected() {
        let posp = synthetic(vec![0.0, 4.0]);
        let err = ContourSet::build(&posp, 2.0).unwrap_err();
        assert!(err.to_string().contains("degenerate"), "{err}");
    }

    #[test]
    fn non_finite_costs_error_instead_of_spinning() {
        // Regression: band_index used to loop forever on +inf (powi
        // saturates at +inf, cost_cmp(inf, inf) is Equal via total_cmp but
        // never Less) and on NaN (total_cmp orders NaN above everything).
        for c in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 0.0, -3.0] {
            let err = band_index(c, 1.0, 2.0).unwrap_err();
            assert!(err.to_string().contains("contour ladder"), "{c}: {err}");
        }
        assert_eq!(band_index(8.0, 1.0, 2.0).unwrap(), 3);
    }

    #[test]
    fn nan_cell_cost_is_a_build_error_not_a_hang() {
        // A NaN cell sneaks past the extrema check (f64::max ignores NaN);
        // the per-cell banding pass must surface it as a structured error.
        let posp = synthetic(vec![1.0, 2.0, f64::NAN, 8.0]);
        let err = ContourSet::build(&posp, 2.0).unwrap_err();
        assert!(err.to_string().contains("contour ladder"), "{err}");
    }

    #[test]
    fn clamped_band_index_is_total() {
        assert_eq!(band_index_clamped(8.0, 1.0, 2.0, 10), 3);
        assert_eq!(band_index_clamped(1e9, 1.0, 2.0, 4), 3, "overshoot clamps to m-1");
        assert_eq!(band_index_clamped(f64::NAN, 1.0, 2.0, 4), 3);
        assert_eq!(band_index_clamped(f64::INFINITY, 1.0, 2.0, 4), 3);
    }

    #[test]
    fn band_arcs_are_shared_not_copied() {
        let (_, contours) = compiled();
        let a = contours.cells_arc(0);
        let b = contours.cells_arc(0);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&a[..], contours.cells(0));
    }
}
