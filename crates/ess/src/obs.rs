//! Instrumentation handles for ESS compilation — the §7 "repeated calls to
//! the optimizer" overhead this crate exists to pay.

use rqp_obs::{default_compile_buckets, global, names, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct EssMetrics {
    /// `rqp_ess_memo_hits_total`
    pub memo_hits: Arc<Counter>,
    /// `rqp_ess_posp_cells_total`
    pub posp_cells: Arc<Counter>,
    /// `rqp_ess_posp_compile_seconds`
    pub posp_compile_seconds: Arc<Histogram>,
    /// `rqp_ess_posp_plans`
    pub posp_plans: Arc<Gauge>,
    /// `rqp_ess_compile_seconds`
    pub compile_seconds: Arc<Histogram>,
    /// `rqp_ess_contour_build_seconds`
    pub contour_build_seconds: Arc<Histogram>,
    /// `rqp_ess_contour_bands`
    pub contour_bands: Arc<Gauge>,
    /// `rqp_ess_grid_cells`
    pub grid_cells: Arc<Gauge>,
    /// `rqp_ess_compiles_total`
    pub compiles: Arc<Counter>,
    /// `rqp_ess_seed_cells_total`
    pub seed_cells: Arc<Counter>,
    /// `rqp_ess_recost_cells_total`
    pub recost_cells: Arc<Counter>,
    /// `rqp_ess_recost_fallback_cells_total`
    pub recost_fallback_cells: Arc<Counter>,
    /// `rqp_ess_cache_hits_total`
    pub cache_hits: Arc<Counter>,
    /// `rqp_ess_cache_misses_total`
    pub cache_misses: Arc<Counter>,
    /// `rqp_ess_cache_stores_total`
    pub cache_stores: Arc<Counter>,
    /// `rqp_ess_cache_corrupt_total`
    pub cache_corrupt: Arc<Counter>,
    /// `rqp_ess_bands_compiled_total`
    pub bands_compiled: Arc<Counter>,
    /// `rqp_ess_bands_skipped_total`
    pub bands_skipped: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static EssMetrics {
    static METRICS: OnceLock<EssMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        // Compile-scale buckets: cold 4D+ compiles run multi-second to
        // multi-minute, far past the ~67s latency-bucket ceiling.
        let buckets = default_compile_buckets();
        EssMetrics {
            memo_hits: g.counter(names::ESS_MEMO_HITS),
            posp_cells: g.counter(names::ESS_POSP_CELLS),
            posp_compile_seconds: g.histogram(names::ESS_POSP_COMPILE_SECONDS, &buckets),
            posp_plans: g.gauge(names::ESS_POSP_PLANS),
            compile_seconds: g.histogram(names::ESS_COMPILE_SECONDS, &buckets),
            contour_build_seconds: g.histogram(names::ESS_CONTOUR_BUILD_SECONDS, &buckets),
            contour_bands: g.gauge(names::ESS_CONTOUR_BANDS),
            grid_cells: g.gauge(names::ESS_GRID_CELLS),
            compiles: g.counter(names::ESS_COMPILES),
            seed_cells: g.counter(names::ESS_SEED_CELLS),
            recost_cells: g.counter(names::ESS_RECOST_CELLS),
            recost_fallback_cells: g.counter(names::ESS_RECOST_FALLBACK_CELLS),
            cache_hits: g.counter(names::ESS_CACHE_HITS),
            cache_misses: g.counter(names::ESS_CACHE_MISSES),
            cache_stores: g.counter(names::ESS_CACHE_STORES),
            cache_corrupt: g.counter(names::ESS_CACHE_CORRUPT),
            bands_compiled: g.counter(names::ESS_BANDS_COMPILED),
            bands_skipped: g.counter(names::ESS_BANDS_SKIPPED),
        }
    })
}

/// Pre-register the ESS metric series (at zero) in the global registry, so
/// snapshots taken before any compile still list them.
pub fn register_metrics() {
    let _ = metrics();
}
