//! Offline ESS compilation snapshots.
//!
//! Contour construction is the expensive preprocessing step of the whole
//! approach ("for canned queries, it may be feasible to carry out an
//! offline enumeration", §7). This module serializes a compiled
//! [`Posp`] — grid, plan registry and the optimal plan/cost per cell — to
//! JSON so canned queries pay the optimizer invocations once.

use crate::cache::{plan_from_text, plan_to_text};
use crate::contours::ContourSet;
use crate::grid::Grid;
use crate::posp::Posp;
use crate::registry::{PlanId, PlanRegistry};
use crate::Ess;
use rqp_catalog::{RqpError, RqpResult};
use rqp_obs::json::{self, JsonValue};
use rqp_qplan::PlanNode;

/// The serialized form of a compiled POSP.
#[derive(Debug, Clone)]
pub struct PospSnapshot {
    /// The grid.
    pub grid: Grid,
    /// Distinct plans, indexed by `PlanId`.
    pub plans: Vec<PlanNode>,
    /// Optimal plan id per cell.
    pub cell_plan: Vec<u32>,
    /// Optimal cost per cell.
    pub cell_cost: Vec<f64>,
    /// Contour cost ratio the snapshot was built with.
    pub contour_ratio: f64,
    /// Plan fingerprints quarantined by a chaos run against this ESS
    /// (empty for snapshots captured outside chaos testing; absent in
    /// older snapshots). Purely advisory: `restore` carries it through so
    /// a post-mortem can see which plans the supervisor banned.
    pub quarantined: Vec<u64>,
}

impl PospSnapshot {
    /// Capture a compiled ESS.
    pub fn capture(ess: &Ess) -> PospSnapshot {
        PospSnapshot::capture_with_quarantine(ess, Vec::new())
    }

    /// Capture a compiled ESS together with the plan fingerprints a
    /// supervised (chaos) run quarantined against it.
    pub fn capture_with_quarantine(ess: &Ess, quarantined: Vec<u64>) -> PospSnapshot {
        let posp = &ess.posp;
        PospSnapshot {
            grid: posp.grid().clone(),
            plans: posp.registry().iter().map(|(_, p)| (**p).clone()).collect(),
            cell_plan: posp.grid().cells().map(|c| posp.plan_id(c).0).collect(),
            cell_cost: posp.grid().cells().map(|c| posp.cost(c)).collect(),
            contour_ratio: ess.contours.ratio,
            quarantined,
        }
    }

    /// Restore the ESS (POSP + contours) from the snapshot.
    ///
    /// # Errors
    /// Returns [`RqpError::Snapshot`] if the snapshot is internally
    /// inconsistent.
    pub fn restore(self) -> RqpResult<Ess> {
        let bad = |msg: String| Err(RqpError::Snapshot(msg));
        // re-derive strides/cell-count from the axes instead of trusting the
        // serialized values, and re-validate the axes while doing so
        let axes: Vec<Vec<f64>> = (0..self.grid.dims())
            .map(|d| (0..self.grid.res(d)).map(|i| self.grid.value(d, i)).collect())
            .collect();
        let grid = Grid::from_axes(axes)
            .map_err(|e| RqpError::Snapshot(format!("bad snapshot grid: {e}")))?;
        let cells = grid.num_cells();
        if self.cell_plan.len() != cells || self.cell_cost.len() != cells {
            return bad(format!(
                "snapshot cell arrays ({} / {}) do not match grid ({cells})",
                self.cell_plan.len(),
                self.cell_cost.len()
            ));
        }
        if self.contour_ratio <= 1.0 {
            return bad(format!("invalid contour ratio {}", self.contour_ratio));
        }
        let mut registry = PlanRegistry::new();
        for (i, plan) in self.plans.iter().enumerate() {
            let id = registry.insert(plan.clone());
            if id != PlanId(i as u32) {
                return bad(format!("duplicate plan at snapshot index {i}"));
            }
        }
        let nplans = registry.len() as u32;
        let mut cell_plan = Vec::with_capacity(cells);
        for (&id, &cost) in self.cell_plan.iter().zip(&self.cell_cost) {
            if id >= nplans {
                return bad(format!("cell references unknown plan P{}", id + 1));
            }
            if !cost.is_finite() || cost <= 0.0 {
                return bad(format!("invalid cell cost {cost}"));
            }
            cell_plan.push(PlanId(id));
        }
        let posp = Posp::from_parts(grid, registry, cell_plan, self.cell_cost);
        let contours = ContourSet::build(&posp, self.contour_ratio)?;
        Ok(Ess { posp, contours })
    }

    /// Serialize to JSON (the self-contained codec in `rqp_obs::json`;
    /// floats use shortest-round-trip decimals, so costs restore exactly).
    /// Plans embed as the cache codec's token strings, e.g. `"H 1 0 S 1 0"`.
    ///
    /// # Errors
    /// Returns [`RqpError::Snapshot`] if a float in the snapshot is
    /// non-finite and therefore unrepresentable in JSON.
    pub fn to_json(&self) -> RqpResult<String> {
        let finite = |vals: &[f64]| vals.iter().all(|v| v.is_finite());
        let axes: Vec<Vec<f64>> = (0..self.grid.dims())
            .map(|d| (0..self.grid.res(d)).map(|i| self.grid.value(d, i)).collect())
            .collect();
        if !axes.iter().all(|a| finite(a)) || !finite(&self.cell_cost) {
            return Err(RqpError::Snapshot(
                "snapshot serialization failed: non-finite value".to_string(),
            ));
        }
        let num_array =
            |vals: &[f64]| JsonValue::Array(vals.iter().map(|&v| JsonValue::Num(v)).collect());
        let mut m = json::Map::new();
        m.insert("format".to_string(), JsonValue::from(FORMAT));
        m.insert("axes".to_string(), JsonValue::Array(axes.iter().map(|a| num_array(a)).collect()));
        m.insert(
            "plans".to_string(),
            JsonValue::Array(self.plans.iter().map(|p| JsonValue::Str(plan_to_text(p))).collect()),
        );
        m.insert(
            "cell_plan".to_string(),
            JsonValue::Array(self.cell_plan.iter().map(|&id| JsonValue::from(id)).collect()),
        );
        m.insert("cell_cost".to_string(), num_array(&self.cell_cost));
        m.insert("contour_ratio".to_string(), JsonValue::Num(self.contour_ratio));
        m.insert(
            "quarantined".to_string(),
            JsonValue::Array(self.quarantined.iter().map(|&q| JsonValue::from(q)).collect()),
        );
        Ok(JsonValue::Object(m).to_json())
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    /// Returns [`RqpError::Snapshot`] on malformed JSON or a shape/format
    /// mismatch.
    pub fn from_json(text: &str) -> RqpResult<PospSnapshot> {
        let bad = |msg: String| RqpError::Snapshot(format!("bad snapshot JSON: {msg}"));
        let v = json::parse(text).map_err(|e| bad(e.to_string()))?;
        if v["format"].as_str() != Some(FORMAT) {
            return Err(bad(format!("unknown snapshot format {:?}", v["format"].as_str())));
        }
        let f64_list = |v: &JsonValue, what: &str| -> RqpResult<Vec<f64>> {
            v.as_array()
                .ok_or_else(|| bad(format!("{what} is not an array")))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| bad(format!("{what} entry is not a number"))))
                .collect()
        };
        let axes = v["axes"]
            .as_array()
            .ok_or_else(|| bad("axes is not an array".to_string()))?
            .iter()
            .map(|a| f64_list(a, "axis"))
            .collect::<RqpResult<Vec<_>>>()?;
        let grid = Grid::from_axes(axes).map_err(|e| bad(format!("bad grid: {e}")))?;
        let plans = v["plans"]
            .as_array()
            .ok_or_else(|| bad("plans is not an array".to_string()))?
            .iter()
            .map(|p| {
                plan_from_text(
                    p.as_str().ok_or_else(|| bad("plan entry is not a string".to_string()))?,
                )
                .map_err(|e| bad(e.to_string()))
            })
            .collect::<RqpResult<Vec<_>>>()?;
        let cell_plan = v["cell_plan"]
            .as_array()
            .ok_or_else(|| bad("cell_plan is not an array".to_string()))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("cell_plan entry is not a u32".to_string()))
            })
            .collect::<RqpResult<Vec<_>>>()?;
        let cell_cost = f64_list(&v["cell_cost"], "cell_cost")?;
        let contour_ratio = v["contour_ratio"]
            .as_f64()
            .ok_or_else(|| bad("contour_ratio is not a number".to_string()))?;
        // absent in older snapshots → empty
        let quarantined = match v.get("quarantined") {
            None => Vec::new(),
            Some(q) => q
                .as_array()
                .ok_or_else(|| bad("quarantined is not an array".to_string()))?
                .iter()
                .map(|x| {
                    x.as_u64().ok_or_else(|| bad("quarantined entry is not a u64".to_string()))
                })
                .collect::<RqpResult<Vec<_>>>()?,
        };
        Ok(PospSnapshot { grid, plans, cell_plan, cell_cost, contour_ratio, quarantined })
    }
}

/// Format marker written into every snapshot JSON document.
const FORMAT: &str = "rqp-posp-snapshot-v1";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EssConfig;
    use rqp_catalog::{CatalogBuilder, QueryBuilder, RelationBuilder};
    use rqp_optimizer::Optimizer;
    use rqp_qplan::CostModel;

    fn compiled() -> Ess {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("a", 1_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .relation(
                RelationBuilder::new("b", 9_000_000).indexed_column("k", 1_000_000, 8).build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "t")
            .table("a")
            .table("b")
            .epp_join("a", "k", "b", "k")
            .build()
            .unwrap();
        // leak: the test Ess must own nothing borrowed
        let catalog: &'static _ = Box::leak(Box::new(catalog));
        let query: &'static _ = Box::leak(Box::new(query));
        let opt = Optimizer::new(catalog, query, CostModel::default());
        Ess::compile(&opt, EssConfig { resolution: 12, ..Default::default() }).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ess = compiled();
        let snap = PospSnapshot::capture(&ess);
        let json = snap.to_json().unwrap();
        let restored = PospSnapshot::from_json(&json).unwrap().restore().unwrap();
        assert_eq!(restored.grid().num_cells(), ess.grid().num_cells());
        assert_eq!(restored.posp.num_plans(), ess.posp.num_plans());
        assert_eq!(restored.contours.num_bands(), ess.contours.num_bands());
        for cell in ess.grid().cells() {
            assert_eq!(restored.posp.plan_id(cell), ess.posp.plan_id(cell));
            assert_eq!(restored.posp.cost(cell), ess.posp.cost(cell));
            assert_eq!(restored.contours.band_of(cell), ess.contours.band_of(cell));
        }
    }

    #[test]
    fn quarantine_roundtrips_and_defaults_to_empty() {
        let ess = compiled();
        let snap = PospSnapshot::capture_with_quarantine(&ess, vec![7, 42]);
        assert_eq!(snap.quarantined, vec![7, 42]);
        let json = snap.to_json().unwrap();
        let back = PospSnapshot::from_json(&json).unwrap();
        assert_eq!(back.quarantined, vec![7, 42]);
        assert!(PospSnapshot::capture(&ess).quarantined.is_empty());
        // snapshots from before the field existed decode to empty
        let legacy =
            json.replace(",\"quarantined\":[7,42]", "").replace("\"quarantined\":[7,42],", "");
        assert!(!legacy.contains("quarantined"), "test must actually strip the key");
        assert!(PospSnapshot::from_json(&legacy).unwrap().quarantined.is_empty());
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let ess = compiled();
        let mut snap = PospSnapshot::capture(&ess);
        snap.cell_cost[0] = -1.0;
        assert!(snap.clone().restore().unwrap_err().to_string().contains("invalid cell cost"));
        snap.cell_cost[0] = 1.0;
        snap.cell_plan[0] = 999;
        assert!(snap.clone().restore().unwrap_err().to_string().contains("unknown plan"));
        snap.cell_plan.pop();
        assert!(snap.restore().unwrap_err().to_string().contains("do not match grid"));
        assert!(PospSnapshot::from_json("{oops")
            .unwrap_err()
            .to_string()
            .contains("bad snapshot JSON"));
    }
}
