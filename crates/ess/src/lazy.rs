//! Lazy anytime POSP compilation: contour bands materialize on demand.
//!
//! The discovery algorithms climb iso-cost contours in budget order and
//! most runs terminate well below the top band, yet the eager
//! [`crate::Ess::compile`] pays for the *entire* surface up front. This
//! module compiles band-by-band instead: [`LazyEss::compile_through`]
//! floods the grid outward from the origin one cost band at a time, so a
//! discovery that terminates at contour `k` never invokes the optimizer on
//! cells above `k`'s boundary layer (the **frontier invariant**: a cell is
//! costed only when it is a `+1` neighbor of some cell in a band `≤ k`).
//!
//! Parity with the eager compiler is load-bearing, not best-effort:
//!
//! - Per-cell costs are bitwise identical. [`CompileMode::Exact`] runs the
//!   same DP per cell; recost mode replays the exact seed-lattice protocol
//!   ([`crate::posp::seed_marks`] / [`crate::posp::seed_box`]), DP'ing seed
//!   corners on demand and memoizing them, so every cell sees the same
//!   corner fingerprints and takes the same recost-vs-fallback branch.
//! - The band ladder is anchored at the origin and terminus cells — under
//!   plan-cost monotonicity (PCM, §2.5) exactly the eager `cmin`/`cmax` —
//!   and band membership uses the same epsilon-settled
//!   [`crate::contours::band_index`] arithmetic.
//! - [`LazyEss::finish`] feeds the completed surface through
//!   [`Posp::assemble`] in cell-index order, reproducing the eager
//!   first-seen plan-id assignment, so the finished snapshot is
//!   byte-identical to an eager compile's.
//!
//! Concurrency: one [`parking_lot::Mutex`] guards the frontier, making
//! band materialization single-flight — peers that ask for a band already
//! being compiled block only until *that* band is done, and a rayon
//! background task ([`LazyEss::prefetch`]) can keep compiling band `k+1`
//! while discovery executes on band `k`. Costing inside a band is
//! parallelized with rayon; the calling thread participates in its own
//! `par_iter`, so holding the frontier lock across it cannot deadlock the
//! pool.

use crate::contours::{band_index, band_index_clamped};
use crate::grid::{Cell, Grid};
use crate::posp::{is_seed_cell, seed_box, seed_marks, CompileMode, Posp};
use crate::registry::{PlanId, PlanRegistry};
use crate::{ContourSet, Ess, EssConfig};
use parking_lot::Mutex;
use rayon::prelude::*;
use rqp_catalog::{Catalog, Query, RqpError, RqpResult};
use rqp_optimizer::Optimizer;
use rqp_qplan::{cost_eq, CostModel, Fingerprint, PlanNode};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Sentinel for "not yet banded" in the frontier's `band_of` table.
const UNBANDED: u32 = u32::MAX;

/// Mutable compile state: which cells have been costed, which have been
/// flooded into a band, and which are parked above the compile cursor.
struct Frontier {
    /// Per-cell `(fingerprint, cost)` memo; `Some` once the cell has been
    /// costed (possibly only as a seed corner, without being banded).
    slot: Vec<Option<(Fingerprint, f64)>>,
    /// Whether the cell has entered the band machinery (frozen band,
    /// current wave, or parked). Distinct from "costed": recost seed
    /// corners and oracle peeks cost cells without visiting them, and the
    /// flood must still expand such cells when it reaches them.
    visited: Vec<bool>,
    /// Band assignment, valid only for visited cells.
    band_of: Vec<u32>,
    /// Frozen cell lists for bands `0..=compiled_through`, each ascending
    /// by cell index (matching [`ContourSet::cells`] order).
    bands: Vec<Arc<Vec<Cell>>>,
    /// Visited cells whose band lies above `compiled_through`, waiting for
    /// the cursor to reach them.
    parked: Vec<Cell>,
    /// Plans discovered so far, ids in discovery order (canonicalized to
    /// the eager first-seen-by-cell order only by [`LazyEss::finish`]).
    registry: PlanRegistry,
    /// Highest fully materialized band; `-1` before the first.
    compiled_through: isize,
}

impl Frontier {
    fn new(num_cells: usize) -> Frontier {
        Frontier {
            slot: vec![None; num_cells],
            visited: vec![false; num_cells],
            band_of: vec![UNBANDED; num_cells],
            bands: Vec::new(),
            parked: Vec::new(),
            registry: PlanRegistry::new(),
            compiled_through: -1,
        }
    }
}

/// A partially-compiled surface in storable form: everything the frontier
/// knows, minus the unbanded seed-corner memo (cheap to recompute and
/// deterministic, so dropping it cannot change any resumed result).
#[derive(Debug, Clone)]
pub struct PartialSurface {
    /// The grid (must match the resuming configuration's grid).
    pub grid: Grid,
    /// Contour ratio of the ladder.
    pub ratio: f64,
    /// Ladder anchor: optimal cost at the origin.
    pub cmin: f64,
    /// Ladder anchor: optimal cost at the terminus.
    pub cmax: f64,
    /// Discovered plans, in lazy-registry id order.
    pub plans: Vec<PlanNode>,
    /// Highest fully materialized band (`-1` = none).
    pub compiled_through: isize,
    /// Frozen bands `0..=compiled_through`: `(cell, plan index, cost)`.
    pub bands: Vec<Vec<(Cell, u32, f64)>>,
    /// Parked cells: `(cell, band, plan index, cost)`.
    pub parked: Vec<(Cell, u32, u32, f64)>,
}

/// Outcome of [`LazyEss::begin_cached`]: the persistent cache may already
/// hold the finished surface, in which case there is nothing to be lazy
/// about.
pub enum LazyStart {
    /// The cache held a complete snapshot; use it eagerly.
    Full(Arc<Ess>),
    /// A fresh (or partial-warm-started) lazy surface.
    Lazy(Arc<LazyEss>),
}

/// An anytime, band-by-band ESS compiler sharing the eager pipeline's
/// arithmetic cell for cell. See the module docs for the invariants.
pub struct LazyEss {
    catalog: Arc<Catalog>,
    query: Arc<Query>,
    model: CostModel,
    config: EssConfig,
    grid: Grid,
    /// Geometric contour ratio.
    ratio: f64,
    cmin: f64,
    cmax: f64,
    /// Lower band edges `cc[i] = cmin · ratio^i`; `cc.len()` is `m`.
    cc: Vec<f64>,
    /// `Some(stride)` iff the effective mode is recost (mirrors the
    /// `seed_stride > 1 && dims <= 8` guard in [`Posp::compile_with`]).
    stride: Option<usize>,
    /// Seed marks per dimension (empty in exact mode).
    is_seed: Vec<Vec<bool>>,
    state: Mutex<Frontier>,
    /// The finished, canonicalized surface (error kept as text so the
    /// result is cloneable out of the cell).
    finished: OnceLock<Result<Arc<Ess>, String>>,
    /// Highest band any prefetch has been asked for (coalesces spawns).
    prefetch_hi: AtomicUsize,
}

impl LazyEss {
    /// Start a lazy compile: builds the grid, DPs only the origin and
    /// terminus cells (the ladder anchors — both are seed cells in recost
    /// mode, so their costs match an eager compile bitwise), and parks
    /// them for the flood.
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] for a bad contour ratio or a
    /// degenerate anchor cost surface, and propagates grid construction
    /// errors.
    pub fn begin(
        catalog: &Catalog,
        query: &Query,
        model: CostModel,
        config: EssConfig,
    ) -> RqpResult<Arc<LazyEss>> {
        if !(config.contour_ratio.is_finite() && config.contour_ratio > 1.0) {
            return Err(RqpError::Config(format!(
                "contour ratio must exceed 1, got {}",
                config.contour_ratio
            )));
        }
        let dims = query.dims().max(1);
        let grid = Grid::uniform(dims, config.resolution, config.min_sel)?;
        Self::begin_on(catalog, query, model, config, grid)
    }

    fn begin_on(
        catalog: &Catalog,
        query: &Query,
        model: CostModel,
        config: EssConfig,
        grid: Grid,
    ) -> RqpResult<Arc<LazyEss>> {
        // The anchor DP is the lazy counterpart of the eager compile span:
        // it is all the single-flight window covers, so it carries the
        // same span name (kind Compile) for trace continuity.
        let mut compile_span =
            rqp_obs::current().span(rqp_obs::names::SPAN_ESS_COMPILE, rqp_obs::SpanKind::Compile);
        compile_span.attr("query", query.name.as_str());
        compile_span.attr("lazy", "anchors");
        let ratio = config.contour_ratio;
        let stride = match config.mode {
            CompileMode::Recost { seed_stride } if seed_stride > 1 && grid.dims() <= 8 => {
                Some(seed_stride)
            }
            _ => None,
        };
        let is_seed = stride.map(|s| seed_marks(&grid, s)).unwrap_or_default();

        let opt = Optimizer::new(catalog, query, model);
        let mut st = Frontier::new(grid.num_cells());
        let anchors = [grid.origin(), grid.terminus()];
        for &cell in &anchors {
            if st.slot[cell].is_none() {
                let planned = opt.optimize(&grid.location(cell));
                let fp = Fingerprint::of(&planned.plan);
                st.registry.insert(planned.plan);
                st.slot[cell] = Some((fp, planned.cost));
            }
        }
        let cmin = st.slot[grid.origin()].map(|(_, c)| c).unwrap_or(f64::NAN);
        let cmax = st.slot[grid.terminus()].map(|(_, c)| c).unwrap_or(f64::NAN);
        if !(cmin > 0.0 && cmin.is_finite() && cmax.is_finite()) {
            return Err(RqpError::Config(format!(
                "degenerate optimal cost surface: cmin {cmin}, cmax {cmax}"
            )));
        }
        let m = band_index(cmax, cmin, ratio)? + 1;
        let cc: Vec<f64> = (0..m).map(|i| cmin * ratio.powi(i as i32)).collect();
        for &cell in &anchors {
            if !st.visited[cell] {
                let cost = st.slot[cell].map(|(_, c)| c).unwrap_or(f64::NAN);
                st.visited[cell] = true;
                st.band_of[cell] = band_index_clamped(cost, cmin, ratio, m) as u32;
                st.parked.push(cell);
            }
        }

        compile_span.attr("grid_cells", grid.num_cells() as u64);
        compile_span.attr("contour_bands", m as u64);
        drop(compile_span);

        Ok(Arc::new(LazyEss {
            catalog: Arc::new(catalog.clone()),
            query: Arc::new(query.clone()),
            model,
            config,
            grid,
            ratio,
            cmin,
            cmax,
            cc,
            stride,
            is_seed,
            state: Mutex::new(st),
            finished: OnceLock::new(),
            prefetch_hi: AtomicUsize::new(0),
        }))
    }

    /// Like [`LazyEss::begin`], but consults a persistent cache first: a
    /// complete snapshot short-circuits to an eager surface, a partial
    /// snapshot warm-starts the frontier, and anything else begins cold.
    ///
    /// # Errors
    /// Propagates [`LazyEss::begin`] errors; unusable cache entries are
    /// treated as misses, never as failures.
    pub fn begin_cached(
        catalog: &Catalog,
        query: &Query,
        model: CostModel,
        config: EssConfig,
        cache: Option<&crate::CompileCache>,
    ) -> RqpResult<LazyStart> {
        if let Some(cache) = cache {
            let fp = crate::compile_fingerprint(catalog, query, &model, &config);
            if let Some(ess) = cache.load(fp).and_then(|snap| snap.restore().ok()) {
                crate::obs::metrics().cache_hits.inc();
                return Ok(LazyStart::Full(Arc::new(ess)));
            }
            if let Some(partial) = cache.load_partial(fp) {
                if let Ok(lazy) = LazyEss::resume(catalog, query, model, config, partial) {
                    crate::obs::metrics().cache_hits.inc();
                    return Ok(LazyStart::Lazy(lazy));
                }
            }
            crate::obs::metrics().cache_misses.inc();
        }
        Ok(LazyStart::Lazy(LazyEss::begin(catalog, query, model, config)?))
    }

    /// Rehydrate a lazy compile from a stored [`PartialSurface`], resuming
    /// exactly where [`LazyEss::partial`] captured it. Resumed compilation
    /// is deterministic, so finishing a resumed surface produces the same
    /// bytes as finishing the original (or compiling eagerly).
    ///
    /// # Errors
    /// Returns [`RqpError::Snapshot`] if the partial disagrees with the
    /// configuration's grid or is internally inconsistent.
    pub fn resume(
        catalog: &Catalog,
        query: &Query,
        model: CostModel,
        config: EssConfig,
        partial: PartialSurface,
    ) -> RqpResult<Arc<LazyEss>> {
        let bad = |msg: String| RqpError::Snapshot(format!("partial surface: {msg}"));
        let dims = query.dims().max(1);
        let grid = Grid::uniform(dims, config.resolution, config.min_sel)?;
        if partial.grid != grid {
            return Err(bad("grid does not match the resuming configuration".into()));
        }
        if !cost_eq(partial.ratio, config.contour_ratio) {
            return Err(bad(format!(
                "contour ratio {} does not match configured {}",
                partial.ratio, config.contour_ratio
            )));
        }
        let this = Self::begin_on(catalog, query, model, config, grid)?;
        {
            let mut st = this.state.lock();
            // the anchors must agree bitwise, or the stored ladder is for a
            // different surface than this catalog/query/model produces
            if partial.cmin.to_bits() != this.cmin.to_bits()
                || partial.cmax.to_bits() != this.cmax.to_bits()
            {
                return Err(bad("ladder anchors disagree with a fresh compile".into()));
            }
            let m = this.cc.len();
            if partial.compiled_through >= m as isize
                || partial.bands.len() as isize != partial.compiled_through + 1
            {
                return Err(bad(format!(
                    "compiled_through {} inconsistent with {} stored bands (ladder m {m})",
                    partial.compiled_through,
                    partial.bands.len()
                )));
            }
            // wipe the cold-start parking and replay the stored frontier
            *st = Frontier::new(this.grid.num_cells());
            for plan in &partial.plans {
                st.registry.insert(plan.clone());
            }
            if st.registry.len() != partial.plans.len() {
                return Err(bad("duplicate plans in stored registry".into()));
            }
            let fp_of = |idx: u32| -> RqpResult<Fingerprint> {
                partial
                    .plans
                    .get(idx as usize)
                    .map(Fingerprint::of)
                    .ok_or_else(|| bad(format!("plan index {idx} out of range")))
            };
            let admit =
                |st: &mut Frontier, cell: Cell, band: u32, idx: u32, cost: f64| -> RqpResult<()> {
                    if cell >= this.grid.num_cells() || band as usize >= m {
                        return Err(bad(format!("cell {cell} / band {band} out of range")));
                    }
                    if st.visited[cell] {
                        return Err(bad(format!("cell {cell} recorded twice")));
                    }
                    if !(cost.is_finite() && cost > 0.0) && (band as usize) < m - 1 {
                        return Err(bad(format!("cell {cell} has degenerate cost {cost}")));
                    }
                    st.slot[cell] = Some((fp_of(idx)?, cost));
                    st.visited[cell] = true;
                    st.band_of[cell] = band;
                    Ok(())
                };
            for (b, members) in partial.bands.iter().enumerate() {
                let mut frozen = Vec::with_capacity(members.len());
                for &(cell, idx, cost) in members {
                    admit(&mut st, cell, b as u32, idx, cost)?;
                    frozen.push(cell);
                }
                frozen.sort_unstable();
                st.bands.push(Arc::new(frozen));
            }
            for &(cell, band, idx, cost) in &partial.parked {
                if (band as isize) <= partial.compiled_through {
                    return Err(bad(format!("parked cell {cell} below the compile cursor")));
                }
                admit(&mut st, cell, band, idx, cost)?;
                st.parked.push(cell);
            }
            st.compiled_through = partial.compiled_through;
        }
        Ok(this)
    }

    /// Persist the current frontier into `cache` under this surface's
    /// compile fingerprint, so a later process can [`LazyEss::resume`].
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if the entry cannot be written.
    pub fn checkpoint(&self, cache: &crate::CompileCache) -> RqpResult<()> {
        let fp = crate::compile_fingerprint(&self.catalog, &self.query, &self.model, &self.config);
        cache.store_partial(fp, &self.partial())?;
        crate::obs::metrics().cache_stores.inc();
        Ok(())
    }

    /// Capture the current frontier as a storable [`PartialSurface`].
    pub fn partial(&self) -> PartialSurface {
        let st = self.state.lock();
        let plans: Vec<PlanNode> = st.registry.iter().map(|(_, p)| (**p).clone()).collect();
        let record = |cell: Cell| -> (u32, f64) {
            match st.slot[cell] {
                Some((fp, cost)) => (st.registry.get(fp).map(|id| id.0).unwrap_or(0), cost),
                // unreachable: visited cells are always costed
                None => (0, f64::NAN),
            }
        };
        let bands: Vec<Vec<(Cell, u32, f64)>> = st
            .bands
            .iter()
            .map(|band| {
                band.iter()
                    .map(|&cell| {
                        let (idx, cost) = record(cell);
                        (cell, idx, cost)
                    })
                    .collect()
            })
            .collect();
        let parked: Vec<(Cell, u32, u32, f64)> = st
            .parked
            .iter()
            .map(|&cell| {
                let (idx, cost) = record(cell);
                (cell, st.band_of[cell], idx, cost)
            })
            .collect();
        PartialSurface {
            grid: self.grid.clone(),
            ratio: self.ratio,
            cmin: self.cmin,
            cmax: self.cmax,
            plans,
            compiled_through: st.compiled_through,
            bands,
            parked,
        }
    }

    /// The grid (fully known up front — laziness is per band, not per axis).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of contour bands `m` (known up front from the anchors).
    pub fn num_bands(&self) -> usize {
        self.cc.len()
    }

    /// Lower-edge cost `CC_i` of band `i`.
    pub fn cc(&self, band: usize) -> f64 {
        self.cc[band]
    }

    /// The contour ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The configuration this surface compiles under.
    pub fn config(&self) -> EssConfig {
        self.config
    }

    /// Number of bands materialized so far.
    pub fn bands_compiled(&self) -> usize {
        (self.state.lock().compiled_through + 1) as usize
    }

    /// Number of cells costed so far (bands, boundary layer, seed corners
    /// and oracle peeks) — the laziness measure the tests assert on.
    pub fn costed_cells(&self) -> usize {
        self.state.lock().slot.iter().filter(|s| s.is_some()).count()
    }

    /// Distinct plans discovered so far.
    pub fn num_plans_discovered(&self) -> usize {
        self.state.lock().registry.len()
    }

    /// Materialize every band up to and including `band` (clamped to the
    /// ladder). Single-flight: concurrent callers serialize on the
    /// frontier lock and whoever arrives second finds the bands done.
    pub fn compile_through(&self, band: usize) {
        let target = band.min(self.num_bands() - 1) as isize;
        let mut st = self.state.lock();
        if st.compiled_through >= target {
            return;
        }
        let opt = Optimizer::new(&self.catalog, &self.query, self.model);
        let tracer = rqp_obs::current();
        while st.compiled_through < target {
            let k = (st.compiled_through + 1) as usize;
            let sw = rqp_obs::Stopwatch::start();
            let members = self.flood_band(&mut st, &opt, k);
            let cells = members.len();
            st.bands.push(Arc::new(members));
            st.compiled_through = k as isize;
            crate::obs::metrics().bands_compiled.inc();
            if tracer.is_enabled() {
                tracer.record_span(
                    rqp_obs::names::SPAN_ESS_BAND_COMPILE,
                    rqp_obs::SpanKind::CompilePhase,
                    sw.elapsed_secs(),
                    vec![
                        ("band", rqp_obs::JsonValue::from(k as u64)),
                        ("cells", rqp_obs::JsonValue::from(cells as u64)),
                    ],
                );
            }
        }
    }

    /// Flood band `k`: expand parked band-`k` cells, costing `+1`
    /// neighbors; neighbors landing in band `k` join the wave, higher
    /// bands park. Returns `k`'s members ascending by cell index.
    fn flood_band(&self, st: &mut Frontier, opt: &Optimizer<'_>, k: usize) -> Vec<Cell> {
        let grid = &self.grid;
        let dims = grid.dims();
        let m = self.num_bands();
        let mut members: Vec<Cell> = Vec::new();
        let mut wave: Vec<Cell> = Vec::new();
        let mut still_parked = Vec::with_capacity(st.parked.len());
        for &c in &st.parked {
            if st.band_of[c] as usize == k {
                wave.push(c);
            } else {
                still_parked.push(c);
            }
        }
        st.parked = still_parked;

        let mut coords = vec![0usize; dims];
        while !wave.is_empty() {
            members.extend_from_slice(&wave);
            let mut fresh: BTreeSet<Cell> = BTreeSet::new();
            for &c in &wave {
                grid.coords_into(c, &mut coords);
                for d in 0..dims {
                    if coords[d] + 1 < grid.res(d) {
                        coords[d] += 1;
                        let n = grid.index(&coords);
                        coords[d] -= 1;
                        if !st.visited[n] {
                            fresh.insert(n);
                        }
                    }
                }
            }
            let fresh: Vec<Cell> = fresh.into_iter().collect();
            self.cost_cells(st, opt, &fresh);
            let mut next = Vec::new();
            for n in fresh {
                let cost = st.slot[n].map(|(_, c)| c).unwrap_or(f64::NAN);
                let mut b = band_index_clamped(cost, self.cmin, self.ratio, m);
                if b < k {
                    // only reachable when PCM is violated at a band edge by
                    // more than the cost_eq tolerance; fold the cell into
                    // the current band so the flood stays a down-set
                    debug_assert!(
                        cost_eq(cost, self.cc[k]),
                        "cell {n} banded below the flood cursor (cost {cost}, band {b} < {k})"
                    );
                    b = k;
                }
                st.visited[n] = true;
                st.band_of[n] = b as u32;
                if b == k {
                    next.push(n);
                } else {
                    st.parked.push(n);
                }
            }
            wave = next;
        }
        members.sort_unstable();
        members
    }

    /// Cost every not-yet-costed cell in `cells`, replicating the eager
    /// per-cell protocol of the effective compile mode.
    fn cost_cells(&self, st: &mut Frontier, opt: &Optimizer<'_>, cells: &[Cell]) {
        let grid = &self.grid;
        match self.stride {
            None => {
                let jobs: Vec<Cell> =
                    cells.iter().copied().filter(|&c| st.slot[c].is_none()).collect();
                let done: Vec<(Cell, Fingerprint, PlanNode, f64)> = jobs
                    .into_par_iter()
                    .map(|cell| {
                        let planned = opt.optimize(&grid.location(cell));
                        let fp = Fingerprint::of(&planned.plan);
                        (cell, fp, planned.plan, planned.cost)
                    })
                    .collect();
                for (cell, fp, plan, cost) in done {
                    if st.registry.get(fp).is_some() {
                        crate::obs::metrics().memo_hits.inc();
                    }
                    st.registry.insert(plan);
                    st.slot[cell] = Some((fp, cost));
                }
            }
            Some(stride) => self.cost_cells_recost(st, opt, cells, stride),
        }
    }

    /// Recost-mode costing: DP any needed seed cells first (the cells
    /// themselves when on the sublattice, plus the seed-box corners of
    /// those that are not), then fill non-seed cells by corner agreement
    /// exactly as [`crate::posp`]'s eager pass does.
    fn cost_cells_recost(
        &self,
        st: &mut Frontier,
        opt: &Optimizer<'_>,
        cells: &[Cell],
        stride: usize,
    ) {
        let grid = &self.grid;
        let dims = grid.dims();
        let metrics = crate::obs::metrics();
        let mut seed_jobs: BTreeSet<Cell> = BTreeSet::new();
        let mut fill_jobs: Vec<Cell> = Vec::new();
        let mut lo = vec![0usize; dims];
        let mut hi = vec![0usize; dims];
        let mut coords = vec![0usize; dims];
        for &cell in cells {
            if st.slot[cell].is_some() {
                continue;
            }
            if is_seed_cell(grid, &self.is_seed, cell) {
                seed_jobs.insert(cell);
                continue;
            }
            fill_jobs.push(cell);
            seed_box(grid, &self.is_seed, stride, cell, &mut lo, &mut hi);
            for mask in 0u32..(1u32 << dims) {
                for d in 0..dims {
                    coords[d] = if mask & (1 << d) != 0 { hi[d] } else { lo[d] };
                }
                let corner = grid.index(&coords);
                if st.slot[corner].is_none() {
                    seed_jobs.insert(corner);
                }
            }
        }

        let seed_jobs: Vec<Cell> = seed_jobs.into_iter().collect();
        metrics.seed_cells.add(seed_jobs.len() as u64);
        let seeded: Vec<(Cell, Fingerprint, PlanNode, f64)> = seed_jobs
            .into_par_iter()
            .map(|cell| {
                let planned = opt.optimize(&grid.location(cell));
                let fp = Fingerprint::of(&planned.plan);
                (cell, fp, planned.plan, planned.cost)
            })
            .collect();
        for (cell, fp, plan, cost) in seeded {
            if st.registry.get(fp).is_some() {
                metrics.memo_hits.inc();
            }
            st.registry.insert(plan);
            st.slot[cell] = Some((fp, cost));
        }

        // fill pass: corners are all costed now; read-only over the memo
        let (slot, registry) = (&st.slot, &st.registry);
        let filled: Vec<(Cell, Fingerprint, Option<PlanNode>, f64, bool)> = fill_jobs
            .par_iter()
            .map(|&cell| {
                let mut lo = vec![0usize; dims];
                let mut hi = vec![0usize; dims];
                let mut coords = vec![0usize; dims];
                seed_box(grid, &self.is_seed, stride, cell, &mut lo, &mut hi);
                let mut agreed: Option<Fingerprint> = None;
                let mut agree = true;
                'corners: for mask in 0u32..(1u32 << dims) {
                    for d in 0..dims {
                        coords[d] = if mask & (1 << d) != 0 { hi[d] } else { lo[d] };
                    }
                    match (slot[grid.index(&coords)], agreed) {
                        (Some((fp, _)), None) => agreed = Some(fp),
                        (Some((fp, _)), Some(first)) if fp == first => {}
                        _ => {
                            agree = false;
                            break 'corners;
                        }
                    }
                }
                if let (true, Some(first)) = (agree, agreed) {
                    if let Some(id) = registry.get(first) {
                        let cost = opt.cost_of(registry.plan(id), &grid.location(cell));
                        return (cell, first, None, cost, true);
                    }
                }
                let planned = opt.optimize(&grid.location(cell));
                let fp = Fingerprint::of(&planned.plan);
                (cell, fp, Some(planned.plan), planned.cost, false)
            })
            .collect();
        for (cell, fp, plan, cost, recosted) in filled {
            if recosted {
                metrics.recost_cells.inc();
            } else {
                metrics.recost_fallback_cells.inc();
                if st.registry.get(fp).is_some() {
                    metrics.memo_hits.inc();
                }
                if let Some(plan) = plan {
                    st.registry.insert(plan);
                }
            }
            st.slot[cell] = Some((fp, cost));
        }
    }

    /// Cost one cell outside the flood (an oracle peek): memoized, does
    /// not visit the cell, and never compiles a band.
    fn peek(&self, cell: Cell) -> (Fingerprint, f64) {
        let mut st = self.state.lock();
        if st.slot[cell].is_none() {
            let opt = Optimizer::new(&self.catalog, &self.query, self.model);
            self.cost_cells(&mut st, &opt, &[cell]);
        }
        st.slot[cell].unwrap_or((Fingerprint(0), f64::NAN))
    }

    /// The optimal cost at a cell (costing it on demand if necessary —
    /// a single-cell peek, not a band compile).
    pub fn cost(&self, cell: Cell) -> f64 {
        self.peek(cell).1
    }

    /// The band a cell belongs to (costing it on demand if necessary).
    pub fn band_of(&self, cell: Cell) -> usize {
        let (_, cost) = self.peek(cell);
        band_index_clamped(cost, self.cmin, self.ratio, self.num_bands())
    }

    /// The cells of `band`, compiling through it first if needed.
    /// Ascending by cell index, like [`ContourSet::cells`].
    pub fn band_cells(&self, band: usize) -> Arc<Vec<Cell>> {
        let band = band.min(self.num_bands() - 1);
        self.compile_through(band);
        Arc::clone(&self.state.lock().bands[band])
    }

    /// The optimal plan id at a cell, in the *lazy* registry's id space
    /// (stable within this surface; canonicalized only by [`finish`]).
    ///
    /// [`finish`]: LazyEss::finish
    pub fn plan_id_at(&self, cell: Cell) -> PlanId {
        let (fp, _) = self.peek(cell);
        self.state.lock().registry.get(fp).unwrap_or(PlanId(0))
    }

    /// The plan with a (lazy) id.
    pub fn plan(&self, id: PlanId) -> Arc<PlanNode> {
        Arc::clone(self.state.lock().registry.plan(id))
    }

    /// Cost of an arbitrary discovered plan at an arbitrary cell.
    pub fn plan_cost_at(&self, id: PlanId, cell: Cell) -> f64 {
        let plan = self.plan(id);
        let opt = Optimizer::new(&self.catalog, &self.query, self.model);
        opt.cost_of(&plan, &self.grid.location(cell))
    }

    /// All plan ids discovered so far (the pool grows as bands compile).
    pub fn plan_pool(&self) -> Vec<PlanId> {
        (0..self.state.lock().registry.len() as u32).map(PlanId).collect()
    }

    /// Ask a rayon background task to compile through `band` while the
    /// caller keeps executing on lower bands. Coalesced: only a request
    /// above every previous one spawns a task.
    pub fn prefetch(self: &Arc<Self>, band: usize) {
        let target = band.min(self.num_bands() - 1);
        // +1 so the initial value 0 doesn't swallow a request for band 0
        if self.prefetch_hi.fetch_max(target + 1, Ordering::SeqCst) > target {
            return;
        }
        let this = Arc::clone(self);
        rayon::spawn(move || {
            // chase the latest coalesced target, not just our own
            let hi = this.prefetch_hi.load(Ordering::SeqCst).saturating_sub(1);
            this.compile_through(hi);
        });
    }

    /// Complete the surface and canonicalize it into an [`Ess`] that is
    /// byte-identical to an eager compile: flood the remaining bands, then
    /// assemble per-cell results in cell-index order (reproducing the
    /// eager first-seen plan-id assignment) and rebuild the contours from
    /// the full surface.
    ///
    /// # Errors
    /// Returns [`RqpError::Config`] if the completed surface cannot be
    /// banded (degenerate costs that the lazy clamp tolerated).
    pub fn finish(&self) -> RqpResult<Arc<Ess>> {
        let out = self.finished.get_or_init(|| {
            self.compile_through(self.num_bands() - 1);
            let st = self.state.lock();
            let mut per_cell: Vec<(Fingerprint, f64)> = Vec::with_capacity(self.grid.num_cells());
            for cell in self.grid.cells() {
                match st.slot[cell] {
                    Some(entry) => per_cell.push(entry),
                    None => {
                        return Err(format!(
                            "cell {cell} left uncosted by a completed lazy compile"
                        ))
                    }
                }
            }
            let plans = st
                .registry
                .iter()
                .map(|(_, p)| (Fingerprint::of(p), (**p).clone()))
                .collect::<std::collections::HashMap<_, _>>();
            drop(st);
            let posp = Posp::assemble(self.grid.clone(), per_cell, plans);
            let contours = ContourSet::build(&posp, self.ratio).map_err(|e| e.to_string())?;
            Ok(Arc::new(Ess { posp, contours }))
        });
        match out {
            Ok(ess) => Ok(Arc::clone(ess)),
            Err(e) => Err(RqpError::Config(format!("lazy finish: {e}"))),
        }
    }

    /// The finished surface, if [`finish`] already ran successfully.
    ///
    /// [`finish`]: LazyEss::finish
    pub fn finished(&self) -> Option<Arc<Ess>> {
        self.finished.get().and_then(|r| r.as_ref().ok()).cloned()
    }
}

impl Drop for LazyEss {
    fn drop(&mut self) {
        // bands the surface never had to pay for — the whole point
        let compiled = self.state.get_mut().compiled_through;
        let skipped = (self.cc.len() as isize - 1 - compiled).max(0);
        crate::obs::metrics().bands_skipped.add(skipped as u64);
    }
}

impl std::fmt::Debug for LazyEss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("LazyEss")
            .field("query", &self.query.name)
            .field("num_bands", &self.cc.len())
            .field("compiled_through", &st.compiled_through)
            .field("plans_discovered", &st.registry.len())
            .finish()
    }
}
