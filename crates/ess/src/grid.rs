//! The discretized error-prone selectivity space.
//!
//! Each epp dimension carries a log-spaced axis from a small minimum
//! selectivity up to 1.0 (§2.1: "an appropriately discretized grid version
//! of [0,1]^D"). Cells are addressed by a linear index in row-major order
//! (dimension 0 varies fastest).

use rqp_catalog::{RqpError, RqpResult, SelVector, Selectivity};
use serde::{Deserialize, Serialize};

/// Linear index of a grid cell.
pub type Cell = usize;

/// A log-scale multi-dimensional grid over the ESS.
///
/// Deserialization is routed through [`Grid::from_axes`] (via the
/// `GridSerde` shadow), so a malformed payload — empty axis list, empty or
/// unsorted axes, out-of-range values — is a structured decode error
/// rather than a reachable invalid state. Every constructed `Grid`
/// therefore has at least one axis with at least two points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "GridSerde")]
pub struct Grid {
    /// Per-dimension axis values, strictly increasing, ending at 1.0.
    axes: Vec<Vec<f64>>,
    /// Row-major strides.
    strides: Vec<usize>,
    cells: usize,
}

/// Untrusted wire form of [`Grid`]; validated by `TryFrom` on decode.
#[derive(Deserialize)]
struct GridSerde {
    axes: Vec<Vec<f64>>,
    #[serde(default)]
    strides: Vec<usize>,
    #[serde(default)]
    cells: usize,
}

impl TryFrom<GridSerde> for Grid {
    type Error = RqpError;

    fn try_from(raw: GridSerde) -> RqpResult<Grid> {
        let grid = Grid::from_axes(raw.axes)?;
        // strides/cells are derived state; recomputing them ignores (and
        // thereby corrects) whatever the payload claimed.
        let _ = (raw.strides, raw.cells);
        Ok(grid)
    }
}

impl Grid {
    /// A uniform grid: every dimension gets `res` log-spaced points from
    /// `min_sel` to 1.0.
    ///
    /// Errors if `dims == 0`, `res < 2`, `min_sel` is outside `(0,1)`, or
    /// the total cell count `res^dims` overflows.
    pub fn uniform(dims: usize, res: usize, min_sel: f64) -> RqpResult<Self> {
        if dims < 1 || res < 2 || !(min_sel > 0.0 && min_sel < 1.0) {
            return Err(RqpError::InvalidQuery(format!(
                "grid needs dims >= 1, res >= 2 and min_sel in (0,1); \
                 got dims {dims}, res {res}, min_sel {min_sel}"
            )));
        }
        let axis: Vec<f64> = (0..res)
            .map(|k| {
                let t = k as f64 / (res - 1) as f64;
                // log-space interpolation from min_sel to 1.0
                10f64.powf(min_sel.log10() * (1.0 - t))
            })
            .collect();
        Self::from_axes(vec![axis; dims])
    }

    /// A grid from explicit axes.
    ///
    /// Errors if any axis is not strictly increasing within `(0, 1]`, or if
    /// the total cell count overflows.
    pub fn from_axes(axes: Vec<Vec<f64>>) -> RqpResult<Self> {
        if axes.is_empty() {
            return Err(RqpError::InvalidQuery("grid needs at least one axis".into()));
        }
        for axis in &axes {
            let ok = axis.len() >= 2
                && axis.windows(2).all(|w| w[0] < w[1])
                && axis[0] > 0.0
                && axis[axis.len() - 1] <= 1.0;
            if !ok {
                return Err(RqpError::InvalidQuery(
                    "grid axis must be strictly increasing within (0, 1] \
                     with at least two points"
                        .into(),
                ));
            }
        }
        let mut strides = Vec::with_capacity(axes.len());
        let mut acc = 1usize;
        let max_res = axes.iter().map(Vec::len).max().unwrap_or(0);
        for axis in &axes {
            strides.push(acc);
            acc = acc
                .checked_mul(axis.len())
                .ok_or(RqpError::GridTooLarge { resolution: max_res, dims: axes.len() })?;
        }
        Ok(Grid { axes, strides, cells: acc })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Resolution (number of points) of dimension `d`.
    pub fn res(&self, d: usize) -> usize {
        self.axes[d].len()
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells
    }

    /// Axis value of dimension `d` at index `i`.
    pub fn value(&self, d: usize, i: usize) -> f64 {
        self.axes[d][i]
    }

    /// Grid coordinates of a cell.
    pub fn coords_of(&self, cell: Cell) -> Vec<usize> {
        let mut out = vec![0; self.dims()];
        self.coords_into(cell, &mut out);
        out
    }

    /// Grid coordinates of a cell, written into `out`.
    pub fn coords_into(&self, cell: Cell, out: &mut [usize]) {
        debug_assert!(cell < self.cells);
        debug_assert_eq!(out.len(), self.dims());
        let mut rest = cell;
        for d in (0..self.dims()).rev() {
            out[d] = rest / self.strides[d];
            rest %= self.strides[d];
        }
    }

    /// Coordinate of `cell` along a single dimension (cheaper than
    /// materializing all coordinates).
    pub fn coord(&self, cell: Cell, d: usize) -> usize {
        (cell / self.strides[d]) % self.axes[d].len()
    }

    /// Linear index from coordinates.
    pub fn index(&self, coords: &[usize]) -> Cell {
        debug_assert_eq!(coords.len(), self.dims());
        coords.iter().zip(&self.strides).map(|(&c, &s)| c * s).sum()
    }

    /// The selectivity location of a cell.
    pub fn location(&self, cell: Cell) -> SelVector {
        let mut coords = vec![0; self.dims()];
        self.coords_into(cell, &mut coords);
        SelVector::new(
            coords.iter().enumerate().map(|(d, &i)| Selectivity::new(self.axes[d][i])).collect(),
        )
    }

    /// Whether cell `a` dominates cell `b` (component-wise ≥).
    pub fn dominates(&self, a: Cell, b: Cell) -> bool {
        (0..self.dims()).all(|d| self.coord(a, d) >= self.coord(b, d))
    }

    /// The origin cell (all minimum selectivities).
    pub fn origin(&self) -> Cell {
        0
    }

    /// The terminus cell (all selectivities 1.0).
    pub fn terminus(&self) -> Cell {
        self.cells - 1
    }

    /// Smallest axis index of dimension `d` whose value is ≥ `v` (with a
    /// tiny tolerance for values that are exactly on an axis point).
    /// Returns the last index if `v` exceeds the axis maximum (or is NaN).
    ///
    /// Total: the `saturating_sub` keeps the miss arm well-defined even
    /// for a hypothetical empty axis (the old `axis.len() - 1` underflowed
    /// to a panic); construction-time validation means the arm is only
    /// ever taken for over-range `v` in practice.
    pub fn snap_ceil(&self, d: usize, v: f64) -> usize {
        let axis = &self.axes[d];
        axis.iter().position(|&x| x >= v * (1.0 - 1e-12)).unwrap_or(axis.len().saturating_sub(1))
    }

    /// Largest axis index of dimension `d` whose value is ≤ `v`; 0 if `v`
    /// is below the axis minimum.
    pub fn snap_floor(&self, d: usize, v: f64) -> usize {
        let axis = &self.axes[d];
        axis.iter().rposition(|&x| x <= v * (1.0 + 1e-12)).unwrap_or_default()
    }

    /// Iterate over all cells.
    pub fn cells(&self) -> std::ops::Range<Cell> {
        0..self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axis_ends_are_exact() {
        let g = Grid::uniform(2, 5, 1e-4).unwrap();
        assert_eq!(g.dims(), 2);
        assert_eq!(g.res(0), 5);
        assert!((g.value(0, 0) - 1e-4).abs() < 1e-15);
        assert!((g.value(0, 4) - 1.0).abs() < 1e-12);
        assert_eq!(g.num_cells(), 25);
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid::uniform(3, 4, 1e-3).unwrap();
        for cell in g.cells() {
            let coords = g.coords_of(cell);
            assert_eq!(g.index(&coords), cell);
            for (d, &coord) in coords.iter().enumerate() {
                assert_eq!(g.coord(cell, d), coord);
            }
        }
    }

    #[test]
    fn dominance_matches_coordinates() {
        let g = Grid::uniform(2, 4, 1e-3).unwrap();
        let a = g.index(&[2, 3]);
        let b = g.index(&[1, 3]);
        let c = g.index(&[3, 1]);
        assert!(g.dominates(a, b));
        assert!(!g.dominates(b, a));
        assert!(!g.dominates(a, c) && !g.dominates(c, a));
        assert!(g.dominates(g.terminus(), a));
        assert!(g.dominates(a, g.origin()));
    }

    #[test]
    fn location_values_match_axes() {
        let g = Grid::uniform(2, 3, 1e-2).unwrap();
        let cell = g.index(&[1, 2]);
        let loc = g.location(cell);
        assert!((loc.get(0).value() - g.value(0, 1)).abs() < 1e-15);
        assert!((loc.get(1).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapping_is_consistent() {
        let g = Grid::uniform(1, 5, 1e-4).unwrap();
        for i in 0..5 {
            let v = g.value(0, i);
            assert_eq!(g.snap_ceil(0, v), i, "exact point should snap to itself");
            assert_eq!(g.snap_floor(0, v), i);
        }
        assert_eq!(g.snap_ceil(0, g.value(0, 1) * 1.01), 2);
        assert_eq!(g.snap_floor(0, g.value(0, 1) * 1.01), 1);
        assert_eq!(g.snap_ceil(0, 2.0), 4, "beyond max snaps to last");
        assert_eq!(g.snap_floor(0, 1e-9), 0, "below min snaps to 0");
    }

    #[test]
    fn asymmetric_axes_supported() {
        let g = Grid::from_axes(vec![vec![0.1, 0.5, 1.0], vec![0.2, 1.0]]).unwrap();
        assert_eq!(g.num_cells(), 6);
        assert_eq!(g.res(0), 3);
        assert_eq!(g.res(1), 2);
        assert_eq!(g.coords_of(5), vec![2, 1]);
    }

    #[test]
    fn rejects_unsorted_axis() {
        let err = Grid::from_axes(vec![vec![0.5, 0.1, 1.0]]).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"), "{err}");
    }

    #[test]
    fn oversized_grid_is_an_error_not_an_abort() {
        // 1000^8 cells overflows usize on every supported platform
        let err = Grid::uniform(8, 1000, 1e-6).unwrap_err();
        assert!(matches!(err, rqp_catalog::RqpError::GridTooLarge { resolution: 1000, dims: 8 }));
    }

    #[test]
    fn snapping_is_total_on_degenerate_inputs() {
        let g = Grid::uniform(1, 4, 1e-3).unwrap();
        // NaN matches no axis point; both snaps take their miss arm
        assert_eq!(g.snap_ceil(0, f64::NAN), 3);
        assert_eq!(g.snap_floor(0, f64::NAN), 0);
        assert_eq!(g.snap_ceil(0, f64::INFINITY), 3);
        assert_eq!(g.snap_floor(0, f64::NEG_INFINITY), 0);
        assert_eq!(g.snap_ceil(0, 0.0), 0, "non-positive v is below every axis point");
        assert_eq!(g.snap_floor(0, 2.0), 3);
    }

    #[test]
    fn deserialization_revalidates_axes() {
        // Regression: a derived Deserialize would bypass from_axes, so a
        // malformed payload could smuggle in an empty axis and crash
        // snap_ceil via usize underflow. Grid routes decoding through
        // `TryFrom<GridSerde>`, which re-runs construction validation.
        for bad in [
            GridSerde { axes: vec![], strides: vec![], cells: 0 },
            GridSerde { axes: vec![vec![]], strides: vec![1], cells: 0 },
            GridSerde { axes: vec![vec![0.5]], strides: vec![1], cells: 1 },
            GridSerde { axes: vec![vec![0.5, 0.1, 1.0]], strides: vec![1], cells: 3 },
            GridSerde { axes: vec![vec![0.5, 1.5]], strides: vec![1], cells: 2 },
        ] {
            assert!(Grid::try_from(bad).is_err());
        }
    }

    #[test]
    fn deserialization_recomputes_derived_state() {
        // lying about strides/cells cannot corrupt indexing: the decode
        // gate recomputes both from the axes alone
        let forged = GridSerde {
            axes: vec![vec![0.1, 1.0], vec![0.2, 1.0]],
            strides: vec![99, 99],
            cells: 7,
        };
        let f = Grid::try_from(forged).unwrap();
        assert_eq!(f, Grid::from_axes(vec![vec![0.1, 1.0], vec![0.2, 1.0]]).unwrap());
        assert_eq!(f.num_cells(), 4);
        assert_eq!(f.index(&[1, 1]), 3);
    }

    #[test]
    fn degenerate_parameters_are_errors() {
        assert!(Grid::uniform(0, 10, 1e-4).is_err());
        assert!(Grid::uniform(2, 1, 1e-4).is_err());
        assert!(Grid::uniform(2, 10, 0.0).is_err());
        assert!(Grid::uniform(2, 10, 1.0).is_err());
        assert!(Grid::from_axes(vec![]).is_err());
        assert!(Grid::from_axes(vec![vec![0.5]]).is_err());
        assert!(Grid::from_axes(vec![vec![0.5, 1.5]]).is_err());
    }
}
