//! The plan registry: deduplicated storage of every distinct plan seen
//! while compiling an ESS.

use rqp_qplan::{Fingerprint, PlanNode};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a registered plan. Display follows the paper's `P<k>`
/// convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanId(pub u32);

impl std::fmt::Display for PlanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

/// Deduplicated plan storage.
#[derive(Debug, Clone, Default)]
pub struct PlanRegistry {
    plans: Vec<Arc<PlanNode>>,
    by_fp: HashMap<Fingerprint, PlanId>,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PlanRegistry::default()
    }

    /// Register a plan, returning its id (existing id if already present).
    pub fn insert(&mut self, plan: PlanNode) -> PlanId {
        let fp = Fingerprint::of(&plan);
        *self.by_fp.entry(fp).or_insert_with(|| {
            let id = PlanId(self.plans.len() as u32);
            self.plans.push(Arc::new(plan));
            id
        })
    }

    /// Look up a plan id by fingerprint.
    pub fn get(&self, fp: Fingerprint) -> Option<PlanId> {
        self.by_fp.get(&fp).copied()
    }

    /// The plan with the given id.
    pub fn plan(&self, id: PlanId) -> &Arc<PlanNode> {
        &self.plans[id.0 as usize]
    }

    /// Number of distinct plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterate over `(id, plan)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PlanId, &Arc<PlanNode>)> {
        self.plans.iter().enumerate().map(|(i, p)| (PlanId(i as u32), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{PredId, RelId};

    fn scan(r: u32, f: Option<u32>) -> PlanNode {
        PlanNode::SeqScan { rel: RelId(r), filters: f.map(PredId).into_iter().collect() }
    }

    #[test]
    fn dedups_identical_plans() {
        let mut reg = PlanRegistry::new();
        let a = reg.insert(scan(0, None));
        let b = reg.insert(scan(0, None));
        let c = reg.insert(scan(1, None));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(reg.len(), 2);
        assert_eq!(**reg.plan(a), scan(0, None));
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(PlanId(0).to_string(), "P1");
        assert_eq!(PlanId(13).to_string(), "P14");
    }

    #[test]
    fn lookup_by_fingerprint() {
        let mut reg = PlanRegistry::new();
        let p = scan(2, Some(1));
        let id = reg.insert(p.clone());
        assert_eq!(reg.get(Fingerprint::of(&p)), Some(id));
        assert_eq!(reg.get(Fingerprint::of(&scan(3, None))), None);
    }
}
