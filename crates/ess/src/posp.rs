//! POSP compilation: the Parametric Optimal Set of Plans over the ESS grid.
//!
//! The optimizer is invoked at every grid location ("repeated invocations of
//! the optimizer with different selectivity values", §2.2); the resulting
//! optimal plans are deduplicated into a [`PlanRegistry`] and each cell
//! stores its optimal plan id and cost. Compilation is embarrassingly
//! parallel (§7 notes contour construction parallelizes trivially), so the
//! grid is mapped with rayon.

use crate::grid::{Cell, Grid};
use crate::registry::{PlanId, PlanRegistry};
use parking_lot::Mutex;
use rayon::prelude::*;
use rqp_optimizer::Optimizer;
use rqp_qplan::{Fingerprint, PlanNode};
use std::collections::HashMap;

/// The compiled optimal-plan surface: for every grid cell, the optimal plan
/// and its cost (a discretized Optimal Cost Surface, §2.5).
#[derive(Debug, Clone)]
pub struct Posp {
    grid: Grid,
    registry: PlanRegistry,
    cell_plan: Vec<PlanId>,
    cell_cost: Vec<f64>,
}

impl Posp {
    /// Compile the POSP by optimizing at every grid location in parallel.
    pub fn compile(optimizer: &Optimizer<'_>, grid: Grid) -> Posp {
        let m = crate::obs::metrics();
        let _span = rqp_obs::time_histogram(&m.posp_compile_seconds);
        m.posp_cells.add(grid.num_cells() as u64);

        let distinct: Mutex<HashMap<Fingerprint, PlanNode>> = Mutex::new(HashMap::new());
        let per_cell: Vec<(Fingerprint, f64)> = grid
            .cells()
            .into_par_iter()
            .map(|cell| {
                let loc = grid.location(cell);
                let planned = optimizer.optimize(&loc);
                let fp = Fingerprint::of(&planned.plan);
                {
                    use std::collections::hash_map::Entry as MapEntry;
                    let mut map = distinct.lock();
                    match map.entry(fp) {
                        // another cell already compiled this exact plan
                        MapEntry::Occupied(_) => m.memo_hits.inc(),
                        MapEntry::Vacant(slot) => {
                            slot.insert(planned.plan);
                        }
                    }
                }
                (fp, planned.cost)
            })
            .collect();

        // deterministic plan ids: first-seen order by cell index
        let mut plans = distinct.into_inner();
        let mut registry = PlanRegistry::new();
        let mut cell_plan = Vec::with_capacity(per_cell.len());
        let mut cell_cost = Vec::with_capacity(per_cell.len());
        let mut fp_to_id: HashMap<Fingerprint, PlanId> = HashMap::new();
        for (fp, cost) in per_cell {
            let id = if let Some(&id) = fp_to_id.get(&fp) {
                id
            } else {
                let id = match plans.remove(&fp) {
                    Some(plan) => registry.insert(plan),
                    None => {
                        // unreachable: the parallel pass recorded a plan for
                        // every fingerprint; degrade to the first plan id
                        debug_assert!(false, "plan recorded for fingerprint");
                        PlanId(0)
                    }
                };
                fp_to_id.insert(fp, id);
                id
            };
            cell_plan.push(id);
            cell_cost.push(cost);
        }
        Posp { grid, registry, cell_plan, cell_cost }
    }

    /// Reassemble a POSP from snapshot parts (see `crate::snapshot`).
    pub(crate) fn from_parts(
        grid: Grid,
        registry: PlanRegistry,
        cell_plan: Vec<PlanId>,
        cell_cost: Vec<f64>,
    ) -> Posp {
        Posp { grid, registry, cell_plan, cell_cost }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The plan registry.
    pub fn registry(&self) -> &PlanRegistry {
        &self.registry
    }

    /// Optimal cost `Cost(P_q, q)` at a cell.
    pub fn cost(&self, cell: Cell) -> f64 {
        self.cell_cost[cell]
    }

    /// Optimal plan id at a cell.
    pub fn plan_id(&self, cell: Cell) -> PlanId {
        self.cell_plan[cell]
    }

    /// The plan with the given id.
    pub fn plan(&self, id: PlanId) -> &std::sync::Arc<PlanNode> {
        self.registry.plan(id)
    }

    /// Minimum optimal cost over the grid (at the origin under PCM).
    pub fn cmin(&self) -> f64 {
        self.cell_cost.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum optimal cost over the grid (at the terminus under PCM).
    pub fn cmax(&self) -> f64 {
        self.cell_cost.iter().copied().fold(0.0, f64::max)
    }

    /// Number of distinct POSP plans.
    pub fn num_plans(&self) -> usize {
        self.registry.len()
    }

    /// Cost of an arbitrary registered plan at an arbitrary cell (used by
    /// anorexic reduction, AlignedBound's replacement search, and the
    /// native-optimizer baseline).
    pub fn cost_of_plan_at(&self, optimizer: &Optimizer<'_>, id: PlanId, cell: Cell) -> f64 {
        optimizer.cost_of(self.registry.plan(id), &self.grid.location(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rqp_catalog::{Catalog, CatalogBuilder, Query, QueryBuilder, RelationBuilder};
    use rqp_qplan::CostModel;

    fn fixture() -> (Catalog, Query) {
        let catalog = CatalogBuilder::new()
            .relation(
                RelationBuilder::new("part", 2_000_000)
                    .indexed_column("p_partkey", 2_000_000, 8)
                    .column("p_price", 50_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("lineitem", 60_000_000)
                    .indexed_column("l_partkey", 2_000_000, 8)
                    .indexed_column("l_orderkey", 15_000_000, 8)
                    .build(),
            )
            .relation(
                RelationBuilder::new("orders", 15_000_000)
                    .indexed_column("o_orderkey", 15_000_000, 8)
                    .build(),
            )
            .build();
        let query = QueryBuilder::new(&catalog, "EQ")
            .table("part")
            .table("lineitem")
            .table("orders")
            .epp_join("part", "p_partkey", "lineitem", "l_partkey")
            .epp_join("orders", "o_orderkey", "lineitem", "l_orderkey")
            .filter("part", "p_price", 0.05)
            .build()
            .unwrap();
        (catalog, query)
    }

    #[test]
    fn compiles_with_multiple_plans_and_monotone_costs() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let grid = Grid::uniform(2, 12, 1e-6).unwrap();
        let posp = Posp::compile(&opt, grid);

        assert!(posp.num_plans() >= 3, "expected plan diversity, got {}", posp.num_plans());
        assert!(posp.cmin() > 0.0);
        assert!(posp.cmax() / posp.cmin() > 4.0, "cost surface should span several doublings");
        // PCM on the optimal surface: cost non-decreasing along each axis
        let g = posp.grid();
        for cell in g.cells() {
            for d in 0..g.dims() {
                if g.coord(cell, d) + 1 < g.res(d) {
                    let mut coords = g.coords_of(cell);
                    coords[d] += 1;
                    let up = g.index(&coords);
                    assert!(
                        posp.cost(up) >= posp.cost(cell) * (1.0 - 1e-12),
                        "optimal cost decreased along dim {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_costs_match_reoptimization() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let grid = Grid::uniform(2, 6, 1e-5).unwrap();
        let posp = Posp::compile(&opt, grid);
        for cell in [0usize, 7, 17, posp.grid().terminus()] {
            let loc = posp.grid().location(cell);
            let planned = opt.optimize(&loc);
            assert!((planned.cost - posp.cost(cell)).abs() < 1e-9 * planned.cost);
            // optimal plan cost at its own cell equals the recorded cost
            let via_registry = posp.cost_of_plan_at(&opt, posp.plan_id(cell), cell);
            assert!((via_registry - posp.cost(cell)).abs() < 1e-9 * planned.cost);
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let (catalog, query) = fixture();
        let opt = Optimizer::new(&catalog, &query, CostModel::default());
        let a = Posp::compile(&opt, Grid::uniform(2, 8, 1e-5).unwrap());
        let b = Posp::compile(&opt, Grid::uniform(2, 8, 1e-5).unwrap());
        assert_eq!(a.cell_plan, b.cell_plan);
        assert_eq!(a.num_plans(), b.num_plans());
    }
}
